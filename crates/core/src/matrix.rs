//! Multi-scenario matrix engine: N scenarios, ONE pass over the cell set.
//!
//! `lockdown scenarios --matrix a.toml b.toml …` sweeps several scenario
//! specs in a single engine pass. The figure plans are scenario-independent
//! (analysis windows are fixed paper dates), so every scenario lane demands
//! the *same* deduplicated cell set — asserted via
//! [`TracePlan::plan_hash`](lockdown_traffic::plan::TracePlan::plan_hash).
//! The matrix therefore enumerates the shared cells exactly once and, per
//! cell, materializes each lane's flows with that lane's scenario-calibrated
//! emitter before fanning out to the lane's consumers — extending the
//! engine's mergeable-consumer fan-out across a scenario axis. Compared to
//! running the suite N times sequentially, the shared pass pays plan
//! deduplication, emitter setup, worker spawn and cell bookkeeping once.
//!
//! Archives compose per lane: with a base directory attached, each lane
//! spills to (or replays from) its own complete archive under a
//! [`scenario_subdir`] keyed by the lane's scenario fingerprint, so a warm
//! matrix re-run generates nothing at all. Wire mode and chaos supervision
//! do not compose with the matrix — those axes exercise the collection
//! plane, which is orthogonal to scenario calibration.
//!
//! Determinism: cells are independently seeded and lanes are fanned out in
//! scenario order, so lane 0 of a matrix run is byte-identical to a plain
//! single-scenario pass under the same spec (`tests/scenario_matrix.rs`).

use crate::context::Context;
use crate::engine::{AnyConsumer, EngineOutput, EnginePlan, EngineStats, Subscription};
use crate::experiments::suite::{self, Suite};
use lockdown_scenario::measures::ScenarioSpec;
use lockdown_store::{
    scenario_subdir, ArchiveReader, ArchiveWriter, SegmentScan, StoreError, StoreKey, StoreMetrics,
};
use lockdown_traffic::parallel::default_workers;
use lockdown_traffic::plan::{fold_hash, TraceEmitter, TracePlan};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One scenario lane of a matrix run.
pub struct MatrixScenario {
    /// Display label (scenario name, or the file stem it was loaded from).
    pub label: String,
    /// The scenario the lane interprets.
    pub spec: ScenarioSpec,
}

/// How to run a matrix: archive and worker count are optional.
#[derive(Default)]
pub struct MatrixOptions {
    /// Base archive directory; each lane archives/replays under its own
    /// [`scenario_subdir`] of it.
    pub archive: Option<PathBuf>,
    /// Worker threads; `0` means the default for this machine.
    pub workers: usize,
}

/// What the shared matrix pass did, in distinct-cell terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixStats {
    /// Scenario lanes swept.
    pub scenarios: usize,
    /// Distinct cells in the shared plan (equal for every lane).
    pub cells: u64,
    /// Distinct cells generated in the shared pass — a cell counts once
    /// no matter how many lanes materialized it. Equal to a single
    /// scenario's `cells_generated` on a cold run; zero on a fully warm
    /// one.
    pub cells_generated: u64,
    /// Distinct cells served entirely from lane archives.
    pub cells_replayed: u64,
    /// Flow records fanned out across all lanes.
    pub flows_emitted: u64,
    /// Worker threads used.
    pub workers: usize,
}

impl MatrixStats {
    /// One-line human-readable summary (the CLI prints this to stderr
    /// after a matrix run). Format is stable; `verify.sh` greps it.
    pub fn summary(&self) -> String {
        format!(
            "matrix: {} scenarios, {} cells generated once (shared pass), {} replayed, {} flows, {} workers",
            self.scenarios, self.cells_generated, self.cells_replayed, self.flows_emitted, self.workers,
        )
    }
}

/// One completed lane: the label, the spec's behavioural fingerprint and
/// the fully assembled figure suite.
pub struct ScenarioRun {
    /// The lane's display label.
    pub label: String,
    /// [`ScenarioSpec::fingerprint`] of the lane's spec.
    pub fingerprint: u64,
    /// Every figure and table, computed from this lane's flows. Its
    /// `stats` are the lane's own tallies (its cells, its flows).
    pub suite: Suite,
}

/// A completed matrix pass: per-scenario suites plus the shared-pass
/// accounting.
pub struct MatrixRun {
    /// One run per requested scenario, in request order. The first lane
    /// is the diff baseline.
    pub runs: Vec<ScenarioRun>,
    /// Shared-pass statistics.
    pub stats: MatrixStats,
}

impl MatrixRun {
    /// Per-scenario divergence from the first (baseline) lane: how many
    /// rendered sections differ, and across how many lines. Scenarios
    /// with the baseline's behavioural fingerprint are called out as
    /// identical instead of diffed.
    pub fn diff_report(&self) -> String {
        let Some(base) = self.runs.first() else {
            return String::new();
        };
        let base_sections = base.suite.renders();
        let mut out = format!("scenario diff vs '{}':\n", base.label);
        for run in &self.runs[1..] {
            if run.fingerprint == base.fingerprint {
                out.push_str(&format!(
                    "  {:<24} identical behavioural fingerprint\n",
                    run.label
                ));
                continue;
            }
            let sections = run.suite.renders();
            let mut sections_differ = 0usize;
            let mut lines_differ = 0usize;
            for (a, b) in base_sections.iter().zip(sections.iter()) {
                if a == b {
                    continue;
                }
                sections_differ += 1;
                let (la, lb): (Vec<_>, Vec<_>) = (a.lines().collect(), b.lines().collect());
                let shared = la.len().min(lb.len());
                lines_differ += (0..shared).filter(|&i| la[i] != lb[i]).count();
                lines_differ += la.len().max(lb.len()) - shared;
            }
            out.push_str(&format!(
                "  {:<24} {}/{} sections differ ({} lines)\n",
                run.label,
                sections_differ,
                base_sections.len(),
                lines_differ,
            ));
        }
        out
    }
}

/// Per-lane, per-worker accounting.
#[derive(Debug, Default, Clone, Copy)]
struct LaneTally {
    flows: u64,
    generated: u64,
    replayed: u64,
}

/// One worker's result: per-lane consumer columns and tallies, plus the
/// worker's distinct-cell generation count.
struct Partial {
    lanes: Vec<(Vec<Box<dyn AnyConsumer>>, LaneTally)>,
    cells_generated: u64,
}

/// Everything one lane contributes to the shared pass.
struct Lane<'a> {
    emitter: TraceEmitter<'a>,
    subs: Vec<Subscription>,
    reader: Option<ArchiveReader>,
    writer: Option<ArchiveWriter>,
    metrics: Option<Arc<StoreMetrics>>,
}

/// Sweep `scenarios` in one shared pass over the (identical) cell set.
/// See the module docs for semantics; archive I/O and corruption surface
/// as errors naming the offending lane file.
pub fn run_matrix(
    ctx: &Context,
    scenarios: Vec<MatrixScenario>,
    opts: MatrixOptions,
) -> Result<MatrixRun, StoreError> {
    assert!(!scenarios.is_empty(), "matrix needs at least one scenario");

    // Build one (identical) plan per lane: same demands, fresh consumer
    // factories and demand handles.
    let mut plans = Vec::with_capacity(scenarios.len());
    let mut traces: Vec<TracePlan> = Vec::with_capacity(scenarios.len());
    let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(scenarios.len());
    for (i, sc) in scenarios.iter().enumerate() {
        let mut plan = EnginePlan::new();
        plans.push(suite::build_plan(ctx, &mut plan));
        let (trace, subs) = plan.into_trace_and_subs();
        assert_eq!(
            trace.plan_hash(),
            traces.first().unwrap_or(&trace).plan_hash(),
            "figure plans must be scenario-independent"
        );

        let mut lane = Lane {
            emitter: TraceEmitter::with_scenario(&ctx.registry, &ctx.corpus, ctx.config, &sc.spec),
            subs,
            reader: None,
            writer: None,
            metrics: None,
        };
        if let Some(base) = &opts.archive {
            let dir = scenario_subdir(base, i, &sc.label);
            let metrics = StoreMetrics::new();
            let key = StoreKey {
                seed: ctx.config.seed,
                scenario_hash: fold_hash([ctx.config.scenario_hash(), sc.spec.fingerprint()]),
                plan_hash: trace.plan_hash(),
            };
            match ArchiveReader::open(&dir, Arc::clone(&metrics))? {
                Some(r) if r.key().same_generation(&key) && r.covers(trace.cells().iter()) => {
                    lane.reader = Some(r);
                }
                _ => lane.writer = Some(ArchiveWriter::create(&dir, key, Arc::clone(&metrics))?),
            }
            lane.metrics = Some(metrics);
        }
        traces.push(trace);
        lanes.push(lane);
    }

    let cells = traces[0].cells();
    // Warm-lane scans borrow their lane's reader; built after the lanes
    // so the borrows outlive the worker scope.
    let scans: Vec<Option<SegmentScan<'_>>> = lanes
        .iter()
        .map(|lane| match (&lane.reader, &lane.metrics) {
            (Some(r), Some(m)) => Some(SegmentScan::new(r, cells.iter().copied(), m)),
            _ => None,
        })
        .collect();

    let workers = if opts.workers == 0 {
        default_workers()
    } else {
        opts.workers
    }
    .max(1)
    .min(cells.len().max(1));

    // The shared pass: workers own contiguous chunks of the sorted cell
    // list; per cell, every lane materializes (replay or generate+spill)
    // and fans out. First fatal error stops the other workers at their
    // next cell.
    let chunk = cells.len().div_ceil(workers);
    let mut results: Vec<Option<Result<Partial, StoreError>>> = Vec::new();
    results.resize_with(workers, || None);
    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        for (slot, chunk_cells) in results.iter_mut().zip(cells.chunks(chunk.max(1))) {
            let lanes = &lanes;
            let scans = &scans;
            let stop = &stop;
            scope.spawn(move |_| {
                let run = || -> Result<Partial, StoreError> {
                    let mut partial = Partial {
                        lanes: lanes
                            .iter()
                            .map(|l| {
                                (
                                    l.subs.iter().map(|s| s.build()).collect(),
                                    LaneTally::default(),
                                )
                            })
                            .collect(),
                        cells_generated: 0,
                    };
                    let mut buf: Vec<lockdown_flow::record::FlowRecord> = Vec::new();
                    for &cell in chunk_cells {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let mut any_generated = false;
                        for (lane_idx, lane) in lanes.iter().enumerate() {
                            let (consumers, tally) = &mut partial.lanes[lane_idx];
                            match &scans[lane_idx] {
                                Some(scan) => {
                                    buf = scan.read_cell(cell)?;
                                    tally.replayed += 1;
                                }
                                None => {
                                    lane.emitter.generate_cell(cell, &mut buf);
                                    if let Some(w) = &lane.writer {
                                        w.spill(cell, &buf)?;
                                    }
                                    tally.generated += 1;
                                    any_generated = true;
                                }
                            }
                            tally.flows += buf.len() as u64;
                            for (sub, consumer) in lane.subs.iter().zip(consumers.iter_mut()) {
                                if sub.covers(cell) {
                                    consumer.observe_batch(&buf);
                                }
                            }
                        }
                        if any_generated {
                            partial.cells_generated += 1;
                        }
                    }
                    Ok(partial)
                };
                let result = run();
                if result.is_err() {
                    stop.store(true, Ordering::Relaxed);
                }
                *slot = Some(result);
            });
        }
    })
    .expect("matrix workers do not panic");

    // Merge worker partials per lane, in worker order (= cell order).
    let mut merged: Vec<Vec<Box<dyn AnyConsumer>>> = lanes
        .iter()
        .map(|l| l.subs.iter().map(|s| s.build()).collect())
        .collect();
    let mut tallies = vec![LaneTally::default(); lanes.len()];
    let mut cells_generated = 0u64;
    for partial in results.into_iter().flatten() {
        let partial = partial?;
        cells_generated += partial.cells_generated;
        for (lane_idx, (consumers, tally)) in partial.lanes.into_iter().enumerate() {
            tallies[lane_idx].flows += tally.flows;
            tallies[lane_idx].generated += tally.generated;
            tallies[lane_idx].replayed += tally.replayed;
            for (m, l) in merged[lane_idx].iter_mut().zip(consumers) {
                m.merge_box(l);
            }
        }
    }

    // Cold lanes publish their manifests only after a complete pass.
    drop(scans);
    for lane in &lanes {
        if let Some(w) = &lane.writer {
            w.finish()?;
        }
    }

    let cell_count = traces[0].cell_count();
    let total_flows: u64 = tallies.iter().map(|t| t.flows).sum();
    let stats = MatrixStats {
        scenarios: scenarios.len(),
        cells: cell_count,
        cells_generated,
        cells_replayed: cell_count - cells_generated,
        flows_emitted: total_flows,
        workers,
    };

    // Assemble each lane's suite from its merged consumers, carrying
    // lane-local stats so per-scenario summaries stay meaningful.
    let mut runs = Vec::with_capacity(scenarios.len());
    let lane_iter = scenarios
        .into_iter()
        .zip(plans)
        .zip(merged)
        .zip(lanes)
        .zip(tallies)
        .zip(traces);
    for (((((sc, plan_handles), consumers), lane), tally), trace) in lane_iter {
        let lane_stats = EngineStats {
            demands: lane.subs.len(),
            cells_demanded: trace.cells_demanded(),
            cells_generated: tally.generated,
            cells_replayed: tally.replayed,
            cells_resumed: 0,
            cells_quarantined: 0,
            retries: 0,
            flows_emitted: tally.flows,
            workers,
        };
        let out = EngineOutput::from_consumers(consumers, lane_stats, lane.metrics.clone());
        runs.push(ScenarioRun {
            fingerprint: sc.spec.fingerprint(),
            label: sc.label,
            suite: suite::assemble(ctx, plan_handles, out),
        });
    }

    Ok(MatrixRun { runs, stats })
}
