//! Single-pass trace engine: one shared generation plan feeding every
//! subscribed consumer.
//!
//! The figure drivers overlap heavily in the trace slices they demand —
//! regenerating per figure materializes the same `(stream, date, hour)`
//! cell many times over. The engine inverts that: drivers *declare* their
//! demands as `(stream, window, consumer factory)` subscriptions, the
//! underlying [`TracePlan`] deduplicates the union of windows, and each
//! distinct cell is generated exactly once and fanned out to every
//! subscription whose window covers it.
//!
//! Determinism: cells are independently seeded, workers own contiguous
//! chunks of the sorted cell list, and every [`FlowConsumer`] merge is
//! commutative and associative over disjoint cell sets — so the merged
//! result is bit-identical regardless of worker count, and identical to
//! the old per-figure regeneration. `tests/determinism.rs` asserts both.

use crate::context::Context;
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_collect::{CollectMetrics, CollectionPlane, WireConfig};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_store::{
    ArchiveReader, ArchiveWriter, SegmentScan, StoreError, StoreKey, StoreMetrics,
};
use lockdown_traffic::parallel::default_workers;
use lockdown_traffic::plan::{Cell, Stream, TraceEmitter, TracePlan};
use std::any::Any;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Object-safe face of [`FlowConsumer`] used inside the engine.
trait AnyConsumer: Send {
    fn observe_batch(&mut self, records: &[FlowRecord]);
    fn merge_box(&mut self, other: Box<dyn AnyConsumer>);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

struct Erased<C>(C);

impl<C: FlowConsumer + Send + 'static> AnyConsumer for Erased<C> {
    fn observe_batch(&mut self, records: &[FlowRecord]) {
        self.0.observe_all(records);
    }

    fn merge_box(&mut self, other: Box<dyn AnyConsumer>) {
        let other = other
            .into_any()
            .downcast::<Erased<C>>()
            .expect("merged consumers share one subscription type");
        self.0.merge(other.0);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

struct Subscription {
    stream: Stream,
    start: Date,
    end: Date,
    factory: Box<dyn Fn() -> Box<dyn AnyConsumer> + Send + Sync>,
}

impl Subscription {
    fn covers(&self, cell: Cell) -> bool {
        self.stream == cell.stream && self.start <= cell.date && cell.date <= self.end
    }
}

/// Typed handle to one subscription; redeem it against the
/// [`EngineOutput`] after the run.
pub struct Demand<C> {
    idx: usize,
    _marker: PhantomData<fn() -> C>,
}

impl<C> Clone for Demand<C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C> Copy for Demand<C> {}

/// The union of every driver's trace demands, with one consumer factory
/// per subscription.
#[derive(Default)]
pub struct EnginePlan {
    trace: TracePlan,
    subs: Vec<Subscription>,
    wire: Option<WireConfig>,
    archive: Option<PathBuf>,
}

impl EnginePlan {
    /// An empty plan.
    pub fn new() -> EnginePlan {
        EnginePlan::default()
    }

    /// Route every generated cell through the wire-mode collection plane
    /// (export → faulty transport → sequence-tracking collect) before
    /// fan-out. With [`lockdown_collect::FaultProfile::zero`] the delivered
    /// records are exactly the generated ones, so figure output is
    /// byte-identical to an unwired run.
    pub fn with_wire(&mut self, cfg: WireConfig) -> &mut EnginePlan {
        self.wire = Some(cfg);
        self
    }

    /// The wire configuration, if wire mode is enabled.
    pub fn wire_config(&self) -> Option<&WireConfig> {
        self.wire.as_ref()
    }

    /// Attach a columnar archive directory to the pass. A manifest keyed to
    /// the same `(seed, scenario)` generation and covering every demanded
    /// cell makes the pass *warm*: cells are decoded from segments instead
    /// of generated, byte-identically. Anything else — no manifest, a stale
    /// key, missing cells — makes the pass *cold*: cells are generated as
    /// usual and spilled so the next run replays. Archived passes must run
    /// through [`try_run`]/[`try_run_with_workers`] to surface I/O and
    /// corruption errors instead of panicking.
    pub fn with_archive(&mut self, dir: impl Into<PathBuf>) -> &mut EnginePlan {
        self.archive = Some(dir.into());
        self
    }

    /// The archive directory, if one is attached.
    pub fn archive_dir(&self) -> Option<&std::path::Path> {
        self.archive.as_deref()
    }

    /// Subscribe a consumer to an inclusive date window of one stream.
    /// `factory` builds one fresh consumer per worker; partials are merged
    /// in worker order after the pass.
    pub fn subscribe<C, F>(
        &mut self,
        stream: Stream,
        start: Date,
        end: Date,
        factory: F,
    ) -> Demand<C>
    where
        C: FlowConsumer + Send + 'static,
        F: Fn() -> C + Send + Sync + 'static,
    {
        self.trace.demand(stream, start, end);
        let idx = self.subs.len();
        self.subs.push(Subscription {
            stream,
            start,
            end,
            factory: Box::new(move || Box::new(Erased(factory()))),
        });
        Demand {
            idx,
            _marker: PhantomData,
        }
    }

    /// Number of subscriptions recorded.
    pub fn demand_count(&self) -> usize {
        self.subs.len()
    }

    /// Whether nothing has been subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

/// What one engine pass did: the dedup story in numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Subscriptions served.
    pub demands: usize,
    /// Cells requested across all demands, counting overlap multiplicity
    /// — what per-figure regeneration would materialize.
    pub cells_demanded: u64,
    /// Distinct cells actually generated (each exactly once). Zero on a
    /// warm archived pass — the proof that replay did no generation.
    pub cells_generated: u64,
    /// Distinct cells decoded from an archive instead of generated.
    pub cells_replayed: u64,
    /// Flow records fanned out across all cells, generated or replayed.
    pub flows_emitted: u64,
    /// Worker threads used.
    pub workers: usize,
}

impl EngineStats {
    /// How many times over per-figure regeneration would have re-made the
    /// average cell.
    pub fn dedup_ratio(&self) -> f64 {
        self.cells_demanded as f64 / (self.cells_generated + self.cells_replayed).max(1) as f64
    }

    /// One-line human-readable summary (the CLI prints this after a full
    /// suite run).
    pub fn summary(&self) -> String {
        format!(
            "engine: {} demands, {} cells generated once + {} replayed (vs {} demanded, dedup x{:.2}), {} flows, {} workers",
            self.demands,
            self.cells_generated,
            self.cells_replayed,
            self.cells_demanded,
            self.dedup_ratio(),
            self.flows_emitted,
            self.workers,
        )
    }
}

/// Merged consumer states of one engine pass, redeemable by [`Demand`].
pub struct EngineOutput {
    consumers: Vec<Option<Box<dyn AnyConsumer>>>,
    stats: EngineStats,
    wire_metrics: Option<Arc<CollectMetrics>>,
    audit: Option<lockdown_audit::Report>,
    store_metrics: Option<Arc<StoreMetrics>>,
}

impl EngineOutput {
    /// Take the merged consumer of one subscription (each demand can be
    /// taken once).
    pub fn take<C: FlowConsumer + Send + 'static>(&mut self, demand: Demand<C>) -> C {
        let boxed = self.consumers[demand.idx]
            .take()
            .expect("each demand is taken exactly once");
        boxed
            .into_any()
            .downcast::<Erased<C>>()
            .expect("demand type matches its subscription")
            .0
    }

    /// The pass's statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Wire-plane metrics, present when the plan ran in wire mode.
    pub fn wire_metrics(&self) -> Option<&Arc<CollectMetrics>> {
        self.wire_metrics.as_ref()
    }

    /// Conservation-audit report, present when the plan ran in wire mode
    /// with auditing enabled.
    pub fn audit(&self) -> Option<&lockdown_audit::Report> {
        self.audit.as_ref()
    }

    /// Store metrics, present when the plan ran with an archive attached
    /// (counts spills on a cold pass, reads and pruning on a warm one).
    pub fn store_metrics(&self) -> Option<&Arc<StoreMetrics>> {
        self.store_metrics.as_ref()
    }
}

/// Run a plan with the default worker count. Panics on archive errors —
/// use [`try_run`] for archived plans.
pub fn run(ctx: &Context, plan: EnginePlan) -> EngineOutput {
    run_with_workers(ctx, plan, default_workers())
}

/// Run a plan with an explicit worker count. Output is bit-identical for
/// any count (see module docs). Panics on archive errors — an archive-free
/// plan cannot fail.
pub fn run_with_workers(ctx: &Context, plan: EnginePlan, workers: usize) -> EngineOutput {
    try_run_with_workers(ctx, plan, workers)
        .unwrap_or_else(|e| panic!("archived engine pass failed: {e}"))
}

/// Fallible run with the default worker count, for archived plans.
pub fn try_run(ctx: &Context, plan: EnginePlan) -> Result<EngineOutput, StoreError> {
    try_run_with_workers(ctx, plan, default_workers())
}

/// One worker's tallies alongside its consumer column.
struct Partial {
    consumers: Vec<Box<dyn AnyConsumer>>,
    flows: u64,
    generated: u64,
    replayed: u64,
}

/// Fill `buf` with one cell's flows from the archive scan (warm) or the
/// emitter (cold, spilling if a writer is attached). Returns whether the
/// cell was replayed.
fn fill_cell(
    cell: Cell,
    emitter: &TraceEmitter,
    scan: Option<&SegmentScan>,
    writer: Option<&ArchiveWriter>,
    buf: &mut Vec<FlowRecord>,
) -> Result<bool, StoreError> {
    match scan {
        Some(sc) => {
            *buf = sc.read_cell(cell)?;
            Ok(true)
        }
        None => {
            emitter.generate_cell(cell, buf);
            if let Some(w) = writer {
                w.spill(cell, buf)?;
            }
            Ok(false)
        }
    }
}

/// Run a plan with an explicit worker count, surfacing archive errors.
/// Output is bit-identical for any count (see module docs) and for warm
/// vs. cold archive passes (`tests/archive_replay.rs`).
pub fn try_run_with_workers(
    ctx: &Context,
    plan: EnginePlan,
    workers: usize,
) -> Result<EngineOutput, StoreError> {
    let EnginePlan {
        trace,
        subs,
        wire,
        archive,
    } = plan;
    let emitter = TraceEmitter::new(&ctx.registry, &ctx.corpus, ctx.config);
    // Wire mode: each cell's flows cross the export → transport → collect
    // plane before fan-out. The plane is per-cell seeded, so the delivered
    // batch is the same whichever worker processes the cell.
    let plane = wire.map(CollectionPlane::new);
    let cells = trace.cells();

    // Archive resolution: replay only from a manifest of the same
    // generation (seed + scenario — the plan hash may differ, a superset
    // archive serves a subset plan with pruning) that covers every
    // demanded cell. Everything else is regenerated and respilled.
    let store_metrics = archive.as_ref().map(|_| StoreMetrics::new());
    let mut reader: Option<ArchiveReader> = None;
    let mut writer: Option<ArchiveWriter> = None;
    if let (Some(dir), Some(metrics)) = (&archive, &store_metrics) {
        let key = StoreKey {
            seed: ctx.config.seed,
            scenario_hash: ctx.config.scenario_hash(),
            plan_hash: trace.plan_hash(),
        };
        match ArchiveReader::open(dir, Arc::clone(metrics))? {
            Some(r) if r.key().same_generation(&key) && r.covers(cells.iter()) => {
                reader = Some(r);
            }
            _ => writer = Some(ArchiveWriter::create(dir, key, Arc::clone(metrics))?),
        }
    }
    let scan = match (&reader, &store_metrics) {
        (Some(r), Some(m)) => Some(SegmentScan::new(r, cells.iter().copied(), m)),
        _ => None,
    };

    let workers = workers.max(1).min(cells.len().max(1));
    let mut merged: Vec<Box<dyn AnyConsumer>> = subs.iter().map(|s| (s.factory)()).collect();
    let mut flows_emitted = 0u64;
    let mut cells_generated = 0u64;
    let mut cells_replayed = 0u64;

    if workers == 1 {
        let mut buf = Vec::new();
        for &cell in &cells {
            if fill_cell(cell, &emitter, scan.as_ref(), writer.as_ref(), &mut buf)? {
                cells_replayed += 1;
            } else {
                cells_generated += 1;
            }
            flows_emitted += buf.len() as u64;
            let wired;
            let batch: &[FlowRecord] = match &plane {
                Some(pl) => {
                    wired = pl.process_cell(cell, &buf);
                    &wired
                }
                None => &buf,
            };
            if let Some(pl) = &plane {
                pl.note_consumed(&cell, batch);
            }
            for (sub, consumer) in subs.iter().zip(merged.iter_mut()) {
                if sub.covers(cell) {
                    consumer.observe_batch(batch);
                }
            }
        }
    } else {
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Option<Result<Partial, StoreError>>> = Vec::new();
        results.resize_with(workers, || None);
        // First archive error wins; the flag stops the other workers at
        // their next cell so a corrupt segment aborts the pass promptly.
        let stop = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            for (slot, chunk_cells) in results.iter_mut().zip(cells.chunks(chunk)) {
                let emitter = &emitter;
                let subs = &subs;
                let plane = &plane;
                let scan = scan.as_ref();
                let writer = writer.as_ref();
                let stop = &stop;
                scope.spawn(move |_| {
                    let mut local: Vec<Box<dyn AnyConsumer>> =
                        subs.iter().map(|s| (s.factory)()).collect();
                    let mut buf = Vec::new();
                    let mut tallies = (0u64, 0u64, 0u64); // flows, generated, replayed
                    for &cell in chunk_cells {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        match fill_cell(cell, emitter, scan, writer, &mut buf) {
                            Ok(true) => tallies.2 += 1,
                            Ok(false) => tallies.1 += 1,
                            Err(e) => {
                                stop.store(true, Ordering::Relaxed);
                                *slot = Some(Err(e));
                                return;
                            }
                        }
                        tallies.0 += buf.len() as u64;
                        let wired;
                        let batch: &[FlowRecord] = match plane {
                            Some(pl) => {
                                wired = pl.process_cell(cell, &buf);
                                &wired
                            }
                            None => &buf,
                        };
                        if let Some(pl) = plane {
                            pl.note_consumed(&cell, batch);
                        }
                        for (sub, consumer) in subs.iter().zip(local.iter_mut()) {
                            if sub.covers(cell) {
                                consumer.observe_batch(batch);
                            }
                        }
                    }
                    *slot = Some(Ok(Partial {
                        consumers: local,
                        flows: tallies.0,
                        generated: tallies.1,
                        replayed: tallies.2,
                    }));
                });
            }
        })
        .expect("engine workers do not panic");
        for partial in results.into_iter().flatten() {
            let partial = partial?;
            flows_emitted += partial.flows;
            cells_generated += partial.generated;
            cells_replayed += partial.replayed;
            for (m, l) in merged.iter_mut().zip(partial.consumers) {
                m.merge_box(l);
            }
        }
    }

    // Publish the manifest only after every cell spilled cleanly; a pass
    // that errored above leaves the archive manifest-less (= absent).
    if let Some(w) = &writer {
        w.finish()?;
    }

    Ok(EngineOutput {
        stats: EngineStats {
            demands: merged.len(),
            cells_demanded: trace.cells_demanded(),
            cells_generated,
            cells_replayed,
            flows_emitted,
            workers,
        },
        consumers: merged.into_iter().map(Some).collect(),
        audit: plane.as_ref().and_then(|p| p.audit_report()),
        wire_metrics: plane.map(|p| p.metrics()),
        store_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use lockdown_analysis::timeseries::HourlyVolume;
    use lockdown_topology::vantage::VantagePoint;

    #[test]
    fn overlapping_subscriptions_share_cells() {
        let ctx = Context::with_seed(Fidelity::Test, 3);
        let mut plan = EnginePlan::new();
        let vp = VantagePoint::IxpSe;
        let d1 = Date::new(2020, 2, 3);
        let d2 = Date::new(2020, 2, 6);
        let a = plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
        let b = plan.subscribe(Stream::Vantage(vp), d1, d1, HourlyVolume::new);
        let mut out = run_with_workers(&ctx, plan, 2);
        let stats = out.stats();
        // 4 + 1 days demanded, 4 distinct days generated.
        assert_eq!(stats.cells_demanded, 5 * 24);
        assert_eq!(stats.cells_generated, 4 * 24);
        let full = out.take(a);
        let first_day = out.take(b);
        assert_eq!(full.daily_total(d1), first_day.daily_total(d1));
        assert!(first_day.daily_total(d2) == 0, "window gates fan-out");
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let ctx = Context::with_seed(Fidelity::Test, 5);
        let d1 = Date::new(2020, 3, 1);
        let d2 = Date::new(2020, 3, 4);
        let mut reference: Option<Vec<(lockdown_flow::time::Timestamp, u64)>> = None;
        for workers in [1usize, 2, 3, 8] {
            let mut plan = EnginePlan::new();
            let h = plan.subscribe(
                Stream::Vantage(VantagePoint::IspCe),
                d1,
                d2,
                HourlyVolume::new,
            );
            let mut out = run_with_workers(&ctx, plan, workers);
            let series = out.take(h).hourly_series(d1, d2);
            match &reference {
                None => reference = Some(series),
                Some(r) => assert_eq!(r, &series, "workers={workers}"),
            }
        }
    }
}
