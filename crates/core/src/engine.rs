//! Single-pass trace engine: one shared generation plan feeding every
//! subscribed consumer.
//!
//! The figure drivers overlap heavily in the trace slices they demand —
//! regenerating per figure materializes the same `(stream, date, hour)`
//! cell many times over. The engine inverts that: drivers *declare* their
//! demands as `(stream, window, consumer factory)` subscriptions, the
//! underlying [`TracePlan`] deduplicates the union of windows, and each
//! distinct cell is generated exactly once and fanned out to every
//! subscription whose window covers it.
//!
//! Determinism: cells are independently seeded, workers own contiguous
//! chunks of the sorted cell list, and every [`FlowConsumer`] merge is
//! commutative and associative over disjoint cell sets — so the merged
//! result is bit-identical regardless of worker count, and identical to
//! the old per-figure regeneration. `tests/determinism.rs` asserts both.

use crate::context::Context;
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_collect::{CollectMetrics, CollectionPlane, WireConfig};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_traffic::parallel::default_workers;
use lockdown_traffic::plan::{Cell, Stream, TraceEmitter, TracePlan};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

/// Object-safe face of [`FlowConsumer`] used inside the engine.
trait AnyConsumer: Send {
    fn observe_batch(&mut self, records: &[FlowRecord]);
    fn merge_box(&mut self, other: Box<dyn AnyConsumer>);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// One worker's partial state: its consumer column plus its flow count.
type WorkerPartial = (Vec<Box<dyn AnyConsumer>>, u64);

struct Erased<C>(C);

impl<C: FlowConsumer + Send + 'static> AnyConsumer for Erased<C> {
    fn observe_batch(&mut self, records: &[FlowRecord]) {
        self.0.observe_all(records);
    }

    fn merge_box(&mut self, other: Box<dyn AnyConsumer>) {
        let other = other
            .into_any()
            .downcast::<Erased<C>>()
            .expect("merged consumers share one subscription type");
        self.0.merge(other.0);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

struct Subscription {
    stream: Stream,
    start: Date,
    end: Date,
    factory: Box<dyn Fn() -> Box<dyn AnyConsumer> + Send + Sync>,
}

impl Subscription {
    fn covers(&self, cell: Cell) -> bool {
        self.stream == cell.stream && self.start <= cell.date && cell.date <= self.end
    }
}

/// Typed handle to one subscription; redeem it against the
/// [`EngineOutput`] after the run.
pub struct Demand<C> {
    idx: usize,
    _marker: PhantomData<fn() -> C>,
}

impl<C> Clone for Demand<C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C> Copy for Demand<C> {}

/// The union of every driver's trace demands, with one consumer factory
/// per subscription.
#[derive(Default)]
pub struct EnginePlan {
    trace: TracePlan,
    subs: Vec<Subscription>,
    wire: Option<WireConfig>,
}

impl EnginePlan {
    /// An empty plan.
    pub fn new() -> EnginePlan {
        EnginePlan::default()
    }

    /// Route every generated cell through the wire-mode collection plane
    /// (export → faulty transport → sequence-tracking collect) before
    /// fan-out. With [`lockdown_collect::FaultProfile::zero`] the delivered
    /// records are exactly the generated ones, so figure output is
    /// byte-identical to an unwired run.
    pub fn with_wire(&mut self, cfg: WireConfig) -> &mut EnginePlan {
        self.wire = Some(cfg);
        self
    }

    /// The wire configuration, if wire mode is enabled.
    pub fn wire_config(&self) -> Option<&WireConfig> {
        self.wire.as_ref()
    }

    /// Subscribe a consumer to an inclusive date window of one stream.
    /// `factory` builds one fresh consumer per worker; partials are merged
    /// in worker order after the pass.
    pub fn subscribe<C, F>(
        &mut self,
        stream: Stream,
        start: Date,
        end: Date,
        factory: F,
    ) -> Demand<C>
    where
        C: FlowConsumer + Send + 'static,
        F: Fn() -> C + Send + Sync + 'static,
    {
        self.trace.demand(stream, start, end);
        let idx = self.subs.len();
        self.subs.push(Subscription {
            stream,
            start,
            end,
            factory: Box::new(move || Box::new(Erased(factory()))),
        });
        Demand {
            idx,
            _marker: PhantomData,
        }
    }

    /// Number of subscriptions recorded.
    pub fn demand_count(&self) -> usize {
        self.subs.len()
    }

    /// Whether nothing has been subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

/// What one engine pass did: the dedup story in numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Subscriptions served.
    pub demands: usize,
    /// Cells requested across all demands, counting overlap multiplicity
    /// — what per-figure regeneration would materialize.
    pub cells_demanded: u64,
    /// Distinct cells actually generated (each exactly once).
    pub cells_generated: u64,
    /// Flow records emitted across all generated cells.
    pub flows_emitted: u64,
    /// Worker threads used.
    pub workers: usize,
}

impl EngineStats {
    /// How many times over per-figure regeneration would have re-made the
    /// average cell.
    pub fn dedup_ratio(&self) -> f64 {
        self.cells_demanded as f64 / self.cells_generated.max(1) as f64
    }

    /// One-line human-readable summary (the CLI prints this after a full
    /// suite run).
    pub fn summary(&self) -> String {
        format!(
            "engine: {} demands, {} cells generated once (vs {} demanded, dedup x{:.2}), {} flows, {} workers",
            self.demands,
            self.cells_generated,
            self.cells_demanded,
            self.dedup_ratio(),
            self.flows_emitted,
            self.workers,
        )
    }
}

/// Merged consumer states of one engine pass, redeemable by [`Demand`].
pub struct EngineOutput {
    consumers: Vec<Option<Box<dyn AnyConsumer>>>,
    stats: EngineStats,
    wire_metrics: Option<Arc<CollectMetrics>>,
    audit: Option<lockdown_audit::Report>,
}

impl EngineOutput {
    /// Take the merged consumer of one subscription (each demand can be
    /// taken once).
    pub fn take<C: FlowConsumer + Send + 'static>(&mut self, demand: Demand<C>) -> C {
        let boxed = self.consumers[demand.idx]
            .take()
            .expect("each demand is taken exactly once");
        boxed
            .into_any()
            .downcast::<Erased<C>>()
            .expect("demand type matches its subscription")
            .0
    }

    /// The pass's statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Wire-plane metrics, present when the plan ran in wire mode.
    pub fn wire_metrics(&self) -> Option<&Arc<CollectMetrics>> {
        self.wire_metrics.as_ref()
    }

    /// Conservation-audit report, present when the plan ran in wire mode
    /// with auditing enabled.
    pub fn audit(&self) -> Option<&lockdown_audit::Report> {
        self.audit.as_ref()
    }
}

/// Run a plan with the default worker count.
pub fn run(ctx: &Context, plan: EnginePlan) -> EngineOutput {
    run_with_workers(ctx, plan, default_workers())
}

/// Run a plan with an explicit worker count. Output is bit-identical for
/// any count (see module docs).
pub fn run_with_workers(ctx: &Context, plan: EnginePlan, workers: usize) -> EngineOutput {
    let EnginePlan { trace, subs, wire } = plan;
    let emitter = TraceEmitter::new(&ctx.registry, &ctx.corpus, ctx.config);
    // Wire mode: each cell's flows cross the export → transport → collect
    // plane before fan-out. The plane is per-cell seeded, so the delivered
    // batch is the same whichever worker processes the cell.
    let plane = wire.map(CollectionPlane::new);
    let cells = trace.cells();
    let workers = workers.max(1).min(cells.len().max(1));
    let mut merged: Vec<Box<dyn AnyConsumer>> = subs.iter().map(|s| (s.factory)()).collect();
    let mut flows_emitted = 0u64;

    if workers == 1 {
        let mut buf = Vec::new();
        for &cell in &cells {
            emitter.generate_cell(cell, &mut buf);
            flows_emitted += buf.len() as u64;
            let wired;
            let batch: &[FlowRecord] = match &plane {
                Some(pl) => {
                    wired = pl.process_cell(cell, &buf);
                    &wired
                }
                None => &buf,
            };
            if let Some(pl) = &plane {
                pl.note_consumed(&cell, batch);
            }
            for (sub, consumer) in subs.iter().zip(merged.iter_mut()) {
                if sub.covers(cell) {
                    consumer.observe_batch(batch);
                }
            }
        }
    } else {
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Option<WorkerPartial>> = Vec::new();
        results.resize_with(workers, || None);
        crossbeam::thread::scope(|scope| {
            for (slot, chunk_cells) in results.iter_mut().zip(cells.chunks(chunk)) {
                let emitter = &emitter;
                let subs = &subs;
                let plane = &plane;
                scope.spawn(move |_| {
                    let mut local: Vec<Box<dyn AnyConsumer>> =
                        subs.iter().map(|s| (s.factory)()).collect();
                    let mut buf = Vec::new();
                    let mut flows = 0u64;
                    for &cell in chunk_cells {
                        emitter.generate_cell(cell, &mut buf);
                        flows += buf.len() as u64;
                        let wired;
                        let batch: &[FlowRecord] = match plane {
                            Some(pl) => {
                                wired = pl.process_cell(cell, &buf);
                                &wired
                            }
                            None => &buf,
                        };
                        if let Some(pl) = plane {
                            pl.note_consumed(&cell, batch);
                        }
                        for (sub, consumer) in subs.iter().zip(local.iter_mut()) {
                            if sub.covers(cell) {
                                consumer.observe_batch(batch);
                            }
                        }
                    }
                    *slot = Some((local, flows));
                });
            }
        })
        .expect("engine workers do not panic");
        for (local, flows) in results.into_iter().flatten() {
            flows_emitted += flows;
            for (m, l) in merged.iter_mut().zip(local) {
                m.merge_box(l);
            }
        }
    }

    EngineOutput {
        stats: EngineStats {
            demands: merged.len(),
            cells_demanded: trace.cells_demanded(),
            cells_generated: cells.len() as u64,
            flows_emitted,
            workers,
        },
        consumers: merged.into_iter().map(Some).collect(),
        audit: plane.as_ref().and_then(|p| p.audit_report()),
        wire_metrics: plane.map(|p| p.metrics()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use lockdown_analysis::timeseries::HourlyVolume;
    use lockdown_topology::vantage::VantagePoint;

    #[test]
    fn overlapping_subscriptions_share_cells() {
        let ctx = Context::with_seed(Fidelity::Test, 3);
        let mut plan = EnginePlan::new();
        let vp = VantagePoint::IxpSe;
        let d1 = Date::new(2020, 2, 3);
        let d2 = Date::new(2020, 2, 6);
        let a = plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
        let b = plan.subscribe(Stream::Vantage(vp), d1, d1, HourlyVolume::new);
        let mut out = run_with_workers(&ctx, plan, 2);
        let stats = out.stats();
        // 4 + 1 days demanded, 4 distinct days generated.
        assert_eq!(stats.cells_demanded, 5 * 24);
        assert_eq!(stats.cells_generated, 4 * 24);
        let full = out.take(a);
        let first_day = out.take(b);
        assert_eq!(full.daily_total(d1), first_day.daily_total(d1));
        assert!(first_day.daily_total(d2) == 0, "window gates fan-out");
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let ctx = Context::with_seed(Fidelity::Test, 5);
        let d1 = Date::new(2020, 3, 1);
        let d2 = Date::new(2020, 3, 4);
        let mut reference: Option<Vec<(lockdown_flow::time::Timestamp, u64)>> = None;
        for workers in [1usize, 2, 3, 8] {
            let mut plan = EnginePlan::new();
            let h = plan.subscribe(
                Stream::Vantage(VantagePoint::IspCe),
                d1,
                d2,
                HourlyVolume::new,
            );
            let mut out = run_with_workers(&ctx, plan, workers);
            let series = out.take(h).hourly_series(d1, d2);
            match &reference {
                None => reference = Some(series),
                Some(r) => assert_eq!(r, &series, "workers={workers}"),
            }
        }
    }
}
