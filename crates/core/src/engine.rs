//! Single-pass trace engine: one shared generation plan feeding every
//! subscribed consumer.
//!
//! The figure drivers overlap heavily in the trace slices they demand —
//! regenerating per figure materializes the same `(stream, date, hour)`
//! cell many times over. The engine inverts that: drivers *declare* their
//! demands as `(stream, window, consumer factory)` subscriptions, the
//! underlying [`TracePlan`] deduplicates the union of windows, and each
//! distinct cell is generated exactly once and fanned out to every
//! subscription whose window covers it.
//!
//! Determinism: cells are independently seeded, workers own contiguous
//! chunks of the sorted cell list, and every [`FlowConsumer`] merge is
//! commutative and associative over disjoint cell sets — so the merged
//! result is bit-identical regardless of worker count, and identical to
//! the old per-figure regeneration. `tests/determinism.rs` asserts both.

use crate::context::Context;
use crate::supervisor::{
    AttemptError, DegradedReport, QuarantinedCell, Supervisor, SupervisorMetrics,
};
use lockdown_analysis::codec::CodecError;
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_chaos::{ChaosConfig, InjectedPanic, WriteFault};
use lockdown_collect::{CollectMetrics, CollectionPlane, WireConfig};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_store::{
    ArchiveReader, ArchiveWriter, SegmentMeta, SegmentScan, SpillFault, StoreError, StoreKey,
    StoreMetrics,
};
use lockdown_traffic::parallel::default_workers;
use lockdown_traffic::plan::{Cell, Stream, TraceEmitter, TracePlan};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Object-safe face of [`FlowConsumer`] used inside the engine (and the
/// multi-scenario matrix built on top of it).
pub(crate) trait AnyConsumer: Send {
    fn observe_batch(&mut self, records: &[FlowRecord]);
    fn merge_box(&mut self, other: Box<dyn AnyConsumer>);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    /// Serialize this consumer's state as a self-checking codec frame
    /// (the shard worker's side of the cross-process merge).
    fn encode_state_frame(&self) -> Vec<u8>;
    /// Decode a peer's frame and merge it into this consumer (the shard
    /// coordinator's side).
    fn merge_state_frame(&mut self, frame: &[u8]) -> Result<(), CodecError>;
}

struct Erased<C>(C);

impl<C: FlowConsumer + Send + 'static> AnyConsumer for Erased<C> {
    fn observe_batch(&mut self, records: &[FlowRecord]) {
        self.0.observe_all(records);
    }

    fn merge_box(&mut self, other: Box<dyn AnyConsumer>) {
        // Unreachable by construction: partials are merged strictly by
        // subscription index, and each index has exactly one concrete
        // consumer type (enforced at `subscribe` time by the factory).
        let other = other
            .into_any()
            .downcast::<Erased<C>>()
            .expect("merged consumers share one subscription type");
        self.0.merge(other.0);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn encode_state_frame(&self) -> Vec<u8> {
        lockdown_analysis::codec::encode_frame(&self.0)
    }

    fn merge_state_frame(&mut self, frame: &[u8]) -> Result<(), CodecError> {
        lockdown_analysis::codec::merge_frame(&mut self.0, frame)
    }
}

pub(crate) struct Subscription {
    stream: Stream,
    start: Date,
    end: Date,
    /// Figure label from [`EnginePlan::scoped`]; attributes quarantined
    /// cells to the figures they starve in the degraded-mode report.
    label: Option<String>,
    factory: Box<dyn Fn() -> Box<dyn AnyConsumer> + Send + Sync>,
}

impl Subscription {
    pub(crate) fn covers(&self, cell: Cell) -> bool {
        self.stream == cell.stream && self.start <= cell.date && cell.date <= self.end
    }

    pub(crate) fn build(&self) -> Box<dyn AnyConsumer> {
        (self.factory)()
    }
}

/// Typed handle to one subscription; redeem it against the
/// [`EngineOutput`] after the run.
pub struct Demand<C> {
    idx: usize,
    _marker: PhantomData<fn() -> C>,
}

impl<C> Clone for Demand<C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C> Copy for Demand<C> {}

/// The union of every driver's trace demands, with one consumer factory
/// per subscription.
#[derive(Default)]
pub struct EnginePlan {
    trace: TracePlan,
    subs: Vec<Subscription>,
    wire: Option<WireConfig>,
    archive: Option<PathBuf>,
    supervisor: Option<ChaosConfig>,
    scope: Option<String>,
}

impl EnginePlan {
    /// An empty plan.
    pub fn new() -> EnginePlan {
        EnginePlan::default()
    }

    /// Route every generated cell through the wire-mode collection plane
    /// (export → faulty transport → sequence-tracking collect) before
    /// fan-out. With [`lockdown_collect::FaultProfile::zero`] the delivered
    /// records are exactly the generated ones, so figure output is
    /// byte-identical to an unwired run.
    pub fn with_wire(&mut self, cfg: WireConfig) -> &mut EnginePlan {
        self.wire = Some(cfg);
        self
    }

    /// The wire configuration, if wire mode is enabled.
    pub fn wire_config(&self) -> Option<&WireConfig> {
        self.wire.as_ref()
    }

    /// Attach a columnar archive directory to the pass. A manifest keyed to
    /// the same `(seed, scenario)` generation and covering every demanded
    /// cell makes the pass *warm*: cells are decoded from segments instead
    /// of generated, byte-identically. Anything else — no manifest, a stale
    /// key, missing cells — makes the pass *cold*: cells are generated as
    /// usual and spilled so the next run replays. Archived passes must run
    /// through [`try_run`]/[`try_run_with_workers`] to surface I/O and
    /// corruption errors instead of panicking.
    pub fn with_archive(&mut self, dir: impl Into<PathBuf>) -> &mut EnginePlan {
        self.archive = Some(dir.into());
        self
    }

    /// The archive directory, if one is attached.
    pub fn archive_dir(&self) -> Option<&std::path::Path> {
        self.archive.as_deref()
    }

    /// Attach a supervisor: each cell slot runs under panic isolation
    /// with seeded retries, budget-exhausted cells are quarantined
    /// instead of fatal, archived passes checkpoint a resume journal, and
    /// the configured chaos schedule (if any) injects deterministic
    /// faults. [`ChaosConfig::zero`] gives supervision without chaos —
    /// and a zero-chaos supervised pass is byte-identical to a plain one.
    pub fn with_supervisor(&mut self, cfg: ChaosConfig) -> &mut EnginePlan {
        self.supervisor = Some(cfg);
        self
    }

    /// The supervisor configuration, if supervision is enabled.
    pub fn supervisor_config(&self) -> Option<&ChaosConfig> {
        self.supervisor.as_ref()
    }

    /// Run `f` with every subscription it records labeled `label` (the
    /// figure being planned). Labels drive the degraded-mode report's
    /// "affected figures" attribution; unlabeled subscriptions are
    /// reported under `unlabeled`.
    pub fn scoped<R>(&mut self, label: &str, f: impl FnOnce(&mut EnginePlan) -> R) -> R {
        let prev = self.scope.replace(label.to_string());
        let out = f(self);
        self.scope = prev;
        out
    }

    /// Subscribe a consumer to an inclusive date window of one stream.
    /// `factory` builds one fresh consumer per worker; partials are merged
    /// in worker order after the pass.
    pub fn subscribe<C, F>(
        &mut self,
        stream: Stream,
        start: Date,
        end: Date,
        factory: F,
    ) -> Demand<C>
    where
        C: FlowConsumer + Send + 'static,
        F: Fn() -> C + Send + Sync + 'static,
    {
        self.trace.demand(stream, start, end);
        let idx = self.subs.len();
        self.subs.push(Subscription {
            stream,
            start,
            end,
            label: self.scope.clone(),
            factory: Box::new(move || Box::new(Erased(factory()))),
        });
        Demand {
            idx,
            _marker: PhantomData,
        }
    }

    /// Number of subscriptions recorded.
    pub fn demand_count(&self) -> usize {
        self.subs.len()
    }

    /// Fingerprint of the deduplicated cell plan. Two processes that
    /// build the same subscriptions get the same hash — the shard
    /// protocol's guard against running an assignment against a
    /// differently built plan.
    pub fn plan_hash(&self) -> u64 {
        self.trace.plan_hash()
    }

    /// Decompose into the deduplicated trace plan and the subscription
    /// list, dropping the (matrix-unsupported) wire/archive/chaos options
    /// — the multi-scenario matrix drives cells itself.
    pub(crate) fn into_trace_and_subs(self) -> (TracePlan, Vec<Subscription>) {
        (self.trace, self.subs)
    }

    /// Whether nothing has been subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

/// What one engine pass did: the dedup story in numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Subscriptions served.
    pub demands: usize,
    /// Cells requested across all demands, counting overlap multiplicity
    /// — what per-figure regeneration would materialize.
    pub cells_demanded: u64,
    /// Distinct cells actually generated (each exactly once). Zero on a
    /// warm archived pass — the proof that replay did no generation.
    pub cells_generated: u64,
    /// Distinct cells decoded from an archive instead of generated.
    /// Includes resumed cells — replay is replay, whether the index that
    /// named the segment was a manifest or a journal.
    pub cells_replayed: u64,
    /// Of the replayed cells, how many were adopted from a checkpoint
    /// journal left by an interrupted pass (supervised passes only).
    pub cells_resumed: u64,
    /// Cells the supervisor quarantined after exhausting their attempt
    /// budget. Always zero without a supervisor.
    pub cells_quarantined: u64,
    /// Cell attempts beyond the first (supervised passes only).
    pub retries: u64,
    /// Flow records fanned out across all cells, generated or replayed.
    pub flows_emitted: u64,
    /// Worker threads used.
    pub workers: usize,
}

impl EngineStats {
    /// How many times over per-figure regeneration would have re-made the
    /// average cell.
    pub fn dedup_ratio(&self) -> f64 {
        self.cells_demanded as f64 / (self.cells_generated + self.cells_replayed).max(1) as f64
    }

    /// One-line human-readable summary (the CLI prints this after a full
    /// suite run). The base format is stable — supervised-only outcomes
    /// (resume, quarantine, retries) are appended only when nonzero so
    /// plain passes render exactly as before.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "engine: {} demands, {} cells generated once + {} replayed (vs {} demanded, dedup x{:.2}), {} flows, {} workers",
            self.demands,
            self.cells_generated,
            self.cells_replayed,
            self.cells_demanded,
            self.dedup_ratio(),
            self.flows_emitted,
            self.workers,
        );
        if self.cells_resumed > 0 {
            s.push_str(&format!(", {} resumed", self.cells_resumed));
        }
        if self.cells_quarantined > 0 || self.retries > 0 {
            s.push_str(&format!(
                ", {} quarantined ({} retries)",
                self.cells_quarantined, self.retries
            ));
        }
        s
    }
}

/// Why [`EngineOutput::try_take`] could not redeem a demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeError {
    /// The demand was already taken from this output.
    AlreadyTaken,
    /// The demand's type parameter does not match the consumer the
    /// subscription actually built (a handle redeemed against the wrong
    /// output, or transmuted indices).
    TypeMismatch,
}

impl std::fmt::Display for TakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TakeError::AlreadyTaken => write!(f, "demand already taken from this engine output"),
            TakeError::TypeMismatch => write!(f, "demand type does not match its subscription"),
        }
    }
}

impl std::error::Error for TakeError {}

/// Merged consumer states of one engine pass, redeemable by [`Demand`].
pub struct EngineOutput {
    consumers: Vec<Option<Box<dyn AnyConsumer>>>,
    stats: EngineStats,
    wire_metrics: Option<Arc<CollectMetrics>>,
    audit: Option<lockdown_audit::Report>,
    store_metrics: Option<Arc<StoreMetrics>>,
    supervisor_metrics: Option<Arc<SupervisorMetrics>>,
    degraded: Option<DegradedReport>,
}

impl EngineOutput {
    /// Assemble an output from externally merged consumers (the matrix
    /// path). Wire, audit and supervisor artefacts do not apply there.
    pub(crate) fn from_consumers(
        consumers: Vec<Box<dyn AnyConsumer>>,
        stats: EngineStats,
        store_metrics: Option<Arc<StoreMetrics>>,
    ) -> EngineOutput {
        EngineOutput {
            consumers: consumers.into_iter().map(Some).collect(),
            stats,
            wire_metrics: None,
            audit: None,
            store_metrics,
            supervisor_metrics: None,
            degraded: None,
        }
    }

    /// Take the merged consumer of one subscription, reporting a typed
    /// error for the two reachable misuses (double-take, wrong-type
    /// redemption) instead of panicking.
    pub fn try_take<C: FlowConsumer + Send + 'static>(
        &mut self,
        demand: Demand<C>,
    ) -> Result<C, TakeError> {
        let slot = self
            .consumers
            .get_mut(demand.idx)
            .ok_or(TakeError::TypeMismatch)?;
        let boxed = slot.take().ok_or(TakeError::AlreadyTaken)?;
        // A failed downcast consumes the slot: erasure is one-way, so a
        // wrong-typed probe cannot restore the consumer. That is fine —
        // both reachable misuses are programming errors the caller should
        // surface, not probe-and-recover paths.
        boxed
            .into_any()
            .downcast::<Erased<C>>()
            .map(|erased| erased.0)
            .map_err(|_| TakeError::TypeMismatch)
    }

    /// Take the merged consumer of one subscription (each demand can be
    /// taken once). Panics on misuse — use [`EngineOutput::try_take`] for
    /// the typed-error form.
    pub fn take<C: FlowConsumer + Send + 'static>(&mut self, demand: Demand<C>) -> C {
        self.try_take(demand)
            .unwrap_or_else(|e| panic!("engine demand redemption failed: {e}"))
    }

    /// The pass's statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Wire-plane metrics, present when the plan ran in wire mode.
    pub fn wire_metrics(&self) -> Option<&Arc<CollectMetrics>> {
        self.wire_metrics.as_ref()
    }

    /// Conservation-audit report, present when the plan ran in wire mode
    /// with auditing enabled.
    pub fn audit(&self) -> Option<&lockdown_audit::Report> {
        self.audit.as_ref()
    }

    /// Store metrics, present when the plan ran with an archive attached
    /// (counts spills on a cold pass, reads and pruning on a warm one).
    pub fn store_metrics(&self) -> Option<&Arc<StoreMetrics>> {
        self.store_metrics.as_ref()
    }

    /// Supervisor metrics, present when the plan ran supervised.
    pub fn supervisor_metrics(&self) -> Option<&Arc<SupervisorMetrics>> {
        self.supervisor_metrics.as_ref()
    }

    /// The degraded-mode report, present when a supervised pass
    /// quarantined at least one cell. `None` means the pass is complete.
    pub fn degraded(&self) -> Option<&DegradedReport> {
        self.degraded.as_ref()
    }
}

/// Run a plan with the default worker count. An archive-free,
/// unsupervised plan cannot actually fail; archived plans surface I/O and
/// corruption errors here instead of panicking.
pub fn run(ctx: &Context, plan: EnginePlan) -> Result<EngineOutput, StoreError> {
    run_with_workers(ctx, plan, default_workers())
}

/// Fallible run with the default worker count. Alias of [`run`], kept for
/// call sites that want the archived-pass intent in the name.
pub fn try_run(ctx: &Context, plan: EnginePlan) -> Result<EngineOutput, StoreError> {
    run_with_workers(ctx, plan, default_workers())
}

/// One worker's tallies alongside its consumer column.
struct Partial {
    consumers: Vec<Box<dyn AnyConsumer>>,
    tallies: Tallies,
}

/// Per-worker cell accounting.
#[derive(Debug, Default, Clone, Copy)]
struct Tallies {
    flows: u64,
    generated: u64,
    replayed: u64,
    resumed: u64,
}

/// How one cell's records were obtained.
enum CellFill {
    Generated,
    Replayed,
    Resumed,
}

/// Render a caught panic payload for the quarantine record.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected worker panic (attempt {})", p.attempt)
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Everything one engine pass shares across workers to execute a cell:
/// generation, replay, resume, the wire plane and (optionally) the
/// supervisor. Both the sequential and the threaded paths run cells
/// through [`CellRunner::process`], so supervised semantics cannot drift
/// between worker counts.
struct CellRunner<'a> {
    emitter: &'a TraceEmitter<'a>,
    scan: Option<&'a SegmentScan<'a>>,
    writer: Option<&'a ArchiveWriter>,
    adopted: &'a BTreeMap<Cell, SegmentMeta>,
    plane: Option<&'a CollectionPlane>,
    supervisor: Option<&'a Supervisor>,
    store_metrics: Option<&'a Arc<StoreMetrics>>,
    subs: &'a [Subscription],
}

impl CellRunner<'_> {
    /// Unsupervised fill: exactly the pre-supervisor semantics — first
    /// error aborts the pass, archive corruption included.
    fn fill_plain(&self, cell: Cell, buf: &mut Vec<FlowRecord>) -> Result<CellFill, StoreError> {
        match self.scan {
            Some(sc) => {
                *buf = sc.read_cell(cell)?;
                Ok(CellFill::Replayed)
            }
            None => {
                self.emitter.generate_cell(cell, buf);
                if let Some(w) = self.writer {
                    w.spill(cell, buf)?;
                }
                Ok(CellFill::Generated)
            }
        }
    }

    /// One supervised attempt. Every injected failure point precedes the
    /// cell's wire processing and ledger posts, so a retried attempt
    /// leaves no partial side effects behind.
    fn fill_attempt(
        &self,
        sup: &Supervisor,
        cell: Cell,
        attempt: u32,
        force_generate: bool,
        buf: &mut Vec<FlowRecord>,
    ) -> Result<CellFill, AttemptError> {
        let chaos = sup.decide(cell, attempt);
        if chaos.panic {
            std::panic::panic_any(sup.injected_panic(cell, attempt));
        }
        let fill = 'fill: {
            if !force_generate {
                if let Some(sc) = self.scan {
                    // Warm replay. Corruption downgrades from hard abort
                    // to regenerate-that-cell; a cell genuinely absent
                    // from the archive stays fatal (retrying cannot make
                    // it appear).
                    match sc.read_cell(cell) {
                        Ok(records) => {
                            *buf = records;
                            break 'fill CellFill::Replayed;
                        }
                        Err(e @ StoreError::Missing { .. }) => return Err(AttemptError::Store(e)),
                        Err(_) => sup.metrics().replay_corruptions.inc(),
                    }
                } else if let (Some(w), Some(meta)) = (self.writer, self.adopted.get(&cell)) {
                    // Cold resume: adopt the journaled segment. A failed
                    // integrity check self-heals by regenerating inline.
                    match w.read_adopted(meta) {
                        Ok(records) => {
                            *buf = records;
                            break 'fill CellFill::Resumed;
                        }
                        Err(_) => {
                            if let Some(m) = self.store_metrics {
                                m.resume_rejected.inc();
                            }
                        }
                    }
                }
            }
            self.emitter.generate_cell(cell, buf);
            if let Some(w) = self.writer {
                let fault = chaos.write.map(|f| match f {
                    WriteFault::Torn => SpillFault::Torn,
                    WriteFault::Enospc => SpillFault::Enospc,
                });
                if fault.is_some() {
                    sup.metrics().write_faults.inc();
                }
                w.spill_with_fault(cell, buf, fault)
                    .map_err(AttemptError::Store)?;
            }
            CellFill::Generated
        };
        if self.plane.is_some() && chaos.stall {
            // The exporter fleet timed out before delivering anything:
            // the attempt is abandoned before any conservation post.
            if let Some(pl) = self.plane {
                pl.note_stalled(&cell);
            }
            sup.metrics().stalls.inc();
            return Err(AttemptError::Stall);
        }
        Ok(fill)
    }

    /// The supervised attempt loop: catch panics, back off, retry, and
    /// quarantine once the budget is spent. `Ok(None)` means quarantined.
    fn fill_supervised(
        &self,
        sup: &Supervisor,
        cell: Cell,
        buf: &mut Vec<FlowRecord>,
    ) -> Result<Option<CellFill>, StoreError> {
        let budget = sup.attempts();
        let mut force_generate = false;
        let mut last_error = String::new();
        for attempt in 1..=budget {
            if attempt > 1 {
                sup.backoff(cell, attempt - 1);
            }
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.fill_attempt(sup, cell, attempt, force_generate, buf)
            }));
            let err = match caught {
                Ok(Ok(fill)) => return Ok(Some(fill)),
                Ok(Err(e)) => e,
                Err(payload) => {
                    sup.metrics().panics_caught.inc();
                    AttemptError::Panic(panic_message(payload))
                }
            };
            if let Some(fatal) = err.fatal() {
                return Err(fatal.clone());
            }
            // Whatever the failure left behind (a torn file, a half
            // filled buffer), the next attempt regenerates from scratch
            // rather than trusting on-disk state.
            force_generate = true;
            last_error = err.render();
        }
        // Budget exhausted: quarantine. The archive must not claim the
        // cell, and the auditor records the outcome as a first-class
        // conservation stage instead of a violation.
        if let Some(w) = self.writer {
            let _ = w.remove(cell);
        }
        if let Some(pl) = self.plane {
            pl.note_quarantined(&cell);
        }
        sup.quarantine(cell, budget, last_error);
        Ok(None)
    }

    /// Run one cell end to end: fill (plain or supervised), wire
    /// processing, conservation posts, and fan-out to covering
    /// subscriptions. Quarantined cells skip everything downstream.
    fn process(
        &self,
        cell: Cell,
        buf: &mut Vec<FlowRecord>,
        consumers: &mut [Box<dyn AnyConsumer>],
        tallies: &mut Tallies,
    ) -> Result<(), StoreError> {
        let fill = match self.supervisor {
            Some(sup) => match self.fill_supervised(sup, cell, buf)? {
                Some(fill) => fill,
                None => return Ok(()),
            },
            None => self.fill_plain(cell, buf)?,
        };
        match fill {
            CellFill::Generated => tallies.generated += 1,
            CellFill::Replayed => tallies.replayed += 1,
            CellFill::Resumed => {
                tallies.replayed += 1;
                tallies.resumed += 1;
            }
        }
        tallies.flows += buf.len() as u64;
        let wired;
        let batch: &[FlowRecord] = match self.plane {
            Some(pl) => {
                wired = pl.process_cell(cell, buf);
                &wired
            }
            None => buf,
        };
        if let Some(pl) = self.plane {
            pl.note_consumed(&cell, batch);
        }
        for (sub, consumer) in self.subs.iter().zip(consumers.iter_mut()) {
            if sub.covers(cell) {
                consumer.observe_batch(batch);
            }
        }
        Ok(())
    }
}

/// Run a plan with an explicit worker count, surfacing archive errors.
/// Output is bit-identical for any count (see module docs) and for warm
/// vs. cold archive passes (`tests/archive_replay.rs`).
pub fn run_with_workers(
    ctx: &Context,
    plan: EnginePlan,
    workers: usize,
) -> Result<EngineOutput, StoreError> {
    let EnginePlan {
        trace,
        subs,
        wire,
        archive,
        supervisor: supervisor_cfg,
        scope: _,
    } = plan;
    let emitter =
        TraceEmitter::with_scenario(&ctx.registry, &ctx.corpus, ctx.config, &ctx.scenario);
    // Wire mode: each cell's flows cross the export → transport → collect
    // plane before fan-out. The plane is per-cell seeded, so the delivered
    // batch is the same whichever worker processes the cell.
    let plane = wire.map(CollectionPlane::new);
    let cells = trace.cells();
    let supervisor = supervisor_cfg.map(Supervisor::new);

    // Archive resolution: replay only from a manifest of the same
    // generation (seed + scenario — the plan hash may differ, a superset
    // archive serves a subset plan with pruning) that covers every
    // demanded cell. Everything else is regenerated and respilled —
    // except under supervision, where a journal or partially covering
    // manifest of the same generation is *adopted* so the pass
    // regenerates only what is actually missing (checkpoint/resume), and
    // a corrupt manifest downgrades from hard abort to regeneration.
    let store_metrics = archive.as_ref().map(|_| StoreMetrics::new());
    let mut reader: Option<ArchiveReader> = None;
    let mut writer: Option<ArchiveWriter> = None;
    let mut adopted: BTreeMap<Cell, SegmentMeta> = BTreeMap::new();
    if let (Some(dir), Some(metrics)) = (&archive, &store_metrics) {
        let key = StoreKey {
            seed: ctx.config.seed,
            scenario_hash: ctx.scenario_hash(),
            plan_hash: trace.plan_hash(),
        };
        let opened = match ArchiveReader::open(dir, Arc::clone(metrics)) {
            Ok(r) => r,
            Err(StoreError::Corrupt { .. }) if supervisor.is_some() => {
                metrics.resume_rejected.inc();
                None
            }
            Err(e) => return Err(e),
        };
        match opened {
            Some(r) if r.key().same_generation(&key) && r.covers(cells.iter()) => {
                reader = Some(r);
            }
            _ if supervisor.is_some() => {
                let (w, a) = ArchiveWriter::create_or_resume(dir, key, Arc::clone(metrics))?;
                writer = Some(w);
                adopted = a;
            }
            _ => writer = Some(ArchiveWriter::create(dir, key, Arc::clone(metrics))?),
        }
    }
    let scan = match (&reader, &store_metrics) {
        (Some(r), Some(m)) => Some(SegmentScan::new(r, cells.iter().copied(), m)),
        _ => None,
    };

    let workers = workers.max(1).min(cells.len().max(1));
    let mut merged: Vec<Box<dyn AnyConsumer>> = subs.iter().map(|s| (s.factory)()).collect();
    let mut tallies = Tallies::default();
    let runner = CellRunner {
        emitter: &emitter,
        scan: scan.as_ref(),
        writer: writer.as_ref(),
        adopted: &adopted,
        plane: plane.as_ref(),
        supervisor: supervisor.as_ref(),
        store_metrics: store_metrics.as_ref(),
        subs: &subs,
    };

    if workers == 1 {
        let mut buf = Vec::new();
        for &cell in &cells {
            runner.process(cell, &mut buf, &mut merged, &mut tallies)?;
        }
    } else {
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Option<Result<Partial, StoreError>>> = Vec::new();
        results.resize_with(workers, || None);
        // First fatal error wins; the flag stops the other workers at
        // their next cell so (say) a demanded-but-absent segment aborts
        // the pass promptly. Supervised retriable failures never set it.
        let stop = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            for (slot, chunk_cells) in results.iter_mut().zip(cells.chunks(chunk)) {
                let runner = &runner;
                let subs = &subs;
                let stop = &stop;
                scope.spawn(move |_| {
                    let mut local: Vec<Box<dyn AnyConsumer>> =
                        subs.iter().map(|s| (s.factory)()).collect();
                    let mut buf = Vec::new();
                    let mut tallies = Tallies::default();
                    for &cell in chunk_cells {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        if let Err(e) = runner.process(cell, &mut buf, &mut local, &mut tallies) {
                            stop.store(true, Ordering::Relaxed);
                            *slot = Some(Err(e));
                            return;
                        }
                    }
                    *slot = Some(Ok(Partial {
                        consumers: local,
                        tallies,
                    }));
                });
            }
        })
        .expect("engine workers do not panic");
        for partial in results.into_iter().flatten() {
            let partial = partial?;
            tallies.flows += partial.tallies.flows;
            tallies.generated += partial.tallies.generated;
            tallies.replayed += partial.tallies.replayed;
            tallies.resumed += partial.tallies.resumed;
            for (m, l) in merged.iter_mut().zip(partial.consumers) {
                m.merge_box(l);
            }
        }
    }

    // A complete pass publishes the manifest; a degraded pass (any
    // quarantined cell) must not claim completeness, so it checkpoints
    // the journal instead, leaving the archive resumable. A pass that
    // errored fatally above leaves the archive manifest-less (= absent).
    let quarantined = supervisor
        .as_ref()
        .map(|s| s.quarantined())
        .unwrap_or_default();
    if let Some(w) = &writer {
        if quarantined.is_empty() {
            w.finish()?;
        } else {
            w.checkpoint()?;
        }
    }

    let (degraded, supervisor_metrics) = match &supervisor {
        Some(sup) => {
            let metrics = sup.metrics();
            metrics.resumed_cells.set_max(tallies.resumed);
            let mut affected: BTreeMap<String, u64> = BTreeMap::new();
            for q in &quarantined {
                let mut seen = BTreeSet::new();
                for sub in &subs {
                    if sub.covers(q.cell) {
                        let label = sub.label.clone().unwrap_or_else(|| "unlabeled".to_string());
                        if seen.insert(label.clone()) {
                            *affected.entry(label).or_default() += 1;
                        }
                    }
                }
            }
            let report = DegradedReport {
                quarantined,
                affected: affected.into_iter().collect(),
                retries: metrics.retries.get(),
            };
            (report.is_degraded().then_some(report), Some(metrics))
        }
        None => (None, None),
    };

    Ok(EngineOutput {
        stats: EngineStats {
            demands: merged.len(),
            cells_demanded: trace.cells_demanded(),
            cells_generated: tallies.generated,
            cells_replayed: tallies.replayed,
            cells_resumed: tallies.resumed,
            cells_quarantined: degraded
                .as_ref()
                .map(|d| d.quarantined.len() as u64)
                .unwrap_or(0),
            retries: supervisor_metrics
                .as_ref()
                .map(|m| m.retries.get())
                .unwrap_or(0),
            flows_emitted: tallies.flows,
            workers,
        },
        consumers: merged.into_iter().map(Some).collect(),
        audit: plane.as_ref().and_then(|p| p.audit_report()),
        wire_metrics: plane.map(|p| p.metrics()),
        store_metrics,
        supervisor_metrics,
        degraded,
    })
}

/// Alias of [`run_with_workers`], kept for call sites that want the
/// archived-pass intent in the name.
pub fn try_run_with_workers(
    ctx: &Context,
    plan: EnginePlan,
    workers: usize,
) -> Result<EngineOutput, StoreError> {
    run_with_workers(ctx, plan, workers)
}

/// Everything one shard worker hands back after running a cell-index
/// slice of a plan: serialized consumer states, cell accounting, the
/// archive segment inventory it spilled, and any quarantined cells.
#[derive(Debug, Default)]
pub struct SliceOutcome {
    /// One encoded state frame per subscription, in subscription order
    /// (consumers whose windows miss the slice still contribute an empty
    /// state — merging it is the identity).
    pub states: Vec<Vec<u8>>,
    /// Flow records fanned out across the slice's cells.
    pub flows: u64,
    /// Distinct cells generated.
    pub generated: u64,
    /// Distinct cells replayed from the archive.
    pub replayed: u64,
    /// Of the replayed cells, how many came from journal adoption.
    pub resumed: u64,
    /// Cell attempts beyond the first (supervised slices only).
    pub retries: u64,
    /// Segments this slice spilled (cold archived slices only); the
    /// coordinator adopts these into the one published manifest.
    pub segments: Vec<SegmentMeta>,
    /// Cells the slice's supervisor quarantined.
    pub quarantined: Vec<QuarantinedCell>,
}

/// Run one cell-index slice `[range.start, range.end)` of a plan's sorted
/// cell list — the shard worker's half of a coordinated pass. Semantics
/// match [`run_with_workers`] except:
///
/// * only the slice's cells execute, sequentially (worker *processes* are
///   the parallelism, so a second thread pool inside each would fight the
///   scheduler);
/// * an archived cold slice spills through [`ArchiveWriter::attach`] —
///   segment files only, never the manifest or journal, which belong to
///   the coordinator;
/// * nothing is published: the consumers come back as codec frames for
///   [`ShardAssembler::absorb`] to merge.
///
/// The plan must be built identically on both sides (guarded by the plan
/// hash in the shard protocol); wire mode does not cross the shard
/// boundary.
pub fn run_slice(
    ctx: &Context,
    plan: EnginePlan,
    range: std::ops::Range<usize>,
) -> Result<SliceOutcome, StoreError> {
    let EnginePlan {
        trace,
        subs,
        wire,
        archive,
        supervisor: supervisor_cfg,
        scope: _,
    } = plan;
    assert!(
        wire.is_none(),
        "wire mode does not cross the shard boundary"
    );
    let emitter =
        TraceEmitter::with_scenario(&ctx.registry, &ctx.corpus, ctx.config, &ctx.scenario);
    let cells = trace.cells();
    let start = range.start.min(cells.len());
    let end = range.end.min(cells.len()).max(start);
    let slice = &cells[start..end];
    let supervisor = supervisor_cfg.map(Supervisor::new);

    // Archive resolution mirrors the coordinator's: a same-generation
    // manifest covering the slice means warm replay; anything else means
    // the coordinator already invalidated the index and this slice spills
    // fresh segments in attach (index-untouching) mode.
    let store_metrics = archive.as_ref().map(|_| StoreMetrics::new());
    let mut reader: Option<ArchiveReader> = None;
    let mut writer: Option<ArchiveWriter> = None;
    if let (Some(dir), Some(metrics)) = (&archive, &store_metrics) {
        let key = StoreKey {
            seed: ctx.config.seed,
            scenario_hash: ctx.scenario_hash(),
            plan_hash: trace.plan_hash(),
        };
        let opened = match ArchiveReader::open(dir, Arc::clone(metrics)) {
            Ok(r) => r,
            Err(StoreError::Corrupt { .. }) if supervisor.is_some() => {
                metrics.resume_rejected.inc();
                None
            }
            Err(e) => return Err(e),
        };
        match opened {
            Some(r) if r.key().same_generation(&key) && r.covers(slice.iter()) => {
                reader = Some(r);
            }
            _ => writer = Some(ArchiveWriter::attach(dir, key, Arc::clone(metrics))?),
        }
    }
    let scan = match (&reader, &store_metrics) {
        (Some(r), Some(m)) => Some(SegmentScan::new(r, slice.iter().copied(), m)),
        _ => None,
    };

    let adopted = BTreeMap::new();
    let mut consumers: Vec<Box<dyn AnyConsumer>> = subs.iter().map(|s| (s.factory)()).collect();
    let mut tallies = Tallies::default();
    let runner = CellRunner {
        emitter: &emitter,
        scan: scan.as_ref(),
        writer: writer.as_ref(),
        adopted: &adopted,
        plane: None,
        supervisor: supervisor.as_ref(),
        store_metrics: store_metrics.as_ref(),
        subs: &subs,
    };
    let mut buf = Vec::new();
    for &cell in slice {
        runner.process(cell, &mut buf, &mut consumers, &mut tallies)?;
    }

    Ok(SliceOutcome {
        states: consumers.iter().map(|c| c.encode_state_frame()).collect(),
        flows: tallies.flows,
        generated: tallies.generated,
        replayed: tallies.replayed,
        resumed: tallies.resumed,
        retries: supervisor
            .as_ref()
            .map(|s| s.metrics().retries.get())
            .unwrap_or(0),
        segments: writer.as_ref().map(|w| w.metas()).unwrap_or_default(),
        quarantined: supervisor
            .as_ref()
            .map(|s| s.quarantined())
            .unwrap_or_default(),
    })
}

/// The shard coordinator's merge half: owns the archive index, merges
/// worker [`SliceOutcome`]s through the consumer-state codec, and
/// produces an [`EngineOutput`] indistinguishable from a single-process
/// [`run_with_workers`] pass over the same plan.
///
/// Construction resolves the archive (warm manifest kept, anything else
/// invalidated) *before* any worker opens it, so every worker sees a
/// consistent warm/cold decision.
pub struct ShardAssembler {
    subs: Vec<Subscription>,
    merged: Vec<Box<dyn AnyConsumer>>,
    cells: Vec<Cell>,
    plan_hash: u64,
    cells_demanded: u64,
    warm: bool,
    writer: Option<ArchiveWriter>,
    store_metrics: Option<Arc<StoreMetrics>>,
    supervised: bool,
    tallies: Tallies,
    retries: u64,
    quarantined: Vec<QuarantinedCell>,
}

impl ShardAssembler {
    /// Prepare a coordinated pass: build the merge targets and resolve
    /// the archive. Wire mode is not supported across the shard boundary.
    pub fn new(ctx: &Context, plan: EnginePlan) -> Result<ShardAssembler, StoreError> {
        let EnginePlan {
            trace,
            subs,
            wire,
            archive,
            supervisor: supervisor_cfg,
            scope: _,
        } = plan;
        assert!(
            wire.is_none(),
            "wire mode does not cross the shard boundary"
        );
        let cells = trace.cells();
        let plan_hash = trace.plan_hash();
        let cells_demanded = trace.cells_demanded();
        let store_metrics = archive.as_ref().map(|_| StoreMetrics::new());
        let mut warm = false;
        let mut writer = None;
        if let (Some(dir), Some(metrics)) = (&archive, &store_metrics) {
            let key = StoreKey {
                seed: ctx.config.seed,
                scenario_hash: ctx.scenario_hash(),
                plan_hash,
            };
            let opened = match ArchiveReader::open(dir, Arc::clone(metrics)) {
                Ok(r) => r,
                Err(StoreError::Corrupt { .. }) => {
                    metrics.resume_rejected.inc();
                    None
                }
                Err(e) => return Err(e),
            };
            match opened {
                Some(r) if r.key().same_generation(&key) && r.covers(cells.iter()) => warm = true,
                _ => writer = Some(ArchiveWriter::create(dir, key, Arc::clone(metrics))?),
            }
        }
        let merged = subs.iter().map(|s| s.build()).collect();
        Ok(ShardAssembler {
            subs,
            merged,
            cells,
            plan_hash,
            cells_demanded,
            warm,
            writer,
            store_metrics,
            supervised: supervisor_cfg.is_some(),
            tallies: Tallies::default(),
            retries: 0,
            quarantined: Vec::new(),
        })
    }

    /// Fingerprint of the deduplicated cell plan; workers echo it back so
    /// an assignment can never run against a differently built plan.
    pub fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// Number of cells in the sorted plan (the assignment index space).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Whether the pass replays a warm archive (workers decode segments
    /// instead of generating, and no segments come back to adopt).
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Merge one worker's slice into the coordinator state: consumer
    /// frames through the codec, tallies additively, segments adopted
    /// into the pending manifest. A frame that fails to decode is
    /// surfaced as archive-grade corruption — the slice must be re-run,
    /// not silently dropped.
    pub fn absorb(&mut self, outcome: SliceOutcome) -> Result<(), StoreError> {
        if outcome.states.len() != self.merged.len() {
            return Err(StoreError::Corrupt {
                segment: "consumer state".to_string(),
                detail: format!(
                    "worker returned {} states for {} subscriptions",
                    outcome.states.len(),
                    self.merged.len()
                ),
            });
        }
        for (consumer, frame) in self.merged.iter_mut().zip(&outcome.states) {
            consumer
                .merge_state_frame(frame)
                .map_err(|e| StoreError::Corrupt {
                    segment: "consumer state".to_string(),
                    detail: e.to_string(),
                })?;
        }
        self.tallies.flows += outcome.flows;
        self.tallies.generated += outcome.generated;
        self.tallies.replayed += outcome.replayed;
        self.tallies.resumed += outcome.resumed;
        self.retries += outcome.retries;
        if let Some(w) = &self.writer {
            for meta in outcome.segments {
                w.adopt(meta)?;
            }
        }
        self.quarantined.extend(outcome.quarantined);
        Ok(())
    }

    /// Quarantine a whole assignment range: every replica of these cells
    /// died. The archive must not claim any of them, and each cell is
    /// reported exactly like a supervisor quarantine.
    pub fn quarantine_range(&mut self, range: std::ops::Range<usize>, attempts: u32, error: &str) {
        let start = range.start.min(self.cells.len());
        let end = range.end.min(self.cells.len()).max(start);
        for &cell in &self.cells[start..end] {
            if let Some(w) = &self.writer {
                let _ = w.remove(cell);
            }
            self.quarantined.push(QuarantinedCell {
                cell,
                attempts,
                error: error.to_string(),
            });
        }
    }

    /// Publish and assemble: manifest on a clean pass, resumable journal
    /// on a degraded one, and an [`EngineOutput`] carrying the merged
    /// consumers, the combined stats and the degraded-mode report.
    /// `workers` is recorded in the stats (worker processes, not threads).
    pub fn finish(self, workers: usize) -> Result<EngineOutput, StoreError> {
        let mut quarantined = self.quarantined;
        quarantined.sort_by_key(|q| q.cell);
        if let Some(w) = &self.writer {
            if quarantined.is_empty() {
                w.finish()?;
            } else {
                w.checkpoint()?;
            }
        }
        let degraded = if quarantined.is_empty() {
            None
        } else {
            let mut affected: BTreeMap<String, u64> = BTreeMap::new();
            for q in &quarantined {
                let mut seen = BTreeSet::new();
                for sub in &self.subs {
                    if sub.covers(q.cell) {
                        let label = sub.label.clone().unwrap_or_else(|| "unlabeled".to_string());
                        if seen.insert(label.clone()) {
                            *affected.entry(label).or_default() += 1;
                        }
                    }
                }
            }
            Some(DegradedReport {
                quarantined: quarantined.clone(),
                affected: affected.into_iter().collect(),
                retries: self.retries,
            })
        };
        Ok(EngineOutput {
            stats: EngineStats {
                demands: self.merged.len(),
                cells_demanded: self.cells_demanded,
                cells_generated: self.tallies.generated,
                cells_replayed: self.tallies.replayed,
                cells_resumed: self.tallies.resumed,
                cells_quarantined: quarantined.len() as u64,
                retries: self.retries,
                flows_emitted: self.tallies.flows,
                workers,
            },
            consumers: self.merged.into_iter().map(Some).collect(),
            wire_metrics: None,
            audit: None,
            store_metrics: self.store_metrics,
            supervisor_metrics: self.supervised.then(|| {
                let m = SupervisorMetrics::new();
                m.retries.add(self.retries);
                m.quarantined_cells.set_max(quarantined.len() as u64);
                m.resumed_cells.set_max(self.tallies.resumed);
                m
            }),
            degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use lockdown_analysis::timeseries::HourlyVolume;
    use lockdown_topology::vantage::VantagePoint;

    #[test]
    fn overlapping_subscriptions_share_cells() {
        let ctx = Context::with_seed(Fidelity::Test, 3);
        let mut plan = EnginePlan::new();
        let vp = VantagePoint::IxpSe;
        let d1 = Date::new(2020, 2, 3);
        let d2 = Date::new(2020, 2, 6);
        let a = plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
        let b = plan.subscribe(Stream::Vantage(vp), d1, d1, HourlyVolume::new);
        let mut out = run_with_workers(&ctx, plan, 2).expect("archive-free pass cannot fail");
        let stats = out.stats();
        // 4 + 1 days demanded, 4 distinct days generated.
        assert_eq!(stats.cells_demanded, 5 * 24);
        assert_eq!(stats.cells_generated, 4 * 24);
        let full = out.take(a);
        let first_day = out.take(b);
        assert_eq!(full.daily_total(d1), first_day.daily_total(d1));
        assert!(first_day.daily_total(d2) == 0, "window gates fan-out");
    }

    #[test]
    fn sharded_slices_match_single_process() {
        let ctx = Context::with_seed(Fidelity::Test, 9);
        let d1 = Date::new(2020, 3, 9);
        let d2 = Date::new(2020, 3, 12);
        let build = |plan: &mut EnginePlan| {
            plan.subscribe(
                Stream::Vantage(VantagePoint::IxpSe),
                d1,
                d2,
                HourlyVolume::new,
            )
        };
        let mut plan = EnginePlan::new();
        let h = build(&mut plan);
        let mut reference = run_with_workers(&ctx, plan, 1).expect("archive-free pass cannot fail");
        let series = reference.take(h).hourly_series(d1, d2);

        // Three disjoint slices, each run through its own plan instance
        // (as worker processes would), absorbed out of order.
        let mut coord_plan = EnginePlan::new();
        let ch = build(&mut coord_plan);
        let mut asm = ShardAssembler::new(&ctx, coord_plan).expect("assembler");
        let n = asm.cell_count();
        assert_eq!(n, 4 * 24);
        let cuts = [0, n / 3, 2 * n / 3, n];
        let mut outcomes = Vec::new();
        for w in 0..3 {
            let mut p = EnginePlan::new();
            build(&mut p);
            outcomes.push(run_slice(&ctx, p, cuts[w]..cuts[w + 1]).expect("slice"));
        }
        outcomes.rotate_left(1);
        for o in outcomes {
            asm.absorb(o).expect("absorb");
        }
        let mut merged = asm.finish(3).expect("finish");
        assert_eq!(merged.stats().cells_generated, (4 * 24) as u64);
        assert!(merged.degraded().is_none());
        assert_eq!(merged.take(ch).hourly_series(d1, d2), series);
    }

    #[test]
    fn quarantined_ranges_degrade_the_assembled_pass() {
        let ctx = Context::with_seed(Fidelity::Test, 9);
        let d = Date::new(2020, 3, 9);
        let mut plan = EnginePlan::new();
        plan.with_supervisor(lockdown_chaos::ChaosConfig::zero());
        plan.scoped("fig-x", |p| {
            p.subscribe(
                Stream::Vantage(VantagePoint::IxpSe),
                d,
                d,
                HourlyVolume::new,
            )
        });
        let mut asm = ShardAssembler::new(&ctx, plan).expect("assembler");
        asm.quarantine_range(0..2, 3, "worker died (test)");
        let out = asm.finish(2).expect("finish");
        let report = out.degraded().expect("degraded");
        assert_eq!(report.quarantined.len(), 2);
        assert_eq!(report.affected, vec![("fig-x".to_string(), 2)]);
        assert!(report
            .render()
            .contains("DEGRADED PASS: 2 cells quarantined"));
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let ctx = Context::with_seed(Fidelity::Test, 5);
        let d1 = Date::new(2020, 3, 1);
        let d2 = Date::new(2020, 3, 4);
        let mut reference: Option<Vec<(lockdown_flow::time::Timestamp, u64)>> = None;
        for workers in [1usize, 2, 3, 8] {
            let mut plan = EnginePlan::new();
            let h = plan.subscribe(
                Stream::Vantage(VantagePoint::IspCe),
                d1,
                d2,
                HourlyVolume::new,
            );
            let mut out =
                run_with_workers(&ctx, plan, workers).expect("archive-free pass cannot fail");
            let series = out.take(h).hourly_series(d1, d2);
            match &reference {
                None => reference = Some(series),
                Some(r) => assert_eq!(r, &series, "workers={workers}"),
            }
        }
    }
}
