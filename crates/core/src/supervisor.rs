//! Supervised cell execution: panic isolation, retries, quarantine.
//!
//! The engine's default contract is all-or-nothing — a worker panic or a
//! flipped archive byte kills the whole pass. That is the wrong shape for
//! a measurement plane that runs for months: real exporters stall, disks
//! fill, and a single bad hour must not take down a week of figures. With
//! a [`Supervisor`] attached (via
//! [`EnginePlan::with_supervisor`](crate::engine::EnginePlan::with_supervisor)),
//! each cell attempt runs inside `catch_unwind`; failures are classified
//! retriable (panics, stalls, I/O, corruption) or fatal (a demanded cell
//! genuinely missing), retried under seeded bounded-exponential backoff,
//! and — once the per-cell attempt budget is exhausted — **quarantined**:
//! the pass completes without the cell, the suite renders a degraded-mode
//! report naming it, and the conservation auditor records the quarantine
//! as a first-class outcome instead of a violation.
//!
//! All fault *scheduling* lives in [`lockdown_chaos`] and is a pure
//! function of `(seed, cell, attempt)`, so the quarantine set of a chaos
//! run is identical across repeat runs and worker counts — which is what
//! the failure-injection tests assert.

use lockdown_chaos::{CellChaos, ChaosConfig, ChaosInjector, InjectedPanic};
use lockdown_collect::metrics::{Metric, MetricsRegistry};
use lockdown_traffic::plan::Cell;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, Once};

pub use lockdown_chaos::{ChaosConfig as SupervisorConfig, WriteFault};

/// The `supervisor_*` metrics family, on the same Prometheus-style
/// registry as the wire and store families.
#[derive(Debug)]
pub struct SupervisorMetrics {
    registry: MetricsRegistry,
    /// Cell attempts beyond the first (each one follows a backoff delay).
    pub retries: Arc<Metric>,
    /// Total milliseconds of backoff delay served before retries.
    pub backoff_ms: Arc<Metric>,
    /// Worker panics caught by cell isolation (injected or genuine).
    pub panics_caught: Arc<Metric>,
    /// Injected segment-write faults (torn writes and ENOSPC).
    pub write_faults: Arc<Metric>,
    /// Injected exporter stall timeouts.
    pub stalls: Arc<Metric>,
    /// Archived segments that failed integrity checks and were
    /// regenerated instead of aborting the pass.
    pub replay_corruptions: Arc<Metric>,
    /// Cells quarantined after exhausting their attempt budget (gauge).
    pub quarantined_cells: Arc<Metric>,
    /// Cells adopted from a checkpoint journal instead of regenerated
    /// (gauge).
    pub resumed_cells: Arc<Metric>,
}

impl SupervisorMetrics {
    /// Build the metric set inside a fresh registry.
    pub fn new() -> Arc<SupervisorMetrics> {
        let mut r = MetricsRegistry::new();
        Arc::new(SupervisorMetrics {
            retries: r.counter("supervisor_retries_total", "Cell attempts beyond the first"),
            backoff_ms: r.counter(
                "supervisor_backoff_ms_total",
                "Milliseconds of backoff delay before retries",
            ),
            panics_caught: r.counter(
                "supervisor_panics_caught_total",
                "Worker panics caught by cell isolation",
            ),
            write_faults: r.counter(
                "supervisor_write_faults_total",
                "Injected segment-write faults (torn writes and ENOSPC)",
            ),
            stalls: r.counter(
                "supervisor_stalls_total",
                "Injected exporter stall timeouts",
            ),
            replay_corruptions: r.counter(
                "supervisor_replay_corruptions_total",
                "Corrupt archived segments regenerated instead of aborting",
            ),
            quarantined_cells: r.gauge(
                "supervisor_quarantined_cells",
                "Cells quarantined after exhausting their attempt budget",
            ),
            resumed_cells: r.gauge(
                "supervisor_resumed_cells",
                "Cells adopted from a checkpoint journal instead of regenerated",
            ),
            registry: r,
        })
    }

    /// The underlying registry (for lookups and snapshot composition).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Prometheus-style text snapshot of the `supervisor_*` family.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

/// One cell the supervisor gave up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// The missing `(stream, date, hour)` cell.
    pub cell: Cell,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// The last attempt's failure, rendered.
    pub error: String,
}

/// What a degraded pass is missing: the quarantine set plus which figures
/// it touches. Attached to the suite output so CI can tell "clean",
/// "degraded" and "failed" apart (the CLI exits 3 on degraded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// Quarantined cells in `(stream, date, hour)` order.
    pub quarantined: Vec<QuarantinedCell>,
    /// Figure labels affected, with the count of quarantined cells inside
    /// each one's subscription windows. Sorted by label.
    pub affected: Vec<(String, u64)>,
    /// Total retries the pass performed (including ones that recovered).
    pub retries: u64,
}

impl DegradedReport {
    /// Whether anything is actually missing.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Human-readable degraded-mode report, deterministic for a given
    /// quarantine set.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "DEGRADED PASS: {} cells quarantined, {} retries",
            self.quarantined.len(),
            self.retries
        );
        for q in &self.quarantined {
            let _ = writeln!(
                s,
                "  quarantined [wire {} day {} hour {:02}] after {} attempts: {}",
                q.cell.stream.wire_id(),
                q.cell.date.day_number(),
                q.cell.hour,
                q.attempts,
                q.error
            );
        }
        for (label, cells) in &self.affected {
            let _ = writeln!(s, "  affected figure {label}: {cells} missing cells");
        }
        s
    }
}

/// Install (once, process-wide) a panic hook that silences scheduled
/// chaos panics — their payload is [`InjectedPanic`] — and forwards
/// everything else to the previous hook. Without this, a chaos run's
/// stderr drowns in backtraces for panics the supervisor is about to
/// catch on purpose.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// How one cell attempt failed (internal classification surface).
#[derive(Debug)]
pub(crate) enum AttemptError {
    /// The attempt panicked (injected or genuine) and was caught.
    Panic(String),
    /// The store layer failed (I/O, corruption).
    Store(lockdown_store::StoreError),
    /// The exporter fleet stalled past its timeout (injected).
    Stall,
}

impl AttemptError {
    /// Fatal errors abort the pass even under supervision: retrying
    /// cannot make a demanded-but-unarchived cell appear.
    pub(crate) fn fatal(&self) -> Option<&lockdown_store::StoreError> {
        match self {
            AttemptError::Store(e @ lockdown_store::StoreError::Missing { .. }) => Some(e),
            _ => None,
        }
    }

    pub(crate) fn render(&self) -> String {
        match self {
            AttemptError::Panic(msg) => format!("panic: {msg}"),
            AttemptError::Store(e) => e.to_string(),
            AttemptError::Stall => "exporter stall timeout (injected)".to_string(),
        }
    }
}

/// The supervised-execution control surface one engine pass shares across
/// its workers: the seeded fault schedule, the retry budget, the
/// `supervisor_*` metrics, and the quarantine list.
#[derive(Debug)]
pub struct Supervisor {
    injector: ChaosInjector,
    metrics: Arc<SupervisorMetrics>,
    quarantined: Mutex<Vec<QuarantinedCell>>,
}

impl Supervisor {
    /// A supervisor for one pass. A [`ChaosConfig::zero`] configuration
    /// gives supervision — panic isolation, retries, checkpoint/resume —
    /// without any injected faults.
    pub fn new(cfg: ChaosConfig) -> Supervisor {
        install_quiet_panic_hook();
        Supervisor {
            injector: ChaosInjector::new(cfg),
            metrics: SupervisorMetrics::new(),
            quarantined: Mutex::new(Vec::new()),
        }
    }

    /// The configuration driving this supervisor.
    pub fn config(&self) -> &ChaosConfig {
        self.injector.config()
    }

    /// Shared handle to the `supervisor_*` metrics.
    pub fn metrics(&self) -> Arc<SupervisorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Per-cell attempt budget.
    pub(crate) fn attempts(&self) -> u32 {
        self.config().attempts.max(1)
    }

    /// The fault schedule for one `(cell, attempt)` slot.
    pub(crate) fn decide(&self, cell: Cell, attempt: u32) -> CellChaos {
        self.injector.decide(
            cell.stream.wire_id(),
            cell.date.day_number(),
            cell.hour,
            attempt,
        )
    }

    /// Serve the deterministic backoff delay before retry `attempt` and
    /// account it. Returns the delay in milliseconds.
    pub(crate) fn backoff(&self, cell: Cell, attempt: u32) -> u64 {
        let ms = self.injector.backoff_ms(
            cell.stream.wire_id(),
            cell.date.day_number(),
            cell.hour,
            attempt,
        );
        self.metrics.retries.inc();
        self.metrics.backoff_ms.add(ms);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        ms
    }

    /// Build the injected panic payload for one `(cell, attempt)` slot.
    pub(crate) fn injected_panic(&self, cell: Cell, attempt: u32) -> InjectedPanic {
        InjectedPanic {
            wire_id: cell.stream.wire_id(),
            day_number: cell.date.day_number(),
            hour: cell.hour,
            attempt,
        }
    }

    /// Record a cell that exhausted its budget.
    pub(crate) fn quarantine(&self, cell: Cell, attempts: u32, error: String) {
        self.quarantined
            .lock()
            .expect("quarantine list lock")
            .push(QuarantinedCell {
                cell,
                attempts,
                error,
            });
        self.metrics
            .quarantined_cells
            .set_max(self.quarantined.lock().expect("quarantine list lock").len() as u64);
    }

    /// The quarantine set so far, sorted by cell.
    pub(crate) fn quarantined(&self) -> Vec<QuarantinedCell> {
        let mut q = self
            .quarantined
            .lock()
            .expect("quarantine list lock")
            .clone();
        q.sort_by_key(|q| q.cell);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::time::Date;
    use lockdown_topology::vantage::VantagePoint;
    use lockdown_traffic::plan::Stream;

    fn cell(hour: u8) -> Cell {
        Cell {
            stream: Stream::Vantage(VantagePoint::IspCe),
            date: Date::new(2020, 3, 25),
            hour,
        }
    }

    #[test]
    fn zero_config_supervisor_schedules_nothing() {
        let s = Supervisor::new(ChaosConfig::zero());
        for h in 0..24 {
            assert!(s.decide(cell(h), 0).is_clean());
        }
        assert_eq!(s.metrics.retries.get(), 0);
    }

    #[test]
    fn quarantine_set_is_sorted_and_counted() {
        let s = Supervisor::new(ChaosConfig::zero());
        s.quarantine(cell(9), 3, "panic: injected".into());
        s.quarantine(cell(2), 3, "torn write".into());
        let q = s.quarantined();
        assert_eq!(q.len(), 2);
        assert!(q[0].cell.hour < q[1].cell.hour, "sorted by cell");
        assert_eq!(s.metrics.quarantined_cells.get(), 2);
    }

    #[test]
    fn degraded_report_renders_cells_and_figures() {
        let report = DegradedReport {
            quarantined: vec![QuarantinedCell {
                cell: cell(14),
                attempts: 3,
                error: "panic: injected".into(),
            }],
            affected: vec![("fig3".into(), 1)],
            retries: 5,
        };
        assert!(report.is_degraded());
        let text = report.render();
        assert!(text.contains("DEGRADED PASS: 1 cells quarantined, 5 retries"));
        assert!(text.contains("hour 14"));
        assert!(text.contains("affected figure fig3: 1 missing cells"));
        assert!(!DegradedReport::default().is_degraded());
    }

    #[test]
    fn metrics_render_the_supervisor_family() {
        let m = SupervisorMetrics::new();
        m.retries.add(4);
        m.backoff_ms.add(120);
        let text = m.render();
        assert!(text.contains("supervisor_retries_total 4"));
        assert!(text.contains("supervisor_backoff_ms_total 120"));
        assert!(text.contains("# TYPE supervisor_quarantined_cells gauge"));
    }
}
