//! # lockdown-core
//!
//! Experiment drivers reproducing every figure and table of "The Lockdown
//! Effect" (IMC 2020) over the synthetic substrate, plus text/CSV report
//! rendering. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod engine;
pub mod experiments;
pub mod matrix;
pub mod report;
pub mod serve;
pub mod supervisor;

pub use context::{Context, Fidelity};
pub use matrix::{run_matrix, MatrixOptions, MatrixRun, MatrixScenario, MatrixStats, ScenarioRun};
