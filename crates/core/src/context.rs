//! Shared experiment context: one registry, DNS corpus and generator pair
//! that every figure reproduction runs against, under one scenario.

use lockdown_dns::corpus::{synthesize, Corpus};
use lockdown_dns::vpn::identify_vpn_ips;
use lockdown_scenario::measures::ScenarioSpec;
use lockdown_topology::registry::Registry;
use lockdown_traffic::config::GeneratorConfig;
use lockdown_traffic::edu_gen::EduGenerator;
use lockdown_traffic::generate::TrafficGenerator;
use lockdown_traffic::plan::fold_hash;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How much synthetic data an experiment run generates.
///
/// All figures are normalized/relative, so fidelity trades statistical
/// smoothness against runtime without moving the expected curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Minimal resolution: CI-friendly; curves are noisy but ordering
    /// relations (who grows, who shrinks) hold.
    Test,
    /// Default resolution used by the examples and benches.
    Standard,
    /// High resolution for statistics-hungry figures (unique IPs, ports).
    High,
}

impl Fidelity {
    /// Generator configuration for this fidelity.
    pub fn config(self, seed: u64) -> GeneratorConfig {
        match self {
            Fidelity::Test => GeneratorConfig::coarse(seed),
            Fidelity::Standard => GeneratorConfig::with_seed(seed),
            Fidelity::High => GeneratorConfig::high_resolution(seed),
        }
    }
}

/// Everything an experiment needs, built once.
#[derive(Debug)]
pub struct Context {
    /// The synthetic AS registry.
    pub registry: Registry,
    /// The synthetic DNS corpus.
    pub corpus: Corpus,
    /// Generator configuration in use.
    pub config: GeneratorConfig,
    /// The scenario every generator interprets. Shared (`Arc`) so a
    /// matrix run can fan one context out into per-scenario lanes.
    pub scenario: Arc<ScenarioSpec>,
}

impl Context {
    /// Build a context at a fidelity with the default experiment seed.
    pub fn new(fidelity: Fidelity) -> Context {
        Context::with_seed(fidelity, 0x10CD_2020)
    }

    /// Build a context with an explicit seed, under the built-in COVID
    /// spring-2020 scenario.
    pub fn with_seed(fidelity: Fidelity, seed: u64) -> Context {
        Context::with_scenario(fidelity, seed, ScenarioSpec::covid_spring_2020())
    }

    /// Build a context under an explicit scenario. With
    /// [`ScenarioSpec::covid_spring_2020`] this is byte-identical to
    /// [`Context::with_seed`].
    pub fn with_scenario(fidelity: Fidelity, seed: u64, scenario: ScenarioSpec) -> Context {
        let registry = Registry::synthesize();
        let corpus = synthesize(&registry, seed);
        Context {
            registry,
            corpus,
            config: fidelity.config(seed),
            scenario: Arc::new(scenario),
        }
    }

    /// A trace generator borrowing this context, interpreting its
    /// scenario.
    pub fn generator(&self) -> TrafficGenerator<'_> {
        TrafficGenerator::with_scenario(&self.registry, &self.corpus, self.config, &self.scenario)
    }

    /// An EDU generator borrowing this context, interpreting its
    /// scenario.
    pub fn edu_generator(&self) -> EduGenerator<'_> {
        EduGenerator::with_scenario(&self.registry, self.config, &self.scenario)
    }

    /// Stable fingerprint of everything non-seed that shapes generated
    /// traffic: the generator scaling knobs *and* the scenario's
    /// behavioural content. Archives key their manifests on it, so a
    /// store written under one scenario is never replayed into another.
    pub fn scenario_hash(&self) -> u64 {
        fold_hash([self.config.scenario_hash(), self.scenario.fingerprint()])
    }

    /// The §6 candidate VPN endpoint set, derived from the corpus the way
    /// the paper derives it from CT logs/forward DNS.
    pub fn vpn_candidate_ips(&self) -> BTreeSet<Ipv4Addr> {
        identify_vpn_ips(&self.corpus.db).vpn_ips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_identifies_vpn_ips() {
        let ctx = Context::new(Fidelity::Test);
        assert!(!ctx.vpn_candidate_ips().is_empty());
        let g = ctx.generator();
        assert_eq!(g.config().seed, 0x10CD_2020);
    }

    #[test]
    fn fidelity_ordering() {
        let t = Fidelity::Test.config(1);
        let s = Fidelity::Standard.config(1);
        let h = Fidelity::High.config(1);
        assert!(t.flows_per_gbps < s.flows_per_gbps);
        assert!(s.flows_per_gbps < h.flows_per_gbps);
    }

    #[test]
    fn scenario_hash_tracks_spec_behaviour() {
        let a = Context::new(Fidelity::Test);
        let b = Context::with_scenario(
            Fidelity::Test,
            0x10CD_2020,
            ScenarioSpec::covid_spring_2020(),
        );
        assert_eq!(a.scenario_hash(), b.scenario_hash());

        let mut renamed = ScenarioSpec::covid_spring_2020();
        renamed.name = "renamed".into();
        let c = Context::with_scenario(Fidelity::Test, 0x10CD_2020, renamed);
        assert_eq!(a.scenario_hash(), c.scenario_hash(), "names are cosmetic");

        let mut tweaked = ScenarioSpec::covid_spring_2020();
        tweaked.baseline.organic_weekly = 1.01;
        let d = Context::with_scenario(Fidelity::Test, 0x10CD_2020, tweaked);
        assert_ne!(a.scenario_hash(), d.scenario_hash());
    }
}
