//! Plain-text and CSV rendering for experiment results.
//!
//! Every experiment returns a typed result; these helpers turn series and
//! tables into the aligned text the example binaries and EXPERIMENTS.md
//! print, plus CSV for external plotting.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (naive quoting: cells with commas get quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let csv_row = |out: &mut String, cells: &[String]| {
            let encoded: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&encoded.join(","));
            out.push('\n');
        };
        csv_row(&mut out, &self.header);
        for row in &self.rows {
            csv_row(&mut out, row);
        }
        out
    }
}

/// Format a ratio as a percentage change string ("+23.4%", "-12.0%").
pub fn pct_change(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Format an optional normalized value ("1.23" or "-").
pub fn opt_norm(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
}

/// Render a compact sparkline of a normalized series (for terminal
/// output), mapping `[0, max]` onto eight block glyphs.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    if values.is_empty() || max <= 0.0 {
        return String::new();
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            GLYPHS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligned() {
        let mut t = TextTable::new(["week", "value"]);
        t.row(["3", "1.000"]);
        t.row(["12", "1.214"]);
        let s = t.render();
        assert!(s.contains("week  value"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_quoting() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct_change(1.234), "+23.4%");
        assert_eq!(pct_change(0.88), "-12.0%");
        assert_eq!(opt_norm(Some(1.5)), "1.500");
        assert_eq!(opt_norm(None), "-");
    }

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
