//! Property tests for the analysis primitives: accumulators must be
//! order-insensitive and merge-consistent, the ECDF must behave like a
//! distribution function, and classifiers must be total and stable.

use lockdown_analysis::appclass::Classifier;
use lockdown_analysis::ecdf::Ecdf;
use lockdown_analysis::edu::{orientation, EduTrafficClass};
use lockdown_analysis::ports::ServiceKey;
use lockdown_analysis::timeseries::{median, normalize_by_min, HourlyVolume};
use lockdown_analysis::vpn::is_port_vpn;
use lockdown_flow::protocol::IpProtocol;
use lockdown_flow::record::{FlowKey, FlowRecord};
use lockdown_flow::time::{Date, Timestamp};
use lockdown_topology::registry::Registry;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::synthesize)
}

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8), Just(47u8), Just(50u8), any::<u8>()],
        0u64..10_000_000, // start offset into 2020
        1u64..1_000_000_000,
        (0u32..200_000, 0u32..200_000),
    )
        .prop_map(|(sa, da, sp, dp, proto, off, bytes, (sas, das))| {
            let start = Date::new(2020, 1, 1).midnight().add_secs(off);
            FlowRecord::builder(
                FlowKey {
                    src_addr: Ipv4Addr::from(sa),
                    dst_addr: Ipv4Addr::from(da),
                    src_port: sp,
                    dst_port: dp,
                    protocol: IpProtocol::from_number(proto),
                },
                start,
            )
            .end(start.add_secs(60))
            .bytes(bytes)
            .packets(bytes / 1_000 + 1)
            .asns(sas, das)
            .build()
        })
}

proptest! {
    /// HourlyVolume is order-insensitive and merge equals bulk add.
    #[test]
    #[test]
    fn hourly_volume_order_and_merge(records in prop::collection::vec(arb_record(), 0..80)) {
        let mut forward = HourlyVolume::new();
        forward.add_all(&records);
        let mut backward = HourlyVolume::new();
        for r in records.iter().rev() {
            backward.add(r);
        }
        let d = Date::new(2020, 1, 15);
        for h in 0..24 {
            prop_assert_eq!(forward.get(d, h), backward.get(d, h));
        }

        // Split + merge == bulk.
        let mid = records.len() / 2;
        let mut a = HourlyVolume::new();
        a.add_all(&records[..mid]);
        let mut b = HourlyVolume::new();
        b.add_all(&records[mid..]);
        a.merge(&b);
        let total_weekly: u64 = forward.weekly_totals().values().sum();
        let merged_weekly: u64 = a.weekly_totals().values().sum();
        prop_assert_eq!(total_weekly, merged_weekly);
    }

    /// ECDF is a valid CDF: monotone, 0 below min, 1 at max; quantile and
    /// fraction_le are mutually consistent.
    #[test]
    #[test]
    fn ecdf_is_a_cdf(mut sample in prop::collection::vec(0.0f64..1e9, 1..200)) {
        let e = Ecdf::new(sample.clone());
        sample.sort_by(f64::total_cmp);
        prop_assert_eq!(e.fraction_le(sample[0] - 1.0), 0.0);
        prop_assert_eq!(e.fraction_le(*sample.last().expect("non-empty")), 1.0);
        let mut prev = 0.0;
        for &x in &sample {
            let f = e.fraction_le(x);
            prop_assert!(f >= prev);
            prev = f;
        }
        // quantile(f(x)) <= x for all sample points.
        for &x in &sample {
            prop_assert!(e.quantile(e.fraction_le(x)) <= x + 1e-9);
        }
    }

    /// normalize_by_min yields min 1.0 over positive entries and preserves
    /// ratios.
    #[test]
    #[test]
    fn normalize_by_min_properties(values in prop::collection::vec(0u64..1_000_000, 1..60)) {
        match normalize_by_min(&values) {
            None => prop_assert!(values.iter().all(|&v| v == 0)),
            Some(norm) => {
                let min_pos = norm
                    .iter()
                    .copied()
                    .filter(|&v| v > 0.0)
                    .fold(f64::MAX, f64::min);
                prop_assert!((min_pos - 1.0).abs() < 1e-12);
                // Ratio preservation against the raw values.
                let raw_min = values.iter().copied().filter(|&v| v > 0).min().expect("positive") as f64;
                for (&raw, &n) in values.iter().zip(&norm) {
                    prop_assert!((n - raw as f64 / raw_min).abs() < 1e-9);
                }
            }
        }
    }

    /// median is within [min, max] and permutation-invariant.
    #[test]
    #[test]
    fn median_properties(mut values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let m = median(&values);
        let lo = values.iter().copied().fold(f64::MAX, f64::min);
        let hi = values.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(m >= lo && m <= hi);
        values.reverse();
        prop_assert_eq!(median(&values), m);
    }

    /// The Table 1 classifier is total (never panics) and deterministic.
    #[test]
    #[test]
    fn classifier_total_and_deterministic(r in arb_record()) {
        let c = Classifier::from_registry(registry());
        let a = c.classify(&r);
        let b = c.classify(&r);
        prop_assert_eq!(a, b);
    }

    /// Service attribution never assigns an ephemeral-only flow a port key.
    #[test]
    #[test]
    fn service_key_respects_ephemeral_rule(r in arb_record()) {
        if let Some(ServiceKey::Port(_, port)) = ServiceKey::of(&r) {
            prop_assert!(port < 32_768);
            prop_assert!(port == r.key.src_port.min(r.key.dst_port));
        }
    }

    /// VPN port classification matches the §6 port list exactly.
    #[test]
    #[test]
    fn vpn_port_rule(r in arb_record()) {
        let expected = match r.key.protocol {
            IpProtocol::Esp | IpProtocol::Gre => true,
            IpProtocol::Tcp | IpProtocol::Udp => [500u16, 4_500, 1_194, 1_701, 1_723]
                .iter()
                .any(|&p| p == r.key.src_port || p == r.key.dst_port),
            _ => false,
        };
        prop_assert_eq!(is_port_vpn(&r), expected);
    }

    /// EDU classification and orientation are total and deterministic.
    #[test]
    #[test]
    fn edu_classification_total(r in arb_record()) {
        let c1 = EduTrafficClass::of(&r);
        let c2 = EduTrafficClass::of(&r);
        prop_assert_eq!(c1, c2);
        let o1 = orientation(&r);
        prop_assert_eq!(o1, orientation(&r));
    }

    /// Timestamp bucketing: a record lands in exactly the hour bin of its
    /// start time.
    #[test]
    #[test]
    fn hour_bucketing(r in arb_record()) {
        let mut v = HourlyVolume::new();
        v.add(&r);
        let t: Timestamp = r.start.floor_hour();
        prop_assert_eq!(v.get(t.date(), t.hour()), r.bytes);
    }
}
