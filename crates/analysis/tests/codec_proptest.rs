//! Property tests for the consumer-state codec (the shard subsystem's
//! serialization layer).
//!
//! Two properties, for every suite consumer in this crate:
//!
//! * **Merge equivalence.** Observing a flow batch split across two
//!   consumers and merging the second into the first *through the codec*
//!   (serialize → decode → merge) must produce exactly the state direct
//!   in-process [`FlowConsumer::merge`] produces. Canonical-encoding byte
//!   equality is the oracle — the codec sorts every map and set, so equal
//!   states encode identically.
//! * **Corruption detection.** Flipping any single byte of a frame must
//!   fail the decode, and the error must name the consumer the decode was
//!   *for* (CRC-32 detects all sub-32-bit burst errors, so a one-byte
//!   flip can never slip through).

use lockdown_analysis::appclass::{Classifier, PaperClass};
use lockdown_analysis::codec::{encode_frame, merge_frame};
use lockdown_analysis::consumer::{
    AsTotalsConsumer, ClassUsageConsumer, FlowConsumer, HeatmapConsumer, HypergiantConsumer,
    PortConsumer,
};
use lockdown_analysis::edu::EduAnalysis;
use lockdown_analysis::linkutil::AsHourly;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_flow::protocol::{IpProtocol, TcpFlags};
use lockdown_flow::record::{Direction, FlowKey, FlowRecord};
use lockdown_flow::time::Date;
use lockdown_topology::asn::{Asn, Region};
use lockdown_topology::registry::{Registry, EDU_ASN, SPOTIFY_ASN};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::{Arc, OnceLock};

/// Monday of the analysis week every generated flow lands in (heatmap and
/// per-day consumers are anchored here).
const BASE: Date = Date {
    year: 2020,
    month: 3,
    day: 23,
};

fn classifier() -> Arc<Classifier> {
    static C: OnceLock<Arc<Classifier>> = OnceLock::new();
    Arc::clone(C.get_or_init(|| {
        let registry = Registry::synthesize();
        Arc::new(Classifier::from_registry(&registry))
    }))
}

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    let ports = vec![22u16, 80, 443, 993, 1_194, 3_389, 40_000, 50_000];
    let asns = vec![0u32, 1, 2, 15_169, 64_496, EDU_ASN.0, SPOTIFY_ASN.0];
    (
        (0u64..7 * 86_400, 1u64..600, 1u64..1_000_000),
        (
            prop::sample::select(vec![
                IpProtocol::Tcp,
                IpProtocol::Udp,
                IpProtocol::Esp,
                IpProtocol::Gre,
            ]),
            prop::sample::select(ports.clone()),
            prop::sample::select(ports),
        ),
        (
            prop::sample::select(asns.clone()),
            prop::sample::select(asns),
            any::<u32>(),
            any::<u32>(),
        ),
        prop::sample::select(vec![
            Direction::Ingress,
            Direction::Egress,
            Direction::Unknown,
        ]),
    )
        .prop_map(
            |(
                (secs, duration, bytes),
                (proto, sport, dport),
                (src_as, dst_as, src_ip, dst_ip),
                direction,
            )| {
                let start = BASE.at_hour(0).add_secs(secs);
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(src_ip),
                        dst_addr: Ipv4Addr::from(dst_ip),
                        src_port: sport,
                        dst_port: dport,
                        protocol: proto,
                    },
                    start,
                )
                .end(start.add_secs(duration))
                .bytes(bytes)
                .packets(1 + bytes / 1_400)
                .tcp_flags(TcpFlags::complete_connection())
                .asns(src_as, dst_as)
                .direction(direction)
                .build()
            },
        )
}

/// Codec-mediated merge must equal direct in-process merge.
fn check_merge_equivalence<C>(make: impl Fn() -> C, flows: &[FlowRecord], split: usize)
where
    C: FlowConsumer + Clone,
{
    let split = split.min(flows.len());
    let mut a = make();
    a.observe_all(&flows[..split]);
    let mut b = make();
    b.observe_all(&flows[split..]);

    let mut direct = a.clone();
    FlowConsumer::merge(&mut direct, b.clone());

    let frame = encode_frame(&b);
    let mut via_codec = a;
    merge_frame(&mut via_codec, &frame).expect("clean frame must decode");

    assert_eq!(
        encode_frame(&direct),
        encode_frame(&via_codec),
        "codec merge diverged from direct merge for {}",
        direct.state_tag().name
    );
}

/// A one-byte flip anywhere in the frame must fail, naming the consumer.
fn check_corruption_detected<C>(make: impl Fn() -> C, flows: &[FlowRecord], at: usize, mask: u8)
where
    C: FlowConsumer,
{
    let mut c = make();
    c.observe_all(flows);
    let mut frame = encode_frame(&c);
    let at = at % frame.len();
    frame[at] ^= mask;
    let mut sink = make();
    let err = merge_frame(&mut sink, &frame).expect_err("a flipped byte must fail the decode");
    assert_eq!(
        err.consumer,
        sink.state_tag().name,
        "error must name the expected consumer (flip at byte {at}): {err}"
    );
}

proptest! {
    #[test]
    fn codec_merge_equals_direct_merge(
        flows in prop::collection::vec(arb_flow(), 1..40),
        split in 0usize..40,
    ) {
        let region = Region::CentralEurope;
        check_merge_equivalence(HourlyVolume::new, &flows, split);
        check_merge_equivalence(EduAnalysis::new, &flows, split);
        check_merge_equivalence(|| PortConsumer::new(region), &flows, split);
        check_merge_equivalence(
            || HypergiantConsumer::new(region, Asn(64_496)),
            &flows,
            split,
        );
        check_merge_equivalence(|| AsTotalsConsumer::all(region), &flows, split);
        check_merge_equivalence(
            || AsTotalsConsumer::touching(region, Asn(64_496)),
            &flows,
            split,
        );
        check_merge_equivalence(|| HeatmapConsumer::new(classifier(), BASE), &flows, split);
        check_merge_equivalence(
            || ClassUsageConsumer::new(classifier(), PaperClass::Email),
            &flows,
            split,
        );
        check_merge_equivalence(|| AsHourly::new(BASE), &flows, split);
    }

    #[test]
    fn one_flipped_byte_fails_with_consumer_named(
        flows in prop::collection::vec(arb_flow(), 1..20),
        at in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let region = Region::CentralEurope;
        check_corruption_detected(HourlyVolume::new, &flows, at, mask);
        check_corruption_detected(EduAnalysis::new, &flows, at, mask);
        check_corruption_detected(|| PortConsumer::new(region), &flows, at, mask);
        check_corruption_detected(
            || HypergiantConsumer::new(region, Asn(64_496)),
            &flows,
            at,
            mask,
        );
        check_corruption_detected(|| AsTotalsConsumer::all(region), &flows, at, mask);
        check_corruption_detected(|| HeatmapConsumer::new(classifier(), BASE), &flows, at, mask);
        check_corruption_detected(
            || ClassUsageConsumer::new(classifier(), PaperClass::Email),
            &flows,
            at,
            mask,
        );
        check_corruption_detected(|| AsHourly::new(BASE), &flows, at, mask);
    }

    /// A frame for one consumer must be rejected by every *other*
    /// consumer, with the receiving (expected) consumer named.
    #[test]
    fn misrouted_frames_are_rejected(flows in prop::collection::vec(arb_flow(), 1..10)) {
        let mut volume = HourlyVolume::new();
        volume.observe_all(&flows);
        let frame = encode_frame(&volume);
        let mut edu = EduAnalysis::new();
        let err = merge_frame(&mut edu, &frame).expect_err("wrong tag must be rejected");
        prop_assert_eq!(err.consumer, "EduAnalysis");
        prop_assert!(err.to_string().contains("HourlyVolume"), "{}", err);
    }
}
