//! Streaming time-series aggregation and normalization.
//!
//! Every figure in the paper starts from the same primitive: bin flow bytes
//! by hour, roll up to days or ISO weeks, and normalize by a baseline (the
//! third January week for Fig. 1, the minimum for Fig. 3, a February week
//! for the §5 heatmaps). This module provides that primitive as a streaming
//! accumulator so experiments never hold a full trace in memory.

use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::{Date, Timestamp, SECS_PER_HOUR};
use std::collections::BTreeMap;

/// Hour-binned byte volume accumulator.
#[derive(Debug, Clone, Default)]
pub struct HourlyVolume {
    bins: BTreeMap<Timestamp, u64>,
}

impl HourlyVolume {
    /// An empty accumulator.
    pub fn new() -> HourlyVolume {
        HourlyVolume::default()
    }

    /// Add one flow (binned by its start hour, the convention flow
    /// pipelines use for hourly accounting).
    pub fn add(&mut self, record: &FlowRecord) {
        self.add_bytes(record.start, record.bytes);
    }

    /// Add raw bytes at a time.
    pub fn add_bytes(&mut self, at: Timestamp, bytes: u64) {
        *self.bins.entry(at.floor_hour()).or_insert(0) += bytes;
    }

    /// Add many flows.
    pub fn add_all<'a>(&mut self, records: impl IntoIterator<Item = &'a FlowRecord>) {
        for r in records {
            self.add(r);
        }
    }

    /// Bytes in one hour bin.
    pub fn get(&self, date: Date, hour: u8) -> u64 {
        self.bins.get(&date.at_hour(hour)).copied().unwrap_or(0)
    }

    /// Total bytes on a date.
    pub fn daily_total(&self, date: Date) -> u64 {
        (0..24).map(|h| self.get(date, h)).sum()
    }

    /// Mean daily volume over an inclusive date range.
    pub fn mean_daily(&self, start: Date, end: Date) -> f64 {
        let days: Vec<u64> = start
            .range_inclusive(end)
            .map(|d| self.daily_total(d))
            .collect();
        if days.is_empty() {
            0.0
        } else {
            days.iter().sum::<u64>() as f64 / days.len() as f64
        }
    }

    /// The 24 hourly values of a date.
    pub fn day_profile(&self, date: Date) -> [u64; 24] {
        let mut out = [0u64; 24];
        for (h, slot) in out.iter_mut().enumerate() {
            *slot = self.get(date, h as u8);
        }
        out
    }

    /// Hourly series over an inclusive date range, one entry per hour,
    /// including empty bins (value 0).
    pub fn hourly_series(&self, start: Date, end: Date) -> Vec<(Timestamp, u64)> {
        let mut out = Vec::new();
        for date in start.range_inclusive(end) {
            for hour in 0..24 {
                let t = date.at_hour(hour);
                out.push((t, self.bins.get(&t).copied().unwrap_or(0)));
            }
        }
        out
    }

    /// Weekly totals keyed by ISO `(year, week)`.
    pub fn weekly_totals(&self) -> BTreeMap<(i32, u8), u64> {
        let mut out: BTreeMap<(i32, u8), u64> = BTreeMap::new();
        for (t, bytes) in &self.bins {
            let key = t.date().iso_week();
            *out.entry(key).or_insert(0) += bytes;
        }
        out
    }

    /// Number of non-empty hour bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &HourlyVolume) {
        for (t, b) in &other.bins {
            *self.bins.entry(*t).or_insert(0) += b;
        }
    }

    /// Shard-codec payload: bin count, then `(timestamp, bytes)` pairs in
    /// key order (`BTreeMap` iteration is already sorted).
    pub(crate) fn encode_bins(&self, out: &mut Vec<u8>) {
        crate::codec::put_u64(out, self.bins.len() as u64);
        for (t, b) in &self.bins {
            crate::codec::put_u64(out, t.0);
            crate::codec::put_u64(out, *b);
        }
    }

    /// Decode a shard-codec payload and merge it additively.
    pub(crate) fn merge_bins(
        &mut self,
        r: &mut crate::codec::StateReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        let n = r.len("hour bins", 16)?;
        for _ in 0..n {
            let t = Timestamp(r.u64("bin timestamp")?);
            let b = r.u64("bin bytes")?;
            *self.bins.entry(t).or_insert(0) += b;
        }
        Ok(())
    }
}

/// Normalize a series by a positive base value.
pub fn normalize(values: &[u64], base: f64) -> Vec<f64> {
    assert!(base > 0.0, "normalization base must be positive");
    values.iter().map(|&v| v as f64 / base).collect()
}

/// Normalize by the series' minimum *positive* value (Fig. 3: "normalized
/// by the respective minimum traffic volume"). Returns `None` for an empty
/// or all-zero series.
pub fn normalize_by_min(values: &[u64]) -> Option<Vec<f64>> {
    let min = values.iter().copied().filter(|&v| v > 0).min()? as f64;
    Some(values.iter().map(|&v| v as f64 / min).collect())
}

/// Mean of a float slice (0 for empty — callers treat empty as "no data").
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Median of a float slice (0 for empty).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in medians"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Seconds covered by one hour bin (re-exported for rate conversions).
pub const BIN_SECS: u64 = SECS_PER_HOUR;

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use lockdown_flow::record::FlowKey;
    use std::net::Ipv4Addr;

    fn flow(at: Timestamp, bytes: u64) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(192, 0, 2, 1),
                dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                src_port: 443,
                dst_port: 50_000,
                protocol: IpProtocol::Tcp,
            },
            at,
        )
        .end(at.add_secs(10))
        .bytes(bytes)
        .packets(1)
        .build()
    }

    #[test]
    fn bins_by_start_hour() {
        let mut v = HourlyVolume::new();
        let d = Date::new(2020, 3, 25);
        v.add(&flow(d.at_hour(9).add_secs(120), 100));
        v.add(&flow(d.at_hour(9).add_secs(3_599), 50));
        v.add(&flow(d.at_hour(10), 7));
        assert_eq!(v.get(d, 9), 150);
        assert_eq!(v.get(d, 10), 7);
        assert_eq!(v.get(d, 11), 0);
        assert_eq!(v.daily_total(d), 157);
    }

    #[test]
    fn weekly_rollup() {
        let mut v = HourlyVolume::new();
        // Week 12 of 2020 starts Mon Mar 16.
        v.add_bytes(Date::new(2020, 3, 16).at_hour(0), 10);
        v.add_bytes(Date::new(2020, 3, 22).at_hour(23), 20);
        v.add_bytes(Date::new(2020, 3, 23).at_hour(0), 40); // week 13
        let weekly = v.weekly_totals();
        assert_eq!(weekly[&(2020, 12)], 30);
        assert_eq!(weekly[&(2020, 13)], 40);
    }

    #[test]
    fn series_includes_empty_bins() {
        let mut v = HourlyVolume::new();
        let d = Date::new(2020, 2, 1);
        v.add_bytes(d.at_hour(5), 1);
        let series = v.hourly_series(d, d);
        assert_eq!(series.len(), 24);
        assert_eq!(series[5].1, 1);
        assert_eq!(series[6].1, 0);
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize(&[10, 20], 10.0), vec![1.0, 2.0]);
        assert_eq!(
            normalize_by_min(&[0, 4, 2, 8]).unwrap(),
            vec![0.0, 2.0, 1.0, 4.0]
        );
        assert!(normalize_by_min(&[0, 0]).is_none());
        assert!(normalize_by_min(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn normalize_zero_base_panics() {
        normalize(&[1], 0.0);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn merge_accumulators() {
        let d = Date::new(2020, 2, 1);
        let mut a = HourlyVolume::new();
        a.add_bytes(d.at_hour(1), 5);
        let mut b = HourlyVolume::new();
        b.add_bytes(d.at_hour(1), 3);
        b.add_bytes(d.at_hour(2), 9);
        a.merge(&b);
        assert_eq!(a.get(d, 1), 8);
        assert_eq!(a.get(d, 2), 9);
    }

    #[test]
    fn mean_daily_range() {
        let mut v = HourlyVolume::new();
        v.add_bytes(Date::new(2020, 2, 1).at_hour(0), 10);
        v.add_bytes(Date::new(2020, 2, 2).at_hour(0), 30);
        assert_eq!(
            v.mean_daily(Date::new(2020, 2, 1), Date::new(2020, 2, 2)),
            20.0
        );
    }
}
