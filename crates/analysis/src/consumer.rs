//! The multi-consumer aggregation contract used by the single-pass trace
//! engine (`lockdown-core::engine`).
//!
//! Every figure's accumulator observes flow records one at a time and can
//! merge a same-typed partial produced by another worker. All implementors
//! bin into integer counters (or sets) whose merges are commutative and
//! associative, so results are independent of both flow fan-out order and
//! worker count — the property the engine's determinism tests assert.

use crate::appclass::{Classifier, HourUsage, PaperClass, WeekHeatmap};
use crate::asgroup::{AsDayTotals, HypergiantSplit};
use crate::codec::{self, CodecError, ConsumerTag, StateReader};
use crate::edu::EduAnalysis;
use crate::linkutil::AsHourly;
use crate::ports::{PortProfile, EPHEMERAL_START};
use crate::timeseries::HourlyVolume;
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_topology::asn::{Asn, Region};
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A streaming flow aggregator that can absorb a same-typed partial.
///
/// `merge` must be commutative and associative so that sharding flows
/// across workers and merging the partials yields the same state as a
/// single sequential pass.
pub trait FlowConsumer {
    /// Observe one flow record.
    fn observe(&mut self, record: &FlowRecord);

    /// Observe a batch of records (hot path for the engine's per-cell
    /// fan-out; the default just loops).
    fn observe_all(&mut self, records: &[FlowRecord]) {
        for r in records {
            self.observe(r);
        }
    }

    /// Absorb another worker's partial state.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Stable identity of this consumer's serialized state (the shard
    /// codec's tag byte + the name decode errors carry). Consumers that
    /// never cross a process boundary keep the default.
    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_UNSUPPORTED
    }

    /// Append this consumer's mergeable state to `out` in the
    /// deterministic payload encoding ([`codec::encode_frame`] adds the
    /// version/tag/CRC framing). Constructor parameters are not encoded:
    /// the receiving side factory-builds the consumer and merges.
    fn encode_state(&self, _out: &mut Vec<u8>) {
        unimplemented!("consumer does not implement the shard state codec")
    }

    /// Decode a peer's payload from `r` and merge it into `self` — the
    /// cross-process analogue of [`FlowConsumer::merge`].
    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        Err(r.error("consumer does not implement the shard state codec"))
    }
}

impl FlowConsumer for HourlyVolume {
    fn observe(&mut self, record: &FlowRecord) {
        self.add(record);
    }

    fn merge(&mut self, other: Self) {
        HourlyVolume::merge(self, &other);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_HOURLY_VOLUME
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        self.encode_bins(out);
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.merge_bins(r)
    }
}

impl FlowConsumer for EduAnalysis {
    fn observe(&mut self, record: &FlowRecord) {
        self.add(record);
    }

    fn merge(&mut self, other: Self) {
        EduAnalysis::merge(self, &other);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_EDU_ANALYSIS
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        self.encode_payload(out);
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.merge_payload(r)
    }
}

/// [`PortProfile`] bound to the vantage region its calendar needs.
#[derive(Debug, Clone)]
pub struct PortConsumer {
    /// The accumulated profile.
    pub profile: PortProfile,
    region: Region,
}

impl PortConsumer {
    /// An empty profile for a region's calendar.
    pub fn new(region: Region) -> PortConsumer {
        PortConsumer {
            profile: PortProfile::new(),
            region,
        }
    }
}

impl FlowConsumer for PortConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        self.profile.add(record, self.region);
    }

    fn merge(&mut self, other: Self) {
        self.profile.merge(&other.profile);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_PORT_CONSUMER
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        self.profile.encode_profile(out);
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.profile.merge_profile(r)
    }
}

/// [`HypergiantSplit`] bound to its region and local eyeball ASN (Fig. 4).
#[derive(Debug, Clone)]
pub struct HypergiantConsumer {
    /// The accumulated split.
    pub split: HypergiantSplit,
    region: Region,
    eyeball: Asn,
}

impl HypergiantConsumer {
    /// An empty split for a vantage in `region` with the given eyeball.
    pub fn new(region: Region, eyeball: Asn) -> HypergiantConsumer {
        HypergiantConsumer {
            split: HypergiantSplit::new(),
            region,
            eyeball,
        }
    }
}

impl FlowConsumer for HypergiantConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        self.split.add(record, self.region, self.eyeball);
    }

    fn merge(&mut self, other: Self) {
        self.split.merge(&other.split);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_HYPERGIANT_CONSUMER
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        self.split.encode_split(out);
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.split.merge_split(r)
    }
}

/// [`AsDayTotals`] with an optional endpoint-AS gate — `Some(asn)` keeps
/// only flows touching that AS (the "residential" half of Fig. 6/§3.4).
#[derive(Debug, Clone)]
pub struct AsTotalsConsumer {
    /// The accumulated totals.
    pub totals: AsDayTotals,
    require_asn: Option<u32>,
}

impl AsTotalsConsumer {
    /// Accumulate every flow.
    pub fn all(region: Region) -> AsTotalsConsumer {
        AsTotalsConsumer {
            totals: AsDayTotals::new(region),
            require_asn: None,
        }
    }

    /// Accumulate only flows with `asn` as an endpoint.
    pub fn touching(region: Region, asn: Asn) -> AsTotalsConsumer {
        AsTotalsConsumer {
            totals: AsDayTotals::new(region),
            require_asn: Some(asn.0),
        }
    }
}

impl FlowConsumer for AsTotalsConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        if let Some(a) = self.require_asn {
            if record.src_as != a && record.dst_as != a {
                return;
            }
        }
        self.totals.add(record);
    }

    fn merge(&mut self, other: Self) {
        self.totals.merge(&other.totals);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_AS_TOTALS_CONSUMER
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        self.totals.encode_totals(out);
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.totals.merge_totals(r)
    }
}

/// One Fig. 9 [`WeekHeatmap`] fed flow-by-flow through a shared classifier.
#[derive(Debug, Clone)]
pub struct HeatmapConsumer {
    classifier: Arc<Classifier>,
    /// The accumulated heatmap.
    pub heatmap: WeekHeatmap,
}

impl HeatmapConsumer {
    /// An empty heatmap for the week starting at `start`.
    pub fn new(classifier: Arc<Classifier>, start: Date) -> HeatmapConsumer {
        HeatmapConsumer {
            classifier,
            heatmap: WeekHeatmap::new(start),
        }
    }
}

impl FlowConsumer for HeatmapConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        self.heatmap.add(&self.classifier, record);
    }

    fn merge(&mut self, other: Self) {
        self.heatmap.merge(&other.heatmap);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_HEATMAP_CONSUMER
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        codec::put_i64(out, self.heatmap.start.day_number());
        codec::put_u64(out, self.heatmap.grid.len() as u64);
        for class_grid in &self.heatmap.grid {
            for day in class_grid {
                for v in day {
                    codec::put_u64(out, *v);
                }
            }
        }
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let day = r.i64("week start")?;
        if day != self.heatmap.start.day_number() {
            return Err(r.error(format!(
                "week start {day} does not match this heatmap's start {}",
                self.heatmap.start.day_number()
            )));
        }
        let classes = r.u64("class count")?;
        if classes as usize != self.heatmap.grid.len() {
            return Err(r.error(format!(
                "{classes} classes do not match this heatmap's {}",
                self.heatmap.grid.len()
            )));
        }
        for class_grid in &mut self.heatmap.grid {
            for day in class_grid.iter_mut() {
                for v in day.iter_mut() {
                    *v += r.u64("cell bytes")?;
                }
            }
        }
        Ok(())
    }
}

/// Fig. 8's per-hour usage of one application class: bytes plus distinct
/// client addresses per `(day, hour)` bin. Equivalent to calling
/// [`crate::appclass::class_hour_usage`] on each hour batch separately
/// (flows land in the bin of their start hour).
#[derive(Debug, Clone)]
pub struct ClassUsageConsumer {
    classifier: Arc<Classifier>,
    class: PaperClass,
    bins: BTreeMap<(i64, u8), (u64, HashSet<Ipv4Addr>)>,
}

impl ClassUsageConsumer {
    /// An empty accumulator for one class.
    pub fn new(classifier: Arc<Classifier>, class: PaperClass) -> ClassUsageConsumer {
        ClassUsageConsumer {
            classifier,
            class,
            bins: BTreeMap::new(),
        }
    }

    /// Usage in one hour bin (zeroes when the bin is empty).
    pub fn hour_usage(&self, date: Date, hour: u8) -> HourUsage {
        match self.bins.get(&(date.day_number(), hour)) {
            Some((bytes, ips)) => HourUsage {
                bytes: *bytes,
                unique_ips: ips.len(),
            },
            None => HourUsage::default(),
        }
    }
}

impl FlowConsumer for ClassUsageConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        if self.classifier.classify(record) != Some(self.class) {
            return;
        }
        // The client is the ephemeral-port side; fall back to source —
        // the same rule `class_hour_usage` applies.
        let client = if record.key.src_port >= EPHEMERAL_START || record.key.src_port == 0 {
            record.key.src_addr
        } else {
            record.key.dst_addr
        };
        let bin = self
            .bins
            .entry((record.start.date().day_number(), record.start.hour()))
            .or_insert_with(|| (0, HashSet::new()));
        bin.0 += record.bytes;
        bin.1.insert(client);
    }

    fn merge(&mut self, other: Self) {
        for (k, (bytes, ips)) in other.bins {
            let bin = self.bins.entry(k).or_insert_with(|| (0, HashSet::new()));
            bin.0 += bytes;
            bin.1.extend(ips);
        }
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_CLASS_USAGE_CONSUMER
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.bins.len() as u64);
        for ((day, hour), (bytes, ips)) in &self.bins {
            codec::put_i64(out, *day);
            out.push(*hour);
            codec::put_u64(out, *bytes);
            let mut sorted: Vec<u32> = ips.iter().map(|&ip| u32::from(ip)).collect();
            sorted.sort_unstable();
            codec::put_u64(out, sorted.len() as u64);
            for ip in sorted {
                codec::put_u32(out, ip);
            }
        }
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let n = r.len("usage bins", 25)?;
        for _ in 0..n {
            let day = r.i64("day number")?;
            let hour = r.u8("hour")?;
            if hour >= 24 {
                return Err(r.error(format!("hour {hour} out of range")));
            }
            let bytes = r.u64("bin bytes")?;
            let bin = self
                .bins
                .entry((day, hour))
                .or_insert_with(|| (0, HashSet::new()));
            bin.0 += bytes;
            let ips = r.len("client set", 4)?;
            for _ in 0..ips {
                bin.1.insert(Ipv4Addr::from(r.u32("client address")?));
            }
        }
        Ok(())
    }
}

impl FlowConsumer for AsHourly {
    fn observe(&mut self, record: &FlowRecord) {
        self.add(record);
    }

    fn merge(&mut self, other: Self) {
        AsHourly::merge(self, &other);
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_AS_HOURLY
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        self.encode_hourly(out);
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.merge_hourly(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use lockdown_flow::record::FlowKey;
    use lockdown_flow::time::Timestamp;
    use lockdown_topology::registry::Registry;

    fn flow(at: Timestamp, sport: u16, dport: u16, src_as: u32, dst_as: u32) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(203, 0, 113, 9),
                dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                src_port: sport,
                dst_port: dport,
                protocol: IpProtocol::Tcp,
            },
            at,
        )
        .end(at.add_secs(1))
        .bytes(100)
        .packets(1)
        .asns(src_as, dst_as)
        .build()
    }

    /// Observing a batch split across two consumers then merging equals
    /// one sequential pass — the engine's core invariant, checked here on
    /// a representative consumer of each binning shape.
    #[test]
    fn split_merge_equals_sequential() {
        let d = Date::new(2020, 3, 25);
        let flows: Vec<FlowRecord> = (0..40u16)
            .map(|i| {
                flow(
                    d.at_hour((i % 24) as u8),
                    443,
                    50_000 + i,
                    64_496,
                    65_000 + i as u32 % 3,
                )
            })
            .collect();

        let mut seq = HourlyVolume::new();
        seq.observe_all(&flows);
        let mut a = HourlyVolume::new();
        let mut b = HourlyVolume::new();
        a.observe_all(&flows[..17]);
        b.observe_all(&flows[17..]);
        FlowConsumer::merge(&mut a, b);
        assert_eq!(seq.hourly_series(d, d), a.hourly_series(d, d));

        let mut seq = AsTotalsConsumer::all(Region::CentralEurope);
        seq.observe_all(&flows);
        let mut a = AsTotalsConsumer::all(Region::CentralEurope);
        let mut b = AsTotalsConsumer::all(Region::CentralEurope);
        a.observe_all(&flows[..9]);
        b.observe_all(&flows[9..]);
        FlowConsumer::merge(&mut a, b);
        for asn in [65_000, 65_001, 65_002, 64_496] {
            assert_eq!(
                seq.totals.mean_daily_bytes(Asn(asn)),
                a.totals.mean_daily_bytes(Asn(asn))
            );
        }
    }

    #[test]
    fn filtered_totals_gate_on_endpoint() {
        let d = Date::new(2020, 3, 25);
        let mut c = AsTotalsConsumer::touching(Region::CentralEurope, Asn(64_496));
        c.observe(&flow(d.at_hour(9), 443, 50_000, 64_496, 65_000));
        c.observe(&flow(d.at_hour(9), 443, 50_001, 65_001, 65_000));
        assert!(c.totals.mean_daily_bytes(Asn(64_496)) > 0.0);
        assert_eq!(c.totals.mean_daily_bytes(Asn(65_001)), 0.0);
    }

    #[test]
    fn class_usage_matches_per_hour_helper() {
        use crate::appclass::class_hour_usage;
        let registry = Registry::synthesize();
        let classifier = Arc::new(Classifier::from_registry(&registry));
        let d = Date::new(2020, 3, 25);
        // Email flows (TCP/993) across two hours plus unclassified noise.
        let flows = vec![
            flow(d.at_hour(9), 993, 50_000, 1, 2),
            flow(d.at_hour(9), 993, 50_001, 1, 2),
            flow(d.at_hour(10), 993, 50_002, 1, 2),
            flow(d.at_hour(9), 40_000, 50_003, 1, 2),
        ];
        let mut c = ClassUsageConsumer::new(classifier.clone(), PaperClass::Email);
        c.observe_all(&flows);
        let h9: Vec<FlowRecord> = flows
            .iter()
            .filter(|f| f.start.hour() == 9)
            .cloned()
            .collect();
        assert_eq!(
            c.hour_usage(d, 9),
            class_hour_usage(&classifier, PaperClass::Email, &h9)
        );
        assert_eq!(c.hour_usage(d, 11), HourUsage::default());
    }
}
