//! AS-level traffic splits: hypergiants vs. the rest (Fig. 4), remote-work
//! AS grouping (§3.4), and the per-AS residential-shift scatter (Fig. 6).

use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_scenario::calendar::day_type;
use lockdown_topology::asn::{Asn, Region};
use lockdown_topology::hypergiants::is_hypergiant;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Fig. 4's four time buckets: workday/weekend × working hours
/// (09:00–16:59) / evening (17:00–24:00).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DayPart {
    /// Workday 09:00–16:59.
    WorkdayWork,
    /// Workday 17:00–24:00.
    WorkdayEvening,
    /// Weekend 09:00–16:59.
    WeekendWork,
    /// Weekend 17:00–24:00.
    WeekendEvening,
}

impl DayPart {
    /// All four buckets.
    pub const ALL: [DayPart; 4] = [
        DayPart::WorkdayWork,
        DayPart::WorkdayEvening,
        DayPart::WeekendWork,
        DayPart::WeekendEvening,
    ];

    /// Classify a (date, hour); `None` outside the two windows.
    pub fn of(date: Date, hour: u8, region: Region) -> Option<DayPart> {
        let weekendish = day_type(date, region).is_weekend_like();
        let work = (9..17).contains(&hour);
        let evening = (17..24).contains(&hour);
        match (weekendish, work, evening) {
            (false, true, _) => Some(DayPart::WorkdayWork),
            (false, _, true) => Some(DayPart::WorkdayEvening),
            (true, true, _) => Some(DayPart::WeekendWork),
            (true, _, true) => Some(DayPart::WeekendEvening),
            _ => None,
        }
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            DayPart::WorkdayWork => "Workday: 09:00-16:59",
            DayPart::WorkdayEvening => "Workday: 17:00-24:00",
            DayPart::WeekendWork => "Weekend: 09:00-16:59",
            DayPart::WeekendEvening => "Weekend: 17:00-24:00",
        }
    }

    /// Shard-codec wire byte: index into [`DayPart::ALL`].
    pub(crate) fn index(self) -> u8 {
        DayPart::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every variant is in ALL") as u8
    }

    /// Inverse of [`DayPart::index`].
    pub(crate) fn from_index(i: u8) -> Option<DayPart> {
        DayPart::ALL.get(i as usize).copied()
    }
}

/// Streaming accumulator for the Fig. 4 hypergiant/other split:
/// bytes per (ISO week, day part, hypergiant?), normalized per
/// contributing day — Fig. 4 plots *daily* traffic growth, and weeks with
/// holidays contribute extra weekend-like days that would otherwise skew
/// weekly sums.
#[derive(Debug, Clone, Default)]
pub struct HypergiantSplit {
    bins: BTreeMap<(u8, DayPart, bool), u64>,
    days: BTreeMap<(u8, DayPart), HashSet<i64>>,
}

impl HypergiantSplit {
    /// An empty accumulator.
    pub fn new() -> HypergiantSplit {
        HypergiantSplit::default()
    }

    /// Add one flow observed at a vantage point in `region`. The flow's
    /// content side is whichever endpoint is not the local eyeball; the
    /// caller passes the eyeball ASN to exclude.
    pub fn add(&mut self, record: &FlowRecord, region: Region, eyeball_asn: Asn) {
        let date = record.start.date();
        let hour = record.start.hour();
        let Some(part) = DayPart::of(date, hour, region) else {
            return;
        };
        let (_, week) = date.iso_week();
        let content_asn = if record.src_as == eyeball_asn.0 {
            Asn(record.dst_as)
        } else {
            Asn(record.src_as)
        };
        let hg = is_hypergiant(content_asn);
        *self.bins.entry((week, part, hg)).or_insert(0) += record.bytes;
        self.days
            .entry((week, part))
            .or_default()
            .insert(date.day_number());
    }

    /// Merge another split into this one (byte bins are additive; day
    /// sets union, so double-counting a day is impossible).
    pub fn merge(&mut self, other: &HypergiantSplit) {
        for (k, v) in &other.bins {
            *self.bins.entry(*k).or_insert(0) += v;
        }
        for (k, days) in &other.days {
            self.days.entry(*k).or_default().extend(days);
        }
    }

    /// Total bytes for (week, part, hypergiant?).
    pub fn get(&self, week: u8, part: DayPart, hypergiant: bool) -> u64 {
        self.bins
            .get(&(week, part, hypergiant))
            .copied()
            .unwrap_or(0)
    }

    /// Mean *daily* bytes for (week, part, hypergiant?) — the unit Fig. 4
    /// plots.
    pub fn mean_daily(&self, week: u8, part: DayPart, hypergiant: bool) -> f64 {
        let days = self.days.get(&(week, part)).map(HashSet::len).unwrap_or(0);
        if days == 0 {
            0.0
        } else {
            self.get(week, part, hypergiant) as f64 / days as f64
        }
    }

    /// Shard-codec payload: byte bins, then day sets (each set sorted).
    pub(crate) fn encode_split(&self, out: &mut Vec<u8>) {
        crate::codec::put_u64(out, self.bins.len() as u64);
        for ((week, part, hg), bytes) in &self.bins {
            out.push(*week);
            out.push(part.index());
            crate::codec::put_bool(out, *hg);
            crate::codec::put_u64(out, *bytes);
        }
        crate::codec::put_u64(out, self.days.len() as u64);
        for ((week, part), days) in &self.days {
            out.push(*week);
            out.push(part.index());
            let mut sorted: Vec<i64> = days.iter().copied().collect();
            sorted.sort_unstable();
            crate::codec::put_u64(out, sorted.len() as u64);
            for d in sorted {
                crate::codec::put_i64(out, d);
            }
        }
    }

    /// Decode a shard-codec payload and merge it (bins add, day sets
    /// union).
    pub(crate) fn merge_split(
        &mut self,
        r: &mut crate::codec::StateReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        let read_part = |r: &mut crate::codec::StateReader<'_>| {
            let i = r.u8("day part")?;
            DayPart::from_index(i).ok_or_else(|| r.error(format!("unknown day part {i}")))
        };
        let n = r.len("split bins", 11)?;
        for _ in 0..n {
            let week = r.u8("week")?;
            let part = read_part(r)?;
            let hg = r.bool("hypergiant flag")?;
            let bytes = r.u64("bin bytes")?;
            *self.bins.entry((week, part, hg)).or_insert(0) += bytes;
        }
        let n = r.len("day sets", 10)?;
        for _ in 0..n {
            let week = r.u8("week")?;
            let part = read_part(r)?;
            let days = r.len("day set", 8)?;
            let set = self.days.entry((week, part)).or_default();
            for _ in 0..days {
                set.insert(r.i64("day number")?);
            }
        }
        Ok(())
    }

    /// Growth series over weeks for one group and day part, normalized by
    /// `base_week`'s value. Weeks with no traffic yield `None` entries.
    pub fn growth_series(
        &self,
        part: DayPart,
        hypergiant: bool,
        weeks: impl IntoIterator<Item = u8>,
        base_week: u8,
    ) -> Vec<Option<f64>> {
        let base = self.mean_daily(base_week, part, hypergiant);
        weeks
            .into_iter()
            .map(|w| {
                let v = self.mean_daily(w, part, hypergiant);
                if base == 0.0 || v == 0.0 {
                    None
                } else {
                    Some(v / base)
                }
            })
            .collect()
    }
}

/// §3.4's workday/weekend-ratio grouping of ASes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RatioGroup {
    /// Traffic dominated by workdays (candidate remote-work AS).
    WorkdayDominated,
    /// Roughly balanced.
    Balanced,
    /// Weekend-dominated (entertainment-leaning).
    WeekendDominated,
}

/// Per-AS byte totals split by workday/weekend.
#[derive(Debug, Clone, Default)]
pub struct AsDayTotals {
    totals: HashMap<u32, (u64, u64)>, // (workday, weekend)
    days_seen: (HashSet<i64>, HashSet<i64>),
    region: Option<Region>,
}

impl AsDayTotals {
    /// An empty accumulator for a region's calendar.
    pub fn new(region: Region) -> AsDayTotals {
        AsDayTotals {
            region: Some(region),
            ..AsDayTotals::default()
        }
    }

    /// Add one flow, attributing bytes to both endpoint ASes (an AS's
    /// traffic is what it sends plus what it receives).
    pub fn add(&mut self, record: &FlowRecord) {
        let region = self.region.expect("constructed via new()");
        let date = record.start.date();
        let weekend = day_type(date, region).is_weekend_like();
        for asn in [record.src_as, record.dst_as] {
            if asn == 0 {
                continue;
            }
            let entry = self.totals.entry(asn).or_insert((0, 0));
            if weekend {
                entry.1 += record.bytes;
            } else {
                entry.0 += record.bytes;
            }
        }
        if weekend {
            self.days_seen.1.insert(date.day_number());
        } else {
            self.days_seen.0.insert(date.day_number());
        }
    }

    /// Merge another accumulator (same region) into this one.
    pub fn merge(&mut self, other: &AsDayTotals) {
        debug_assert_eq!(self.region, other.region, "regions must agree");
        for (asn, (wd, we)) in &other.totals {
            let entry = self.totals.entry(*asn).or_insert((0, 0));
            entry.0 += wd;
            entry.1 += we;
        }
        self.days_seen.0.extend(&other.days_seen.0);
        self.days_seen.1.extend(&other.days_seen.1);
    }

    /// Shard-codec payload: per-AS totals sorted by ASN, then the two
    /// day-seen sets sorted. The region is *not* encoded — the receiving
    /// consumer is factory-built with it.
    pub(crate) fn encode_totals(&self, out: &mut Vec<u8>) {
        let mut asns: Vec<u32> = self.totals.keys().copied().collect();
        asns.sort_unstable();
        crate::codec::put_u64(out, asns.len() as u64);
        for asn in asns {
            let (wd, we) = self.totals[&asn];
            crate::codec::put_u32(out, asn);
            crate::codec::put_u64(out, wd);
            crate::codec::put_u64(out, we);
        }
        for set in [&self.days_seen.0, &self.days_seen.1] {
            let mut sorted: Vec<i64> = set.iter().copied().collect();
            sorted.sort_unstable();
            crate::codec::put_u64(out, sorted.len() as u64);
            for d in sorted {
                crate::codec::put_i64(out, d);
            }
        }
    }

    /// Decode a shard-codec payload and merge it additively.
    pub(crate) fn merge_totals(
        &mut self,
        r: &mut crate::codec::StateReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        let n = r.len("AS totals", 20)?;
        for _ in 0..n {
            let asn = r.u32("asn")?;
            let wd = r.u64("workday bytes")?;
            let we = r.u64("weekend bytes")?;
            let entry = self.totals.entry(asn).or_insert((0, 0));
            entry.0 += wd;
            entry.1 += we;
        }
        let wd_days = r.len("workday set", 8)?;
        for _ in 0..wd_days {
            self.days_seen.0.insert(r.i64("workday number")?);
        }
        let we_days = r.len("weekend set", 8)?;
        for _ in 0..we_days {
            self.days_seen.1.insert(r.i64("weekend day number")?);
        }
        Ok(())
    }

    /// Group an AS by its *per-day* workday/weekend ratio. `None` if the
    /// AS was not observed (or one class of days is absent in the window).
    pub fn group_of(&self, asn: Asn) -> Option<RatioGroup> {
        let (wd_bytes, we_bytes) = self.totals.get(&asn.0).copied()?;
        let wd_days = self.days_seen.0.len() as f64;
        let we_days = self.days_seen.1.len() as f64;
        if wd_days == 0.0 || we_days == 0.0 {
            return None;
        }
        let wd_rate = wd_bytes as f64 / wd_days;
        let we_rate = we_bytes as f64 / we_days;
        if we_rate == 0.0 && wd_rate == 0.0 {
            return None;
        }
        let ratio = if we_rate == 0.0 {
            f64::INFINITY
        } else {
            wd_rate / we_rate
        };
        Some(if ratio > 1.3 {
            RatioGroup::WorkdayDominated
        } else if ratio < 0.8 {
            RatioGroup::WeekendDominated
        } else {
            RatioGroup::Balanced
        })
    }

    /// All ASes in a group.
    pub fn in_group(&self, group: RatioGroup) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .totals
            .keys()
            .map(|&a| Asn(a))
            .filter(|&a| self.group_of(a) == Some(group))
            .collect();
        out.sort();
        out
    }

    /// Mean daily bytes of an AS across the whole window.
    pub fn mean_daily_bytes(&self, asn: Asn) -> f64 {
        let Some(&(wd, we)) = self.totals.get(&asn.0) else {
            return 0.0;
        };
        let days = (self.days_seen.0.len() + self.days_seen.1.len()).max(1) as f64;
        (wd + we) as f64 / days
    }
}

/// One point of the Fig. 6 scatter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidentialShift {
    /// The AS.
    pub asn: Asn,
    /// Normalized difference in mean total volume (Mar − Feb) in `[-1, 1]`.
    pub total_delta: f64,
    /// Normalized difference in mean residential (eyeball-facing) volume.
    pub residential_delta: f64,
}

/// Compute the Fig. 6 scatter: per AS, the normalized change in mean daily
/// total volume vs. the change in mean daily eyeball-facing volume between
/// a base window and a lockdown window. Normalization is symmetric:
/// `(b - a) / max(a, b)`, which lands in `[-1, 1]` like the paper's axes.
pub fn residential_shift(
    base: &AsDayTotals,
    lockdown: &AsDayTotals,
    base_res: &AsDayTotals,
    lockdown_res: &AsDayTotals,
    ases: impl IntoIterator<Item = Asn>,
) -> Vec<ResidentialShift> {
    fn delta(a: f64, b: f64) -> f64 {
        let m = a.max(b);
        if m == 0.0 {
            0.0
        } else {
            (b - a) / m
        }
    }
    ases.into_iter()
        .filter_map(|asn| {
            let t0 = base.mean_daily_bytes(asn);
            let t1 = lockdown.mean_daily_bytes(asn);
            if t0 == 0.0 && t1 == 0.0 {
                return None;
            }
            let r0 = base_res.mean_daily_bytes(asn);
            let r1 = lockdown_res.mean_daily_bytes(asn);
            Some(ResidentialShift {
                asn,
                total_delta: delta(t0, t1),
                residential_delta: delta(r0, r1),
            })
        })
        .collect()
}

/// Counts per quadrant of the Fig. 6 plane (excluding points on the axes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuadrantCounts {
    /// Total ↑, residential ↑.
    pub both_up: usize,
    /// Total ↓, residential ↑ (companies whose internal traffic collapsed).
    pub total_down_res_up: usize,
    /// Total ↓, residential ↓.
    pub both_down: usize,
    /// Total ↑, residential ↓.
    pub total_up_res_down: usize,
}

impl QuadrantCounts {
    /// Count quadrant membership.
    pub fn of(points: &[ResidentialShift]) -> QuadrantCounts {
        let mut q = QuadrantCounts::default();
        for p in points {
            match (p.total_delta > 0.0, p.residential_delta > 0.0) {
                (true, true) => q.both_up += 1,
                (false, true) => q.total_down_res_up += 1,
                (false, false) => q.both_down += 1,
                (true, false) => q.total_up_res_down += 1,
            }
        }
        q
    }
}

/// Pearson correlation between total and residential deltas (§3.4: "for a
/// majority of the ASes, there is a correlation").
pub fn shift_correlation(points: &[ResidentialShift]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.total_delta).sum::<f64>() / n;
    let my = points.iter().map(|p| p.residential_delta).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for p in points {
        let dx = p.total_delta - mx;
        let dy = p.residential_delta - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use lockdown_flow::record::FlowKey;
    use std::net::Ipv4Addr;

    fn flow(date: Date, hour: u8, src_as: u32, dst_as: u32, bytes: u64) -> FlowRecord {
        let t = date.at_hour(hour);
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(192, 0, 2, 1),
                dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                src_port: 443,
                dst_port: 50_000,
                protocol: IpProtocol::Tcp,
            },
            t,
        )
        .end(t.add_secs(1))
        .bytes(bytes)
        .packets(1)
        .asns(src_as, dst_as)
        .build()
    }

    const EYEBALL: Asn = Asn(64_496);
    const GOOGLE: u32 = 15_169;
    const OTHER: u32 = 65_100;

    #[test]
    fn daypart_classification() {
        let wed = Date::new(2020, 2, 19);
        let sat = Date::new(2020, 2, 22);
        assert_eq!(
            DayPart::of(wed, 10, Region::CentralEurope),
            Some(DayPart::WorkdayWork)
        );
        assert_eq!(
            DayPart::of(wed, 20, Region::CentralEurope),
            Some(DayPart::WorkdayEvening)
        );
        assert_eq!(
            DayPart::of(sat, 10, Region::CentralEurope),
            Some(DayPart::WeekendWork)
        );
        assert_eq!(
            DayPart::of(sat, 23, Region::CentralEurope),
            Some(DayPart::WeekendEvening)
        );
        assert_eq!(DayPart::of(wed, 3, Region::CentralEurope), None);
        // Easter Monday counts as weekend-like.
        assert_eq!(
            DayPart::of(Date::new(2020, 4, 13), 10, Region::CentralEurope),
            Some(DayPart::WeekendWork)
        );
    }

    #[test]
    fn hypergiant_split_growth() {
        let mut split = HypergiantSplit::new();
        // Week 8 (Feb 19 is in ISO week 8): baseline.
        let base_day = Date::new(2020, 2, 19);
        split.add(
            &flow(base_day, 10, GOOGLE, EYEBALL.0, 100),
            Region::CentralEurope,
            EYEBALL,
        );
        split.add(
            &flow(base_day, 10, OTHER, EYEBALL.0, 100),
            Region::CentralEurope,
            EYEBALL,
        );
        // Week 13 (Mar 25): hypergiants +30%, others +60%.
        let lock_day = Date::new(2020, 3, 25);
        split.add(
            &flow(lock_day, 10, GOOGLE, EYEBALL.0, 130),
            Region::CentralEurope,
            EYEBALL,
        );
        split.add(
            &flow(lock_day, 10, OTHER, EYEBALL.0, 160),
            Region::CentralEurope,
            EYEBALL,
        );

        let (_, base_week) = base_day.iso_week();
        let (_, lock_week) = lock_day.iso_week();
        let hg = split.growth_series(DayPart::WorkdayWork, true, [lock_week], base_week);
        let other = split.growth_series(DayPart::WorkdayWork, false, [lock_week], base_week);
        assert_eq!(hg[0], Some(1.3));
        assert_eq!(other[0], Some(1.6));
        // Missing weeks yield None.
        assert_eq!(
            split.growth_series(DayPart::WorkdayWork, true, [40u8], base_week)[0],
            None
        );
    }

    #[test]
    fn flow_direction_does_not_matter_for_content_side() {
        let mut split = HypergiantSplit::new();
        let d = Date::new(2020, 2, 19);
        // Upstream flow: eyeball is the source; content side is dst.
        split.add(
            &flow(d, 10, EYEBALL.0, GOOGLE, 50),
            Region::CentralEurope,
            EYEBALL,
        );
        let (_, w) = d.iso_week();
        assert_eq!(split.get(w, DayPart::WorkdayWork, true), 50);
    }

    #[test]
    fn ratio_groups() {
        let mut t = AsDayTotals::new(Region::CentralEurope);
        // Workday-heavy AS 1: 100/day on workdays, 10/day weekends.
        // Weekend-heavy AS 2: the reverse. Balanced AS 3.
        for d in Date::new(2020, 2, 3).range_inclusive(Date::new(2020, 2, 9)) {
            let weekend = d.weekday().is_weekend();
            t.add(&flow(d, 12, 1, 0, if weekend { 10 } else { 100 }));
            t.add(&flow(d, 12, 2, 0, if weekend { 100 } else { 10 }));
            t.add(&flow(d, 12, 3, 0, 50));
        }
        assert_eq!(t.group_of(Asn(1)), Some(RatioGroup::WorkdayDominated));
        assert_eq!(t.group_of(Asn(2)), Some(RatioGroup::WeekendDominated));
        assert_eq!(t.group_of(Asn(3)), Some(RatioGroup::Balanced));
        assert_eq!(t.group_of(Asn(99)), None);
        assert_eq!(t.in_group(RatioGroup::WorkdayDominated), vec![Asn(1)]);
    }

    #[test]
    fn residential_shift_quadrants() {
        let region = Region::CentralEurope;
        let feb = Date::new(2020, 2, 19);
        let mar = Date::new(2020, 3, 25);
        let mk = |d: Date, asn: u32, total: u64, res: u64| {
            let mut all = AsDayTotals::new(region);
            let mut resid = AsDayTotals::new(region);
            all.add(&flow(d, 12, asn, 0, total));
            let r = flow(d, 12, asn, EYEBALL.0, res);
            all.add(&r);
            resid.add(&r);
            (all, resid)
        };
        // AS 10: total down, residential up (top-left quadrant).
        let (b_all, b_res) = mk(feb, 10, 1_000, 50);
        let (l_all, l_res) = mk(mar, 10, 200, 400);
        let pts = residential_shift(&b_all, &l_all, &b_res, &l_res, [Asn(10)]);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].total_delta < 0.0, "total fell");
        assert!(pts[0].residential_delta > 0.0, "residential rose");
        let q = QuadrantCounts::of(&pts);
        assert_eq!(q.total_down_res_up, 1);
    }

    #[test]
    fn deltas_bounded() {
        let region = Region::CentralEurope;
        let mut b = AsDayTotals::new(region);
        let mut l = AsDayTotals::new(region);
        b.add(&flow(Date::new(2020, 2, 19), 12, 5, 0, 1));
        l.add(&flow(Date::new(2020, 3, 25), 12, 5, 0, 1_000_000));
        let pts = residential_shift(&b, &l, &b, &l, [Asn(5)]);
        assert!(pts[0].total_delta <= 1.0 && pts[0].total_delta > 0.99);
    }

    #[test]
    fn correlation() {
        let pts: Vec<ResidentialShift> = (0..20)
            .map(|i| ResidentialShift {
                asn: Asn(i),
                total_delta: i as f64 / 20.0 - 0.5,
                residential_delta: (i as f64 / 20.0 - 0.5) * 0.8,
            })
            .collect();
        assert!((shift_correlation(&pts) - 1.0).abs() < 1e-9);
        assert_eq!(shift_correlation(&pts[..1]), 0.0);
    }
}
