//! Application-class traffic classification (§5, Table 1, Figs. 8–9).
//!
//! The paper: "we apply a traffic classification based on a combination of
//! transport port and traffic source/sink criteria. In total, we define
//! more than 50 combinations of transport port and AS criteria". Classes
//! are "hiding" among existing traffic — ports collide (a STUN port is
//! used by gaming consoles and messengers alike) and AS membership is the
//! tiebreaker, which is exactly why the filter order below matters.
//!
//! The filter inventory reproduces Table 1's structure: per class, the
//! number of filters and the number of distinct ASNs and transport ports
//! they reference.

use crate::ports::EPHEMERAL_START;
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_scenario::apps::{PortSig, GAMING_PORTS};
use lockdown_topology::asn::{AsCategory, Asn};
use lockdown_topology::registry::{Registry, ZOOM_ASN};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::net::Ipv4Addr;

/// The nine application classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaperClass {
    /// Web conferencing and telephony.
    WebConf,
    /// Video on demand.
    Vod,
    /// Gaming (cloud and multiplayer).
    Gaming,
    /// Social media.
    SocialMedia,
    /// Messaging.
    Messaging,
    /// Email.
    Email,
    /// Educational networks.
    Educational,
    /// Collaborative working.
    CollabWorking,
    /// Content delivery networks.
    Cdn,
}

impl PaperClass {
    /// All nine classes, in Table 1's row order.
    pub const ALL: [PaperClass; 9] = [
        PaperClass::WebConf,
        PaperClass::Vod,
        PaperClass::Gaming,
        PaperClass::SocialMedia,
        PaperClass::Messaging,
        PaperClass::Email,
        PaperClass::Educational,
        PaperClass::CollabWorking,
        PaperClass::Cdn,
    ];

    /// Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            PaperClass::WebConf => "Web conferencing and telephony (Web conf)",
            PaperClass::Vod => "Video on Demand (VoD)",
            PaperClass::Gaming => "gaming",
            PaperClass::SocialMedia => "social media",
            PaperClass::Messaging => "messaging",
            PaperClass::Email => "email",
            PaperClass::Educational => "educational",
            PaperClass::CollabWorking => "collaborative working",
            PaperClass::Cdn => "Content Delivery Network (CDN)",
        }
    }

    /// Short label for heatmap rows (Fig. 9's y-axis).
    pub fn short(self) -> &'static str {
        match self {
            PaperClass::WebConf => "Web conf",
            PaperClass::Vod => "VoD",
            PaperClass::Gaming => "gaming",
            PaperClass::SocialMedia => "social media",
            PaperClass::Messaging => "messaging",
            PaperClass::Email => "email",
            PaperClass::Educational => "educational",
            PaperClass::CollabWorking => "coll. working",
            PaperClass::Cdn => "CDN",
        }
    }
}

impl fmt::Display for PaperClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// One filter: ports, ASNs, or a port+AS combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterRule {
    /// Match on service port signature(s) alone.
    Ports(Vec<PortSig>),
    /// Match on endpoint AS(es) alone.
    Asns(Vec<Asn>),
    /// Match only when both a port and an AS criterion hold.
    PortsAndAsns(Vec<PortSig>, Vec<Asn>),
}

impl FilterRule {
    fn matches(&self, sig: Option<PortSig>, src_as: Asn, dst_as: Asn) -> bool {
        let port_hit = |ports: &[PortSig]| sig.map(|s| ports.contains(&s)).unwrap_or(false);
        let asn_hit = |asns: &[Asn]| asns.contains(&src_as) || asns.contains(&dst_as);
        match self {
            FilterRule::Ports(ports) => port_hit(ports),
            FilterRule::Asns(asns) => asn_hit(asns),
            FilterRule::PortsAndAsns(ports, asns) => port_hit(ports) && asn_hit(asns),
        }
    }

    fn ports(&self) -> &[PortSig] {
        match self {
            FilterRule::Ports(p) | FilterRule::PortsAndAsns(p, _) => p,
            FilterRule::Asns(_) => &[],
        }
    }

    fn asns(&self) -> &[Asn] {
        match self {
            FilterRule::Asns(a) | FilterRule::PortsAndAsns(_, a) => a,
            FilterRule::Ports(_) => &[],
        }
    }
}

/// The classifier: the full Table 1 filter inventory, evaluated in a fixed
/// priority order.
#[derive(Debug, Clone)]
pub struct Classifier {
    /// (class, rules) in evaluation order.
    classes: Vec<(PaperClass, Vec<FilterRule>)>,
}

/// ASNs of a registry category, ordered.
fn category_asns(registry: &Registry, cat: AsCategory) -> Vec<Asn> {
    let mut v: Vec<Asn> = registry.in_category(cat).map(|a| a.asn).collect();
    v.sort();
    v
}

impl Classifier {
    /// Build the Table 1 filter inventory against a registry.
    pub fn from_registry(registry: &Registry) -> Classifier {
        use PortSig as P;
        let one = |a: Asn| vec![a];

        // Web conferencing: 7 filters, 1 ASN, 6 distinct ports.
        let webconf = vec![
            FilterRule::Ports(vec![P::udp(3480)]), // Teams/Skype STUN
            FilterRule::Ports(vec![P::udp(8801)]), // Zoom media
            FilterRule::Ports(vec![P::udp(8802)]),
            FilterRule::Ports(vec![P::udp(8803)]),
            FilterRule::Ports(vec![P::tcp(8801)]), // Zoom TCP fallback
            FilterRule::Ports(vec![P::udp(3481)]),
            FilterRule::Asns(one(ZOOM_ASN)),
        ];

        // VoD: 5 filters, 5 ASNs, no ports (Netflix & Amazon from Table 2
        // plus the three synthetic streamers).
        let mut vod_asns = vec![Asn(2_906), Asn(16_509)];
        vod_asns.extend(category_asns(registry, AsCategory::VodProvider));
        let vod = vod_asns.iter().map(|&a| FilterRule::Asns(one(a))).collect();

        // Gaming: 8 filters, 5 ASNs, 57 ports (5 AS filters + 3 port
        // groups partitioning the gaming-port list).
        let mut gaming: Vec<FilterRule> = category_asns(registry, AsCategory::GamingProvider)
            .into_iter()
            .map(|a| FilterRule::Asns(one(a)))
            .collect();
        gaming.push(FilterRule::Ports(GAMING_PORTS[..20].to_vec()));
        gaming.push(FilterRule::Ports(GAMING_PORTS[20..40].to_vec()));
        gaming.push(FilterRule::Ports(GAMING_PORTS[40..].to_vec()));

        // Social media: 4 filters, 4 ASNs, 1 port (HTTPS + the network).
        let social_asns = [
            Asn(32_934), // Facebook
            Asn(13_414), // Twitter
            category_asns(registry, AsCategory::SocialMedia)[0],
            category_asns(registry, AsCategory::SocialMedia)[1],
        ];
        let social = social_asns
            .iter()
            .map(|&a| FilterRule::PortsAndAsns(vec![P::tcp(443)], one(a)))
            .collect();

        // Messaging: 3 filters, 5 ports, no ASNs.
        let messaging = vec![
            FilterRule::Ports(vec![P::tcp(1863), P::tcp(6667)]),
            FilterRule::Ports(vec![P::tcp(4443), P::udp(4443)]),
            FilterRule::Ports(vec![P::tcp(5269)]),
        ];

        // Email: 1 filter, 10 ports.
        let email = vec![FilterRule::Ports(vec![
            P::tcp(25),
            P::tcp(26),
            P::tcp(110),
            P::tcp(143),
            P::tcp(465),
            P::tcp(587),
            P::tcp(993),
            P::tcp(995),
            P::tcp(2525),
            P::tcp(4190),
        ])];

        // Educational: 9 filters, 9 ASNs (8 NRENs + the EDU network).
        let educational = category_asns(registry, AsCategory::Educational)
            .into_iter()
            .map(|a| FilterRule::Asns(one(a)))
            .collect::<Vec<_>>();

        // Collaborative working: 8 filters, 2 ASNs, 9 ports.
        let collab_asns = category_asns(registry, AsCategory::CollaborationProvider);
        let collab = vec![
            FilterRule::Asns(one(collab_asns[0])),
            FilterRule::Asns(one(collab_asns[1])),
            FilterRule::Ports(vec![P::tcp(8443), P::udp(8443)]),
            FilterRule::Ports(vec![P::tcp(7443), P::udp(7443)]),
            FilterRule::Ports(vec![P::tcp(9443)]),
            FilterRule::Ports(vec![P::tcp(8444), P::udp(8444)]),
            FilterRule::Ports(vec![P::tcp(8445)]),
            FilterRule::Ports(vec![P::tcp(8446)]),
        ];

        // CDN: 8 filters, 8 ASNs (4 CDN-heavy hypergiants + 4 synthetic).
        let mut cdn_asns = vec![
            Asn(20_940), // Akamai
            Asn(13_335), // Cloudflare
            Asn(22_822), // Limelight
            Asn(15_133), // Verizon DMS
        ];
        cdn_asns.extend(category_asns(registry, AsCategory::Cdn));
        let cdn = cdn_asns.iter().map(|&a| FilterRule::Asns(one(a))).collect();

        // Evaluation order: port-specific classes first, then AS-based
        // content classes; gaming sits in between (its AS rules must win
        // over the generic 443 classes, its port groups after messaging so
        // shared STUN-family ports resolve by AS first).
        Classifier {
            classes: vec![
                (PaperClass::WebConf, webconf),
                (PaperClass::Messaging, messaging),
                (PaperClass::Email, email),
                (PaperClass::Gaming, gaming),
                (PaperClass::CollabWorking, collab),
                (PaperClass::Vod, vod),
                (PaperClass::Cdn, cdn),
                (PaperClass::SocialMedia, social),
                (PaperClass::Educational, educational),
            ],
        }
    }

    /// Classify one flow into a paper class, if any filter matches.
    pub fn classify(&self, record: &FlowRecord) -> Option<PaperClass> {
        let sig = service_sig(record);
        let (src_as, dst_as) = (Asn(record.src_as), Asn(record.dst_as));
        for (class, rules) in &self.classes {
            if rules.iter().any(|r| r.matches(sig, src_as, dst_as)) {
                return Some(*class);
            }
        }
        None
    }

    /// Table 1's per-class summary: (filters, distinct ASNs, distinct
    /// transport ports).
    pub fn table1_row(&self, class: PaperClass) -> (usize, usize, usize) {
        let rules = &self
            .classes
            .iter()
            .find(|(c, _)| *c == class)
            .expect("all classes present")
            .1;
        let asns: BTreeSet<Asn> = rules
            .iter()
            .flat_map(|r| r.asns().iter().copied())
            .collect();
        let ports: BTreeSet<PortSig> = rules
            .iter()
            .flat_map(|r| r.ports().iter().copied())
            .collect();
        (rules.len(), asns.len(), ports.len())
    }

    /// Total number of filter combinations (the paper: "more than 50").
    pub fn total_filters(&self) -> usize {
        self.classes.iter().map(|(_, r)| r.len()).sum()
    }
}

/// The service-side port signature of a flow (lower, non-ephemeral port),
/// or `None` when both ports are ephemeral.
fn service_sig(record: &FlowRecord) -> Option<PortSig> {
    let proto = record.key.protocol;
    if !proto.has_ports() {
        return Some(PortSig {
            protocol: proto,
            port: 0,
        });
    }
    let lo = record.key.src_port.min(record.key.dst_port);
    if lo >= EPHEMERAL_START {
        None
    } else {
        Some(PortSig {
            protocol: proto,
            port: lo,
        })
    }
}

/// Per-class usage metrics for one hour (Fig. 8's two panels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HourUsage {
    /// Bytes attributed to the class.
    pub bytes: u64,
    /// Distinct client IP addresses ("a way to approximate the order of
    /// households", §5).
    pub unique_ips: usize,
}

/// Measure one class's hourly usage over a batch of flows: volume plus
/// distinct non-content endpoint addresses.
pub fn class_hour_usage(
    classifier: &Classifier,
    class: PaperClass,
    flows: &[FlowRecord],
) -> HourUsage {
    let mut bytes = 0u64;
    let mut ips: HashSet<Ipv4Addr> = HashSet::new();
    for f in flows {
        if classifier.classify(f) == Some(class) {
            bytes += f.bytes;
            // The client is the ephemeral-port side; fall back to source.
            let client = if f.key.src_port >= EPHEMERAL_START || f.key.src_port == 0 {
                f.key.src_addr
            } else {
                f.key.dst_addr
            };
            ips.insert(client);
        }
    }
    HourUsage {
        bytes,
        unique_ips: ips.len(),
    }
}

/// Fig. 9 heatmap cell grid for one analysis week: per class, 7 days × the
/// displayed hours (the paper removes 02:00–07:00, keeping 19 hours/day).
#[derive(Debug, Clone)]
pub struct WeekHeatmap {
    /// Week start date.
    pub start: Date,
    /// `grid[class][day][display_hour]` = bytes.
    pub grid: Vec<[[u64; DISPLAY_HOURS]; 7]>,
}

/// Hours shown per day after removing 02:00–07:00.
pub const DISPLAY_HOURS: usize = 19;

/// Map an hour of day to its display slot, skipping 02:00–06:59.
pub fn display_slot(hour: u8) -> Option<usize> {
    match hour {
        0 | 1 => Some(hour as usize),
        2..=6 => None,
        7..=23 => Some(hour as usize - 5),
        _ => None,
    }
}

impl WeekHeatmap {
    /// An empty grid for the week starting at `start`.
    pub fn new(start: Date) -> WeekHeatmap {
        WeekHeatmap {
            start,
            grid: vec![[[0u64; DISPLAY_HOURS]; 7]; PaperClass::ALL.len()],
        }
    }

    /// Accumulate one flow into the grid (classified flows inside the
    /// week's displayed hours only).
    pub fn add(&mut self, classifier: &Classifier, record: &FlowRecord) {
        let Some(class) = classifier.classify(record) else {
            return;
        };
        let day = self.start.days_until(record.start.date());
        if !(0..7).contains(&day) {
            return;
        }
        let Some(slot) = display_slot(record.start.hour()) else {
            return;
        };
        let ci = PaperClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("in ALL");
        self.grid[ci][day as usize][slot] += record.bytes;
    }

    /// Merge another same-week grid into this one (cells are additive).
    pub fn merge(&mut self, other: &WeekHeatmap) {
        debug_assert_eq!(self.start, other.start, "weeks must agree");
        for (mine, theirs) in self.grid.iter_mut().zip(&other.grid) {
            for (day_m, day_t) in mine.iter_mut().zip(theirs) {
                for (cell_m, cell_t) in day_m.iter_mut().zip(day_t) {
                    *cell_m += cell_t;
                }
            }
        }
    }

    /// Accumulate one week of flows into the grid.
    pub fn build(classifier: &Classifier, start: Date, flows: &[FlowRecord]) -> WeekHeatmap {
        let mut h = WeekHeatmap::new(start);
        for f in flows {
            h.add(classifier, f);
        }
        h
    }

    /// The class's cells normalized to this week+others' shared max (the
    /// caller supplies the per-class max across all compared weeks, per
    /// the paper's "normalized to the minimum/maximum of all three weeks
    /// per application per vantage point").
    pub fn normalized(&self, class: PaperClass, class_max: u64) -> [[f64; DISPLAY_HOURS]; 7] {
        let ci = PaperClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("in ALL");
        let mut out = [[0.0; DISPLAY_HOURS]; 7];
        let denom = class_max.max(1) as f64;
        for (day_out, day_in) in out.iter_mut().zip(&self.grid[ci]) {
            for (cell, &v) in day_out.iter_mut().zip(day_in) {
                *cell = v as f64 / denom;
            }
        }
        out
    }

    /// Max cell value of one class in this week.
    pub fn class_max(&self, class: PaperClass) -> u64 {
        let ci = PaperClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("in ALL");
        self.grid[ci]
            .iter()
            .flat_map(|day| day.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// The Fig. 9 difference view: `(stage − base)` in percent of the shared
/// class max, clamped to the paper's display range [−100, +200].
pub fn heatmap_diff(
    base: &WeekHeatmap,
    stage: &WeekHeatmap,
    class: PaperClass,
) -> [[f64; DISPLAY_HOURS]; 7] {
    let max = base.class_max(class).max(stage.class_max(class));
    let b = base.normalized(class, max);
    let s = stage.normalized(class, max);
    let mut out = [[0.0; DISPLAY_HOURS]; 7];
    for (d, day) in out.iter_mut().enumerate() {
        for (h, cell) in day.iter_mut().enumerate() {
            let base_cell = b[d][h];
            let diff_pct = if base_cell > 0.0 {
                (s[d][h] - base_cell) / base_cell * 100.0
            } else if s[d][h] > 0.0 {
                200.0
            } else {
                0.0
            };
            *cell = diff_pct.clamp(-100.0, 200.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use lockdown_flow::record::FlowKey;

    fn registry() -> Registry {
        Registry::synthesize()
    }

    fn flow(proto: IpProtocol, sport: u16, dport: u16, src_as: u32, dst_as: u32) -> FlowRecord {
        let t = Date::new(2020, 3, 25).at_hour(11);
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(192, 0, 2, 1),
                dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                src_port: sport,
                dst_port: dport,
                protocol: proto,
            },
            t,
        )
        .end(t.add_secs(1))
        .bytes(100)
        .packets(1)
        .asns(src_as, dst_as)
        .build()
    }

    #[test]
    fn table1_counts_match_paper() {
        let c = Classifier::from_registry(&registry());
        // (filters, ASNs, ports) per Table 1.
        assert_eq!(c.table1_row(PaperClass::WebConf), (7, 1, 6));
        assert_eq!(c.table1_row(PaperClass::Vod), (5, 5, 0));
        assert_eq!(c.table1_row(PaperClass::Gaming), (8, 5, 57));
        assert_eq!(c.table1_row(PaperClass::SocialMedia), (4, 4, 1));
        assert_eq!(c.table1_row(PaperClass::Messaging), (3, 0, 5));
        assert_eq!(c.table1_row(PaperClass::Email), (1, 0, 10));
        assert_eq!(c.table1_row(PaperClass::Educational), (9, 9, 0));
        assert_eq!(c.table1_row(PaperClass::CollabWorking), (8, 2, 9));
        assert_eq!(c.table1_row(PaperClass::Cdn), (8, 8, 0));
        // "we define more than 50 combinations".
        assert!(c.total_filters() > 50, "{} filters", c.total_filters());
    }

    #[test]
    fn classify_by_port() {
        let c = Classifier::from_registry(&registry());
        assert_eq!(
            c.classify(&flow(IpProtocol::Udp, 3_480, 50_000, 8_075, 64_496)),
            Some(PaperClass::WebConf)
        );
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 50_000, 993, 64_496, 65_100)),
            Some(PaperClass::Email)
        );
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 40_000, 1_863, 1, 2)),
            Some(PaperClass::Messaging)
        );
    }

    #[test]
    fn classify_by_asn() {
        let r = registry();
        let c = Classifier::from_registry(&r);
        // Netflix on 443 → VoD.
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 443, 50_000, 2_906, 64_496)),
            Some(PaperClass::Vod)
        );
        // Akamai on 443 → CDN.
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 443, 50_000, 20_940, 64_496)),
            Some(PaperClass::Cdn)
        );
        // Facebook on 443 → social media.
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 443, 50_000, 32_934, 64_496)),
            Some(PaperClass::SocialMedia)
        );
        // An NREN on 443 → educational.
        let nren = r
            .ases()
            .iter()
            .find(|a| a.name.starts_with("NREN"))
            .unwrap()
            .asn;
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 443, 50_000, nren.0, 64_496)),
            Some(PaperClass::Educational)
        );
    }

    #[test]
    fn port_asn_priority_resolves_collisions() {
        let r = registry();
        let c = Classifier::from_registry(&r);
        let gaming_asn = r
            .in_category(AsCategory::GamingProvider)
            .next()
            .unwrap()
            .asn;
        // Gaming provider on a gaming port: gaming, not messaging.
        assert_eq!(
            c.classify(&flow(IpProtocol::Udp, 3_074, 50_000, gaming_asn.0, 64_496)),
            Some(PaperClass::Gaming)
        );
        // Gaming port from a random AS still lands in gaming (port group).
        assert_eq!(
            c.classify(&flow(IpProtocol::Udp, 27_015, 50_000, 99, 64_496)),
            Some(PaperClass::Gaming)
        );
        // Generic web to a random AS: unclassified.
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 443, 50_000, 99, 98)),
            None
        );
        // QUIC to Google: not one of the nine classes.
        assert_eq!(
            c.classify(&flow(IpProtocol::Udp, 443, 50_000, 15_169, 64_496)),
            None
        );
    }

    #[test]
    fn ephemeral_both_sides_unclassified_by_port() {
        let c = Classifier::from_registry(&registry());
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 40_000, 50_000, 7, 8)),
            None
        );
        // …but AS rules still apply (VoD is AS-only).
        assert_eq!(
            c.classify(&flow(IpProtocol::Tcp, 40_000, 50_000, 2_906, 8)),
            Some(PaperClass::Vod)
        );
    }

    #[test]
    fn hour_usage_counts_unique_clients() {
        let r = registry();
        let c = Classifier::from_registry(&r);
        let t = Date::new(2020, 3, 25).at_hour(20);
        let mk = |client: u8| {
            FlowRecord::builder(
                FlowKey {
                    src_addr: Ipv4Addr::new(203, 0, 113, client),
                    dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                    src_port: 50_000,
                    dst_port: 27_015,
                    protocol: IpProtocol::Udp,
                },
                t,
            )
            .end(t.add_secs(1))
            .bytes(500)
            .packets(1)
            .asns(64_496, 65_040)
            .build()
        };
        let flows = vec![mk(1), mk(1), mk(2), mk(3)];
        let usage = class_hour_usage(&c, PaperClass::Gaming, &flows);
        assert_eq!(usage.bytes, 2_000);
        assert_eq!(usage.unique_ips, 3);
        let other = class_hour_usage(&c, PaperClass::Email, &flows);
        assert_eq!(other.bytes, 0);
    }

    #[test]
    fn display_slots_skip_early_morning() {
        assert_eq!(display_slot(0), Some(0));
        assert_eq!(display_slot(1), Some(1));
        for h in 2..=6 {
            assert_eq!(display_slot(h), None);
        }
        assert_eq!(display_slot(7), Some(2));
        assert_eq!(display_slot(23), Some(18));
        assert_eq!((0..24).filter_map(display_slot).count(), DISPLAY_HOURS);
    }

    #[test]
    fn heatmap_diff_clamped() {
        let r = registry();
        let c = Classifier::from_registry(&r);
        let start = Date::new(2020, 2, 20);
        let mk_week = |bytes: u64| -> Vec<FlowRecord> {
            let t = start.at_hour(11);
            vec![FlowRecord::builder(
                FlowKey {
                    src_addr: Ipv4Addr::new(192, 0, 2, 1),
                    dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                    src_port: 50_000,
                    dst_port: 993,
                    protocol: IpProtocol::Tcp,
                },
                t,
            )
            .end(t.add_secs(1))
            .bytes(bytes)
            .packets(1)
            .build()]
        };
        let base = WeekHeatmap::build(&c, start, &mk_week(100));
        let stage = WeekHeatmap::build(&c, start, &mk_week(800)); // +700%
        let diff = heatmap_diff(&base, &stage, PaperClass::Email);
        let slot = display_slot(11).unwrap();
        assert_eq!(diff[0][slot], 200.0, "growth clamps at +200%");
        let down = heatmap_diff(&stage, &base, PaperClass::Email);
        assert!((down[0][slot] - (-87.5)).abs() < 1e-9);
    }
}
