//! IXP member port-utilization analysis (Fig. 5, §3.3).
//!
//! The paper compares, per IXP-CE customer port, the minimum, average and
//! maximum utilization (traffic relative to physical capacity) between the
//! base week and stage 2, finding every ECDF shifted right.
//!
//! The reproduction's traces are scaled down by a global factor, so raw
//! bytes cannot be divided by real port capacities directly. Instead the
//! analysis calibrates one sensor factor per member on the base day — such
//! that the member's base *average* utilization equals the fabric model's
//! baseline — and then applies that fixed calibration to any other day.
//! Growth (the thing Fig. 5 shows) is measured purely from flow data; the
//! member model only anchors the axis. Capacity upgrades between the two
//! dates lower utilization, exactly as a real port upgrade would.
//!
//! Per-bin resolution is one hour (the paper uses one minute; at the
//! reproduction's flow resolution minute bins would be mostly empty —
//! documented in EXPERIMENTS.md).

use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_topology::asn::Asn;
use lockdown_topology::ixp::IxpFabric;
use std::collections::HashMap;

/// Min/avg/max utilization of one member port on one day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberUtilization {
    /// The member.
    pub asn: Asn,
    /// Minimum hourly utilization (fraction of capacity).
    pub min: f64,
    /// Mean hourly utilization.
    pub avg: f64,
    /// Maximum hourly utilization.
    pub max: f64,
}

/// Streaming per-AS hourly byte totals for one day. A flow counts toward
/// *both* endpoint ASes (the paper measures the member's *port*, which
/// both directions traverse); membership is filtered later, at
/// calibration/stats time, so this accumulator needs no fabric handle and
/// can be fed by the trace engine.
#[derive(Debug, Clone)]
pub struct AsHourly {
    date: Date,
    day_start_unix: u64,
    bins: HashMap<u32, [u64; 24]>,
}

impl AsHourly {
    /// An empty accumulator for one day.
    pub fn new(date: Date) -> AsHourly {
        AsHourly {
            date,
            day_start_unix: date.midnight().unix(),
            bins: HashMap::new(),
        }
    }

    /// The day being accumulated.
    pub fn date(&self) -> Date {
        self.date
    }

    /// Add one flow (binned by start hour; flows outside the day are
    /// ignored).
    pub fn add(&mut self, record: &FlowRecord) {
        let hour = (record.start.unix().saturating_sub(self.day_start_unix) / 3_600) as usize;
        if hour >= 24 {
            return;
        }
        for asn in [record.src_as, record.dst_as] {
            if asn != 0 {
                self.bins.entry(asn).or_insert([0; 24])[hour] += record.bytes;
            }
        }
    }

    /// Merge another same-day accumulator into this one.
    pub fn merge(&mut self, other: &AsHourly) {
        debug_assert_eq!(self.date, other.date, "days must agree");
        for (asn, theirs) in &other.bins {
            let mine = self.bins.entry(*asn).or_insert([0; 24]);
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// Shard-codec payload: the day number, then per-AS 24-hour rows
    /// sorted by ASN.
    pub(crate) fn encode_hourly(&self, out: &mut Vec<u8>) {
        crate::codec::put_i64(out, self.date.day_number());
        let mut asns: Vec<u32> = self.bins.keys().copied().collect();
        asns.sort_unstable();
        crate::codec::put_u64(out, asns.len() as u64);
        for asn in asns {
            crate::codec::put_u32(out, asn);
            for b in &self.bins[&asn] {
                crate::codec::put_u64(out, *b);
            }
        }
    }

    /// Decode a shard-codec payload and merge it additively. The encoded
    /// day must match this accumulator's day (same-date invariant of
    /// [`AsHourly::merge`]).
    pub(crate) fn merge_hourly(
        &mut self,
        r: &mut crate::codec::StateReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        let day = r.i64("day number")?;
        if day != self.date.day_number() {
            return Err(r.error(format!(
                "day {day} does not match this accumulator's day {}",
                self.date.day_number()
            )));
        }
        let n = r.len("AS rows", 4 + 24 * 8)?;
        for _ in 0..n {
            let asn = r.u32("asn")?;
            let row = self.bins.entry(asn).or_insert([0; 24]);
            for slot in row.iter_mut() {
                *slot += r.u64("hour bytes")?;
            }
        }
        Ok(())
    }

    /// Accumulate a batch of flows.
    pub fn from_flows(flows: &[FlowRecord], date: Date) -> AsHourly {
        let mut h = AsHourly::new(date);
        for f in flows {
            h.add(f);
        }
        h
    }

    /// One AS's 24 hourly totals, if it carried traffic.
    pub fn hours(&self, asn: Asn) -> Option<&[u64; 24]> {
        self.bins.get(&asn.0)
    }
}

/// Calibrated link-utilization analyzer for one IXP fabric.
#[derive(Debug)]
pub struct LinkUtilization<'a> {
    fabric: &'a IxpFabric,
    /// Per-member factor such that `bytes_per_hour × factor` is the
    /// absolute throughput in "capacity Gbps-equivalent" units.
    gbps_equivalent: HashMap<Asn, f64>,
}

impl<'a> LinkUtilization<'a> {
    /// Calibrate against a base day: each member's average utilization on
    /// `base_date` is anchored to its modelled baseline utilization.
    pub fn calibrate(fabric: &'a IxpFabric, base_flows: &[FlowRecord], base_date: Date) -> Self {
        Self::calibrate_hourly(fabric, &AsHourly::from_flows(base_flows, base_date))
    }

    /// Like [`LinkUtilization::calibrate`], from a pre-accumulated
    /// [`AsHourly`] (the engine's streaming path).
    pub fn calibrate_hourly(fabric: &'a IxpFabric, hourly: &AsHourly) -> Self {
        let base_date = hourly.date();
        let mut gbps_equivalent = HashMap::new();
        for m in &fabric.members {
            let Some(bins) = hourly.hours(m.asn) else {
                continue; // member silent in the base trace: uncalibratable
            };
            let avg_bytes = bins.iter().sum::<u64>() as f64 / 24.0;
            if avg_bytes > 0.0 {
                // avg_bytes/hour corresponds to base_utilization × capacity.
                let base_gbps = m.base_utilization * m.capacity_gbps(base_date);
                gbps_equivalent.insert(m.asn, base_gbps / avg_bytes);
            }
        }
        LinkUtilization {
            fabric,
            gbps_equivalent,
        }
    }

    /// Number of calibrated members.
    pub fn calibrated_members(&self) -> usize {
        self.gbps_equivalent.len()
    }

    /// Per-member min/avg/max utilization for one day of flows.
    /// Members without calibration or traffic that day are omitted.
    pub fn day_stats(&self, flows: &[FlowRecord], date: Date) -> Vec<MemberUtilization> {
        self.day_stats_hourly(&AsHourly::from_flows(flows, date))
    }

    /// Like [`LinkUtilization::day_stats`], from a pre-accumulated
    /// [`AsHourly`].
    pub fn day_stats_hourly(&self, hourly: &AsHourly) -> Vec<MemberUtilization> {
        let date = hourly.date();
        let mut out = Vec::new();
        for m in &self.fabric.members {
            let Some(factor) = self.gbps_equivalent.get(&m.asn) else {
                continue;
            };
            let Some(bins) = hourly.hours(m.asn) else {
                continue;
            };
            let capacity = m.capacity_gbps(date);
            let utils: Vec<f64> = bins
                .iter()
                .map(|&b| ((b as f64) * factor / capacity).min(1.0))
                .collect();
            let min = utils.iter().copied().fold(f64::INFINITY, f64::min);
            let max = utils.iter().copied().fold(0.0f64, f64::max);
            let avg = utils.iter().sum::<f64>() / utils.len() as f64;
            out.push(MemberUtilization {
                asn: m.asn,
                min,
                avg,
                max,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use lockdown_flow::record::{Direction, FlowKey};
    use lockdown_topology::registry::Registry;
    use lockdown_topology::vantage::VantagePoint;
    use std::net::Ipv4Addr;

    /// Hand-build flows giving each of the first `n` members a flat
    /// `bytes_per_hour` for all 24 hours of `date`, scaled by `factor`.
    fn flat_day(fabric: &IxpFabric, n: usize, date: Date, bytes_per_hour: u64) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for m in fabric.members.iter().take(n) {
            for h in 0..24u8 {
                let t = date.at_hour(h);
                out.push(
                    FlowRecord::builder(
                        FlowKey {
                            src_addr: Ipv4Addr::new(192, 0, 2, 1),
                            dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                            src_port: 443,
                            dst_port: 50_000,
                            protocol: IpProtocol::Tcp,
                        },
                        t,
                    )
                    .end(t.add_secs(30))
                    .bytes(bytes_per_hour)
                    .packets(10)
                    .asns(m.asn.0, 0)
                    .direction(Direction::Unknown)
                    .build(),
                );
            }
        }
        out
    }

    fn fabric() -> (Registry, IxpFabric) {
        let r = Registry::synthesize();
        let f = IxpFabric::synthesize(VantagePoint::IxpSe, &r, 3);
        (r, f)
    }

    #[test]
    fn base_day_average_matches_model() {
        let (_r, f) = fabric();
        let base = Date::new(2020, 2, 20);
        let flows = flat_day(&f, 10, base, 1_000_000);
        let lu = LinkUtilization::calibrate(&f, &flows, base);
        assert_eq!(lu.calibrated_members(), 10);
        for s in lu.day_stats(&flows, base) {
            let m = f.members.iter().find(|m| m.asn == s.asn).unwrap();
            assert!(
                (s.avg - m.base_utilization).abs() < 1e-9,
                "avg {} vs anchor {}",
                s.avg,
                m.base_utilization
            );
            // Flat traffic: min == avg == max.
            assert!((s.min - s.max).abs() < 1e-9);
        }
    }

    #[test]
    fn growth_shifts_utilization_right() {
        let (_r, f) = fabric();
        let base = Date::new(2020, 2, 20);
        // Use members without upgrades for a pure-growth check.
        let stage2 = Date::new(2020, 4, 23);
        let flows_base = flat_day(&f, 20, base, 1_000_000);
        let flows_stage2 = flat_day(&f, 20, stage2, 1_300_000); // +30%
        let lu = LinkUtilization::calibrate(&f, &flows_base, base);
        let b = lu.day_stats(&flows_base, base);
        let s = lu.day_stats(&flows_stage2, stage2);
        for (sb, ss) in b.iter().zip(&s) {
            let m = f.members.iter().find(|m| m.asn == sb.asn).unwrap();
            if ss.avg >= 1.0 {
                continue; // saturated the 100% cap; growth not measurable
            }
            if m.upgrade_gbps == 0.0 {
                assert!(
                    ss.avg > sb.avg * 1.2,
                    "{}: {} -> {}",
                    sb.asn,
                    sb.avg,
                    ss.avg
                );
            } else {
                // Upgraded members: utilization rises less (or falls).
                let cap_growth = m.capacity_gbps(stage2) / m.base_capacity_gbps;
                assert!((ss.avg * cap_growth / 1.3 - sb.avg).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn utilization_capped_at_one() {
        let (_r, f) = fabric();
        let base = Date::new(2020, 2, 20);
        let flows_base = flat_day(&f, 5, base, 1_000);
        let lu = LinkUtilization::calibrate(&f, &flows_base, base);
        // 1000× growth would exceed physical capacity: cap at 1.0.
        let flows_big = flat_day(&f, 5, base, 1_000_000_000);
        for s in lu.day_stats(&flows_big, base) {
            assert!(s.max <= 1.0 && s.avg <= 1.0);
        }
    }

    #[test]
    fn silent_members_omitted() {
        let (_r, f) = fabric();
        let base = Date::new(2020, 2, 20);
        let flows = flat_day(&f, 5, base, 1_000_000);
        let lu = LinkUtilization::calibrate(&f, &flows, base);
        assert_eq!(lu.calibrated_members(), 5);
        let later = flat_day(&f, 3, base, 500_000);
        assert_eq!(lu.day_stats(&later, base).len(), 3);
    }

    #[test]
    fn min_avg_max_ordering() {
        let (_r, f) = fabric();
        let base = Date::new(2020, 2, 20);
        // Uneven traffic: heavier in hour 20.
        let mut flows = flat_day(&f, 8, base, 800_000);
        for m in f.members.iter().take(8) {
            let t = base.at_hour(20);
            flows.push(
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::new(192, 0, 2, 3),
                        dst_addr: Ipv4Addr::new(192, 0, 2, 4),
                        src_port: 443,
                        dst_port: 50_001,
                        protocol: IpProtocol::Tcp,
                    },
                    t,
                )
                .end(t.add_secs(5))
                .bytes(2_000_000)
                .packets(10)
                .asns(0, m.asn.0)
                .build(),
            );
        }
        let lu = LinkUtilization::calibrate(&f, &flows, base);
        for s in lu.day_stats(&flows, base) {
            assert!(s.min <= s.avg && s.avg <= s.max);
            assert!(s.max > s.min, "hour-20 spike must show");
        }
    }
}
