//! The workday-like / weekend-like day classifier (Fig. 2b, 2c).
//!
//! From §1: "we call a traffic pattern a *workday pattern* if the traffic
//! spikes in the evening hours and a *weekend pattern* if its main activity
//! gains significant momentum at about 9 to 10 am … For our classification,
//! we use baseline data from Feb 2020 at the aggregation level of 6 hours.
//! Then we apply this classification to all days."
//!
//! Implementation: each day is reduced to its four 6-hour volume shares
//! (00–06, 06–12, 12–18, 18–24). The February baseline yields a workday
//! centroid and a weekend centroid; a day is classified by the nearer
//! centroid (Euclidean distance on shares). The 6-hour granularity is the
//! paper's choice; the `ablation_dayclass_granularity` bench compares it
//! against 1-, 2-, 3-, 4-, 8- and 12-hour variants.

use crate::timeseries::HourlyVolume;
use lockdown_flow::time::Date;
use lockdown_scenario::calendar::{day_type, DayType};
use lockdown_topology::asn::Region;
use serde::{Deserialize, Serialize};

/// Classifier verdict for one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayPattern {
    /// Evening-peaked: a pre-pandemic working day.
    WorkdayLike,
    /// Morning-momentum: a weekend (or a lockdown workday).
    WeekendLike,
}

/// One classified day, with the ground-truth calendar day type so the
/// Fig. 2b/2c match/mismatch coloring can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedDay {
    /// The date.
    pub date: Date,
    /// Classifier verdict.
    pub pattern: DayPattern,
    /// Calendar day type (workday/weekend/holiday).
    pub calendar: DayType,
    /// Normalized total volume that day (units chosen by the caller).
    pub volume: f64,
}

impl ClassifiedDay {
    /// Whether the verdict matches the calendar (blue vs. orange bars in
    /// Fig. 2b/2c). Holidays count as weekend days, per §4.
    pub fn matches_calendar(&self) -> bool {
        match self.pattern {
            DayPattern::WorkdayLike => self.calendar == DayType::Workday,
            DayPattern::WeekendLike => self.calendar.is_weekend_like(),
        }
    }
}

/// A day reduced to its `buckets` coarse volume shares (summing to 1).
fn day_shares(volume: &HourlyVolume, date: Date, buckets: usize) -> Option<Vec<f64>> {
    assert!(
        buckets > 0 && 24 % buckets == 0,
        "bucket count must divide 24"
    );
    let span = 24 / buckets;
    let profile = volume.day_profile(date);
    let total: u64 = profile.iter().sum();
    if total == 0 {
        return None;
    }
    Some(
        (0..buckets)
            .map(|b| {
                let sum: u64 = profile[b * span..(b + 1) * span].iter().sum();
                sum as f64 / total as f64
            })
            .collect(),
    )
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// The trained classifier.
#[derive(Debug, Clone)]
pub struct DayClassifier {
    workday_centroid: Vec<f64>,
    weekend_centroid: Vec<f64>,
    buckets: usize,
    region: Region,
}

impl DayClassifier {
    /// The paper's aggregation level.
    pub const PAPER_BUCKETS: usize = 4; // 24h / 6h

    /// Train from February baseline data at the paper's 6-hour level.
    pub fn train_february(volume: &HourlyVolume, region: Region) -> DayClassifier {
        Self::train(
            volume,
            region,
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            Self::PAPER_BUCKETS,
        )
    }

    /// Train from an arbitrary baseline window and bucket count (the
    /// ablation bench varies `buckets`).
    pub fn train(
        volume: &HourlyVolume,
        region: Region,
        start: Date,
        end: Date,
        buckets: usize,
    ) -> DayClassifier {
        let mut workday: Vec<Vec<f64>> = Vec::new();
        let mut weekend: Vec<Vec<f64>> = Vec::new();
        for date in start.range_inclusive(end) {
            let Some(shares) = day_shares(volume, date, buckets) else {
                continue;
            };
            match day_type(date, region) {
                DayType::Workday => workday.push(shares),
                _ => weekend.push(shares),
            }
        }
        assert!(
            !workday.is_empty() && !weekend.is_empty(),
            "baseline window must contain both workdays and weekends with traffic"
        );
        DayClassifier {
            workday_centroid: centroid(&workday),
            weekend_centroid: centroid(&weekend),
            buckets,
            region,
        }
    }

    /// Classify one day; `None` if the day carries no traffic.
    pub fn classify(&self, volume: &HourlyVolume, date: Date) -> Option<DayPattern> {
        let shares = day_shares(volume, date, self.buckets)?;
        let dw = distance(&shares, &self.workday_centroid);
        let de = distance(&shares, &self.weekend_centroid);
        Some(if dw <= de {
            DayPattern::WorkdayLike
        } else {
            DayPattern::WeekendLike
        })
    }

    /// Classify an inclusive range, normalizing volumes by the range max
    /// (the Fig. 2b/2c presentation).
    pub fn classify_range(
        &self,
        volume: &HourlyVolume,
        start: Date,
        end: Date,
    ) -> Vec<ClassifiedDay> {
        let max = start
            .range_inclusive(end)
            .map(|d| volume.daily_total(d))
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        start
            .range_inclusive(end)
            .filter_map(|date| {
                self.classify(volume, date).map(|pattern| ClassifiedDay {
                    date,
                    pattern,
                    calendar: day_type(date, self.region),
                    volume: volume.daily_total(date) as f64 / max,
                })
            })
            .collect()
    }

    /// Bucket count in use.
    pub fn buckets(&self) -> usize {
        self.buckets
    }
}

fn centroid(rows: &[Vec<f64>]) -> Vec<f64> {
    let dims = rows[0].len();
    let mut out = vec![0.0; dims];
    for row in rows {
        for (o, v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= rows.len() as f64;
    }
    out
}

/// Summary of a classified range: how many days landed in each verdict,
/// and how many match the calendar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassificationSummary {
    /// Days classified workday-like.
    pub workday_like: usize,
    /// Days classified weekend-like.
    pub weekend_like: usize,
    /// Days whose verdict matches the calendar.
    pub matches: usize,
    /// Days whose verdict contradicts the calendar.
    pub mismatches: usize,
}

impl ClassificationSummary {
    /// Summarize classified days.
    pub fn of(days: &[ClassifiedDay]) -> ClassificationSummary {
        let mut s = ClassificationSummary::default();
        for d in days {
            match d.pattern {
                DayPattern::WorkdayLike => s.workday_like += 1,
                DayPattern::WeekendLike => s.weekend_like += 1,
            }
            if d.matches_calendar() {
                s.matches += 1;
            } else {
                s.mismatches += 1;
            }
        }
        s
    }

    /// Fraction of days matching the calendar.
    pub fn accuracy(&self) -> f64 {
        let total = self.matches + self.mismatches;
        if total == 0 {
            0.0
        } else {
            self.matches as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_scenario::diurnal::{shape, DiurnalProfile};

    /// Build synthetic hourly volume following a diurnal profile per day.
    fn synthetic(start: Date, end: Date, pick: impl Fn(Date) -> DiurnalProfile) -> HourlyVolume {
        let mut v = HourlyVolume::new();
        for date in start.range_inclusive(end) {
            let p = pick(date);
            for h in 0..24u8 {
                v.add_bytes(date.at_hour(h), (shape(p, h) * 1e9) as u64);
            }
        }
        v
    }

    fn calendar_profiles(date: Date) -> DiurnalProfile {
        if day_type(date, Region::CentralEurope).is_weekend_like() {
            DiurnalProfile::ResidentialWeekend
        } else {
            DiurnalProfile::ResidentialWorkday
        }
    }

    #[test]
    fn classifies_clean_february_perfectly() {
        let v = synthetic(
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            calendar_profiles,
        );
        let c = DayClassifier::train_february(&v, Region::CentralEurope);
        let days = c.classify_range(&v, Date::new(2020, 2, 1), Date::new(2020, 2, 29));
        let s = ClassificationSummary::of(&days);
        assert_eq!(s.mismatches, 0, "clean data must classify perfectly");
        assert!(s.workday_like >= 20);
    }

    #[test]
    fn lockdown_days_become_weekend_like() {
        // February: normal. From Mar 16: every day follows the lockdown
        // profile. The classifier (trained on Feb) must flag lockdown
        // workdays as weekend-like — the Fig. 2 result.
        let v = synthetic(Date::new(2020, 2, 1), Date::new(2020, 4, 30), |d| {
            if d >= Date::new(2020, 3, 16) {
                DiurnalProfile::ResidentialLockdown
            } else {
                calendar_profiles(d)
            }
        });
        let c = DayClassifier::train_february(&v, Region::CentralEurope);
        let april = c.classify_range(&v, Date::new(2020, 4, 1), Date::new(2020, 4, 30));
        let weekend_like = april
            .iter()
            .filter(|d| d.pattern == DayPattern::WeekendLike)
            .count();
        assert_eq!(weekend_like, april.len(), "all lockdown days weekend-like");
        // Workdays now mismatch the calendar (the orange bars).
        let mismatched_workdays = april
            .iter()
            .filter(|d| d.calendar == DayType::Workday && !d.matches_calendar())
            .count();
        assert!(mismatched_workdays >= 18);
    }

    #[test]
    fn empty_days_are_skipped() {
        let v = synthetic(
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            calendar_profiles,
        );
        let c = DayClassifier::train_february(&v, Region::CentralEurope);
        assert_eq!(c.classify(&v, Date::new(2020, 6, 1)), None);
        let days = c.classify_range(&v, Date::new(2020, 5, 30), Date::new(2020, 6, 2));
        assert!(days.is_empty());
    }

    #[test]
    fn volumes_normalized_to_range_max() {
        let v = synthetic(
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            calendar_profiles,
        );
        let c = DayClassifier::train_february(&v, Region::CentralEurope);
        let days = c.classify_range(&v, Date::new(2020, 2, 1), Date::new(2020, 2, 29));
        let max = days.iter().map(|d| d.volume).fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(days.iter().all(|d| d.volume > 0.0 && d.volume <= 1.0));
    }

    #[test]
    fn ablation_granularities_all_work() {
        let v = synthetic(
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            calendar_profiles,
        );
        for buckets in [2usize, 3, 4, 6, 8, 12, 24] {
            let c = DayClassifier::train(
                &v,
                Region::CentralEurope,
                Date::new(2020, 2, 1),
                Date::new(2020, 2, 29),
                buckets,
            );
            let days = c.classify_range(&v, Date::new(2020, 2, 1), Date::new(2020, 2, 29));
            let s = ClassificationSummary::of(&days);
            assert!(
                s.accuracy() > 0.9,
                "buckets={buckets}: accuracy {}",
                s.accuracy()
            );
        }
    }

    #[test]
    #[should_panic(expected = "divide 24")]
    fn invalid_bucket_count_panics() {
        let v = synthetic(
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            calendar_profiles,
        );
        DayClassifier::train(
            &v,
            Region::CentralEurope,
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            5,
        );
    }

    #[test]
    fn summary_counts() {
        let days = vec![
            ClassifiedDay {
                date: Date::new(2020, 2, 3),
                pattern: DayPattern::WorkdayLike,
                calendar: DayType::Workday,
                volume: 1.0,
            },
            ClassifiedDay {
                date: Date::new(2020, 2, 8),
                pattern: DayPattern::WorkdayLike,
                calendar: DayType::Weekend,
                volume: 0.8,
            },
        ];
        let s = ClassificationSummary::of(&days);
        assert_eq!(s.workday_like, 2);
        assert_eq!(s.matches, 1);
        assert_eq!(s.accuracy(), 0.5);
        assert!(!days[1].matches_calendar());
    }
}
