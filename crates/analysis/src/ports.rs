//! Port-level application analysis (§4, Fig. 7).
//!
//! Flow records carry two ports; the analysis must decide which one names
//! the *service*. The classic heuristic (used here, as in production flow
//! pipelines): the service port is the lower, well-known/registered side;
//! two ephemeral ports mean the flow stays unattributed. Port-less
//! protocols (GRE, ESP) are first-class citizens — Fig. 7 plots them as
//! their own rows.

use lockdown_flow::protocol::IpProtocol;
use lockdown_flow::record::FlowRecord;
use lockdown_scenario::calendar::{day_type, DayType};
use lockdown_topology::asn::Region;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// First port of the ephemeral range for service-port attribution.
pub const EPHEMERAL_START: u16 = 32_768;

/// A service identity at the transport layer: either a concrete
/// protocol/port pair, or a port-less protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ServiceKey {
    /// Protocol + well-known/registered server port.
    Port(u8, u16),
    /// Port-less IP protocol (GRE, ESP, ICMP, …).
    Protocol(u8),
}

impl ServiceKey {
    /// Attribute a flow to a service, if possible.
    pub fn of(record: &FlowRecord) -> Option<ServiceKey> {
        let proto = record.key.protocol;
        if !proto.has_ports() {
            return Some(ServiceKey::Protocol(proto.number()));
        }
        let (a, b) = (record.key.src_port, record.key.dst_port);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo < EPHEMERAL_START {
            // The lower side is the service; ties with two registered
            // ports resolve to the lower one, like most flow tools.
            Some(ServiceKey::Port(proto.number(), lo))
        } else if hi >= EPHEMERAL_START && lo >= EPHEMERAL_START {
            None // ephemeral↔ephemeral: unattributable
        } else {
            Some(ServiceKey::Port(proto.number(), lo))
        }
    }

    /// Human-readable form ("TCP/443", "GRE").
    pub fn label(&self) -> String {
        match self {
            ServiceKey::Port(p, port) => format!("{}/{}", IpProtocol::from_number(*p), port),
            ServiceKey::Protocol(p) => IpProtocol::from_number(*p).to_string(),
        }
    }
}

impl fmt::Display for ServiceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Fig. 7's unit of aggregation: bytes per (service, workday/weekend,
/// hour of day), accumulated over one analysis week.
#[derive(Debug, Clone, Default)]
pub struct PortProfile {
    bins: BTreeMap<(ServiceKey, bool, u8), u64>,
    totals: BTreeMap<ServiceKey, u64>,
}

impl PortProfile {
    /// An empty profile.
    pub fn new() -> PortProfile {
        PortProfile::default()
    }

    /// Add one flow observed in `region` (the region's calendar decides
    /// workday vs. weekend; Easter counts as weekend, §4).
    pub fn add(&mut self, record: &FlowRecord, region: Region) {
        let Some(key) = ServiceKey::of(record) else {
            return;
        };
        let date = record.start.date();
        let weekend = day_type(date, region) != DayType::Workday;
        let hour = record.start.hour();
        *self.bins.entry((key, weekend, hour)).or_insert(0) += record.bytes;
        *self.totals.entry(key).or_insert(0) += record.bytes;
    }

    /// Add many flows.
    pub fn add_all<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a FlowRecord>,
        region: Region,
    ) {
        for r in records {
            self.add(r, region);
        }
    }

    /// Merge another profile into this one (bins are additive).
    pub fn merge(&mut self, other: &PortProfile) {
        for (k, v) in &other.bins {
            *self.bins.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.totals {
            *self.totals.entry(*k).or_insert(0) += v;
        }
    }

    /// Total bytes attributed to a service.
    pub fn total(&self, key: ServiceKey) -> u64 {
        self.totals.get(&key).copied().unwrap_or(0)
    }

    /// Hourly byte curve for (service, weekend?).
    pub fn curve(&self, key: ServiceKey, weekend: bool) -> [u64; 24] {
        let mut out = [0u64; 24];
        for (h, slot) in out.iter_mut().enumerate() {
            *slot = self
                .bins
                .get(&(key, weekend, h as u8))
                .copied()
                .unwrap_or(0);
        }
        out
    }

    /// The top `n` services by total bytes, after removing `exclude`
    /// (Fig. 7 omits TCP/443 and TCP/80 "for readability purposes" and
    /// shows the top 3–12).
    pub fn top_services(&self, n: usize, exclude: &[ServiceKey]) -> Vec<ServiceKey> {
        let mut entries: Vec<(&ServiceKey, &u64)> = self
            .totals
            .iter()
            .filter(|(k, _)| !exclude.contains(k))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        entries.into_iter().take(n).map(|(k, _)| *k).collect()
    }

    /// All services seen.
    pub fn services(&self) -> impl Iterator<Item = ServiceKey> + '_ {
        self.totals.keys().copied()
    }

    /// Share of total bytes carried by a set of services (e.g. the §4
    /// claim that TCP/443+TCP/80 carry 80% at the ISP).
    pub fn share_of(&self, keys: &[ServiceKey]) -> f64 {
        let selected: u64 = keys.iter().map(|k| self.total(*k)).sum();
        let all: u64 = self.totals.values().sum();
        if all == 0 {
            0.0
        } else {
            selected as f64 / all as f64
        }
    }

    /// Shard-codec payload: both maps in key order.
    pub(crate) fn encode_profile(&self, out: &mut Vec<u8>) {
        crate::codec::put_u64(out, self.bins.len() as u64);
        for ((key, weekend, hour), bytes) in &self.bins {
            put_service_key(out, *key);
            crate::codec::put_bool(out, *weekend);
            out.push(*hour);
            crate::codec::put_u64(out, *bytes);
        }
        crate::codec::put_u64(out, self.totals.len() as u64);
        for (key, bytes) in &self.totals {
            put_service_key(out, *key);
            crate::codec::put_u64(out, *bytes);
        }
    }

    /// Decode a shard-codec payload and merge it additively.
    pub(crate) fn merge_profile(
        &mut self,
        r: &mut crate::codec::StateReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        // Smallest bins entry: 2-byte key + weekend + hour + 8-byte count.
        let n = r.len("port bins", 12)?;
        for _ in 0..n {
            let key = read_service_key(r)?;
            let weekend = r.bool("weekend flag")?;
            let hour = r.u8("hour")?;
            let bytes = r.u64("bin bytes")?;
            if hour >= 24 {
                return Err(r.error(format!("hour {hour} out of range")));
            }
            *self.bins.entry((key, weekend, hour)).or_insert(0) += bytes;
        }
        let n = r.len("port totals", 10)?;
        for _ in 0..n {
            let key = read_service_key(r)?;
            let bytes = r.u64("total bytes")?;
            *self.totals.entry(key).or_insert(0) += bytes;
        }
        Ok(())
    }
}

/// [`ServiceKey`] wire form: variant byte 0 = `Port(proto, port)`,
/// 1 = `Protocol(proto)`.
fn put_service_key(out: &mut Vec<u8>, key: ServiceKey) {
    match key {
        ServiceKey::Port(proto, port) => {
            out.push(0);
            out.push(proto);
            crate::codec::put_u16(out, port);
        }
        ServiceKey::Protocol(proto) => {
            out.push(1);
            out.push(proto);
        }
    }
}

fn read_service_key(
    r: &mut crate::codec::StateReader<'_>,
) -> Result<ServiceKey, crate::codec::CodecError> {
    match r.u8("service key variant")? {
        0 => Ok(ServiceKey::Port(r.u8("protocol")?, r.u16("port")?)),
        1 => Ok(ServiceKey::Protocol(r.u8("protocol")?)),
        other => Err(r.error(format!("unknown service key variant {other}"))),
    }
}

/// Convenience constructors for the two ports Fig. 7 excludes.
pub fn tcp443() -> ServiceKey {
    ServiceKey::Port(6, 443)
}

/// TCP/80.
pub fn tcp80() -> ServiceKey {
    ServiceKey::Port(6, 80)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::record::FlowKey;
    use lockdown_flow::time::Date;
    use lockdown_flow::time::Timestamp;
    use std::net::Ipv4Addr;

    fn flow(
        proto: IpProtocol,
        src_port: u16,
        dst_port: u16,
        at: Timestamp,
        bytes: u64,
    ) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(192, 0, 2, 1),
                dst_addr: Ipv4Addr::new(192, 0, 2, 2),
                src_port,
                dst_port,
                protocol: proto,
            },
            at,
        )
        .end(at.add_secs(1))
        .bytes(bytes)
        .packets(1)
        .build()
    }

    #[test]
    fn service_attribution() {
        let t = Date::new(2020, 2, 19).at_hour(10);
        // Server on low side, either direction.
        let f1 = flow(IpProtocol::Tcp, 443, 50_000, t, 1);
        let f2 = flow(IpProtocol::Tcp, 50_000, 443, t, 1);
        assert_eq!(ServiceKey::of(&f1), Some(ServiceKey::Port(6, 443)));
        assert_eq!(ServiceKey::of(&f2), Some(ServiceKey::Port(6, 443)));
        // Ephemeral both sides: unattributable.
        let f3 = flow(IpProtocol::Udp, 40_000, 50_000, t, 1);
        assert_eq!(ServiceKey::of(&f3), None);
        // Port-less protocol.
        let f4 = flow(IpProtocol::Esp, 0, 0, t, 1);
        assert_eq!(ServiceKey::of(&f4), Some(ServiceKey::Protocol(50)));
    }

    #[test]
    fn labels() {
        assert_eq!(ServiceKey::Port(17, 443).label(), "UDP/443");
        assert_eq!(ServiceKey::Protocol(47).label(), "GRE");
        assert_eq!(tcp443().label(), "TCP/443");
    }

    #[test]
    fn profile_curves_and_daytypes() {
        let mut p = PortProfile::new();
        let wed = Date::new(2020, 2, 19);
        let sat = Date::new(2020, 2, 22);
        p.add(
            &flow(IpProtocol::Udp, 443, 40_000, wed.at_hour(9), 100),
            Region::CentralEurope,
        );
        p.add(
            &flow(IpProtocol::Udp, 443, 40_001, wed.at_hour(9), 50),
            Region::CentralEurope,
        );
        p.add(
            &flow(IpProtocol::Udp, 40_002, 443, sat.at_hour(20), 70),
            Region::CentralEurope,
        );
        let quic = ServiceKey::Port(17, 443);
        assert_eq!(p.curve(quic, false)[9], 150);
        assert_eq!(p.curve(quic, true)[20], 70);
        assert_eq!(p.total(quic), 220);
    }

    #[test]
    fn easter_is_weekend() {
        let mut p = PortProfile::new();
        // Apr 13 (Easter Monday) is a Monday but classifies as weekend.
        p.add(
            &flow(
                IpProtocol::Tcp,
                993,
                40_000,
                Date::new(2020, 4, 13).at_hour(10),
                10,
            ),
            Region::CentralEurope,
        );
        let k = ServiceKey::Port(6, 993);
        assert_eq!(p.curve(k, true)[10], 10);
        assert_eq!(p.curve(k, false)[10], 0);
    }

    #[test]
    fn top_services_with_exclusion() {
        let mut p = PortProfile::new();
        let t = Date::new(2020, 2, 19).at_hour(12);
        p.add(
            &flow(IpProtocol::Tcp, 443, 40_000, t, 1_000),
            Region::CentralEurope,
        );
        p.add(
            &flow(IpProtocol::Tcp, 80, 40_001, t, 500),
            Region::CentralEurope,
        );
        p.add(
            &flow(IpProtocol::Udp, 443, 40_002, t, 300),
            Region::CentralEurope,
        );
        p.add(
            &flow(IpProtocol::Udp, 4_500, 40_003, t, 200),
            Region::CentralEurope,
        );
        p.add(&flow(IpProtocol::Gre, 0, 0, t, 100), Region::CentralEurope);
        let top = p.top_services(3, &[tcp443(), tcp80()]);
        assert_eq!(
            top,
            vec![
                ServiceKey::Port(17, 443),
                ServiceKey::Port(17, 4_500),
                ServiceKey::Protocol(47)
            ]
        );
        let share = p.share_of(&[tcp443(), tcp80()]);
        assert!((share - 1_500.0 / 2_100.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut p = PortProfile::new();
        let t = Date::new(2020, 2, 19).at_hour(12);
        p.add(
            &flow(IpProtocol::Tcp, 22, 40_000, t, 100),
            Region::CentralEurope,
        );
        p.add(
            &flow(IpProtocol::Tcp, 25, 40_001, t, 100),
            Region::CentralEurope,
        );
        let top = p.top_services(2, &[]);
        assert_eq!(top, vec![ServiceKey::Port(6, 22), ServiceKey::Port(6, 25)]);
    }
}
