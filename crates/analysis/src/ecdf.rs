//! Empirical cumulative distribution functions (Fig. 5's presentation).

/// An ECDF over a finite sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (NaNs are rejected).
    pub fn new(mut sample: Vec<f64>) -> Ecdf {
        assert!(
            sample.iter().all(|v| !v.is_nan()),
            "ECDF sample contains NaN"
        );
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ecdf { sorted: sample }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the sample ≤ `x` (0 for an empty sample).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by the nearest-rank method.
    /// Panics on an empty sample or out-of-range `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if q == 0.0 {
            return self.sorted[0];
        }
        // Guard the ceil against float noise: q computed as k/n must map
        // back to rank k, not k+1 (k/n × n can land at k + ε).
        let rank = ((q * self.sorted.len() as f64) - 1e-9).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Evaluate the ECDF at each of `xs` (for plotting fixed grids, like
    /// Fig. 5's 1–100% utilization axis).
    pub fn evaluate(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.fraction_le(x)).collect()
    }

    /// Mean of the sample (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Whether this ECDF is stochastically dominated by `other` — i.e.
    /// `other`'s curve lies at or right of `self`'s everywhere (Fig. 5's
    /// "all curves are shifted to the right"). Checked on a merged grid.
    pub fn shifted_right_of(&self, other: &Ecdf, tolerance: f64) -> bool {
        let mut grid: Vec<f64> = self.sorted.iter().chain(&other.sorted).copied().collect();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        grid.dedup();
        grid.iter()
            .all(|&x| self.fraction_le(x) + tolerance >= other.fraction_le(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.25);
        assert_eq!(e.fraction_le(2.5), 0.5);
        assert_eq!(e.fraction_le(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
    }

    #[test]
    fn right_shift_detection() {
        let base = Ecdf::new((1..=100).map(f64::from).collect());
        let shifted = Ecdf::new((1..=100).map(|v| f64::from(v) * 1.3).collect());
        assert!(base.shifted_right_of(&shifted, 0.0));
        assert!(!shifted.shifted_right_of(&base, 0.0));
    }

    #[test]
    fn evaluate_grid() {
        let e = Ecdf::new(vec![0.2, 0.4, 0.9]);
        let ys = e.evaluate(&[0.1, 0.5, 1.0]);
        assert_eq!(ys, vec![0.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn empty_and_invalid() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(1.0), 0.0);
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        Ecdf::new(vec![]).quantile(0.5);
    }
}
