//! # lockdown-analysis
//!
//! The paper's measurement pipeline, reimplemented over synthetic flow
//! records. Nothing here reads the scenario's demand model: every result is
//! recovered from flow data alone, which is what makes the figure
//! reproductions meaningful.
//!
//! * [`timeseries`] — hourly/daily/weekly binning and normalization;
//! * [`ecdf`] — empirical CDFs (Fig. 5's presentation);
//! * [`dayclass`] — the 6-hour workday-/weekend-like classifier (Fig. 2);
//! * [`linkutil`] — calibrated IXP member port utilization (Fig. 5);
//! * [`asgroup`] — hypergiant/other splits (Fig. 4), remote-work AS
//!   grouping and the residential-shift scatter (§3.4, Fig. 6);
//! * [`ports`] — service-port attribution and top-port profiles (Fig. 7);
//! * [`appclass`] — the Table 1 filter inventory, classification, Fig. 9
//!   heatmaps and Fig. 8 usage metrics;
//! * [`vpn`] — §6's two VPN identification methods (Fig. 10);
//! * [`edu`] — §7's directionality and connection-level analysis
//!   (Figs. 11–12);
//! * [`codec`] — versioned, CRC-checked consumer-state frames for the
//!   coordinator/worker shard subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appclass;
pub mod asgroup;
pub mod codec;
pub mod consumer;
pub mod dayclass;
pub mod ecdf;
pub mod edu;
pub mod linkutil;
pub mod ports;
pub mod timeseries;
pub mod vpn;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::appclass::{
        class_hour_usage, heatmap_diff, Classifier, HourUsage, PaperClass, WeekHeatmap,
    };
    pub use crate::asgroup::{
        residential_shift, shift_correlation, AsDayTotals, DayPart, HypergiantSplit,
        QuadrantCounts, RatioGroup, ResidentialShift,
    };
    pub use crate::codec::{encode_frame, merge_frame, CodecError, ConsumerTag, StateReader};
    pub use crate::consumer::{
        AsTotalsConsumer, ClassUsageConsumer, FlowConsumer, HeatmapConsumer, HypergiantConsumer,
        PortConsumer,
    };
    pub use crate::dayclass::{ClassificationSummary, ClassifiedDay, DayClassifier, DayPattern};
    pub use crate::ecdf::Ecdf;
    pub use crate::edu::{EduAnalysis, EduTrafficClass, Orientation};
    pub use crate::linkutil::{AsHourly, LinkUtilization, MemberUtilization};
    pub use crate::ports::{tcp443, tcp80, PortProfile, ServiceKey};
    pub use crate::timeseries::{mean, median, normalize, normalize_by_min, HourlyVolume};
    pub use crate::vpn::{is_port_vpn, VpnClassifier, VpnMethod};
}
