//! Versioned wire codec for consumer state.
//!
//! The shard subsystem moves partial [`FlowConsumer`] state between
//! processes: a worker runs the engine over its cell slice, serializes
//! each consumer's accumulator, and the coordinator deserializes and
//! merges the partials through the same additive merge the in-process
//! engine uses. The encoding therefore has exactly two jobs:
//!
//! * **Determinism.** The same state encodes to the same bytes whatever
//!   the insertion order — hash maps and sets are emitted in sorted key
//!   order — so a coordinator can compare or replay frames byte for byte.
//! * **Loud failure.** Every frame carries a version, a consumer tag and
//!   a CRC-32 trailer over everything before it. A single flipped byte
//!   anywhere in the frame fails the CRC, and every decode error names
//!   the consumer the *caller* expected (never the possibly-corrupt tag
//!   byte inside the frame), so a mis-routed or damaged frame is
//!   attributable from the error string alone.
//!
//! Constructor parameters — classifier handles, regions, eyeball ASNs,
//! calibration dates — are deliberately *not* serialized: both sides of a
//! shard run build identical engine plans, so the receiving consumer is
//! factory-built with the right parameters and the frame carries only the
//! mergeable accumulator state.

use crate::consumer::FlowConsumer;
use std::fmt;

/// Current state-frame format version.
pub const STATE_VERSION: u16 = 1;

/// Fixed frame overhead: version (2) + tag (1) + payload length (4) +
/// CRC-32 trailer (4).
pub const FRAME_OVERHEAD: usize = 11;

/// Stable identity of one consumer's serialized state: a tag byte on the
/// wire plus the human-readable name decode errors carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerTag {
    /// Tag byte recorded in the frame header.
    pub id: u8,
    /// Name used in error attribution.
    pub name: &'static str,
}

/// [`crate::timeseries::HourlyVolume`] state.
pub const TAG_HOURLY_VOLUME: ConsumerTag = ConsumerTag {
    id: 1,
    name: "HourlyVolume",
};
/// [`crate::edu::EduAnalysis`] state.
pub const TAG_EDU_ANALYSIS: ConsumerTag = ConsumerTag {
    id: 2,
    name: "EduAnalysis",
};
/// [`crate::consumer::PortConsumer`] state.
pub const TAG_PORT_CONSUMER: ConsumerTag = ConsumerTag {
    id: 3,
    name: "PortConsumer",
};
/// [`crate::consumer::HypergiantConsumer`] state.
pub const TAG_HYPERGIANT_CONSUMER: ConsumerTag = ConsumerTag {
    id: 4,
    name: "HypergiantConsumer",
};
/// [`crate::consumer::AsTotalsConsumer`] state.
pub const TAG_AS_TOTALS_CONSUMER: ConsumerTag = ConsumerTag {
    id: 5,
    name: "AsTotalsConsumer",
};
/// [`crate::consumer::HeatmapConsumer`] state.
pub const TAG_HEATMAP_CONSUMER: ConsumerTag = ConsumerTag {
    id: 6,
    name: "HeatmapConsumer",
};
/// [`crate::consumer::ClassUsageConsumer`] state.
pub const TAG_CLASS_USAGE_CONSUMER: ConsumerTag = ConsumerTag {
    id: 7,
    name: "ClassUsageConsumer",
};
/// [`crate::linkutil::AsHourly`] state.
pub const TAG_AS_HOURLY: ConsumerTag = ConsumerTag {
    id: 8,
    name: "AsHourly",
};
/// `lockdown-core`'s Fig. 10 VPN week consumer state.
pub const TAG_VPN_WEEK: ConsumerTag = ConsumerTag {
    id: 9,
    name: "VpnWeekConsumer",
};
/// `lockdown-core`'s §7 hourly-origins consumer state.
pub const TAG_HOURLY_ORIGINS: ConsumerTag = ConsumerTag {
    id: 10,
    name: "OriginsConsumer",
};
/// Default tag for consumers that never cross a process boundary (the
/// trait's default methods refuse to encode or decode).
pub const TAG_UNSUPPORTED: ConsumerTag = ConsumerTag {
    id: 0,
    name: "unsupported",
};

/// Name of a known tag byte (`"unknown"` otherwise) — makes mis-routed
/// frame errors attributable from both ends.
pub fn tag_name(id: u8) -> &'static str {
    [
        TAG_HOURLY_VOLUME,
        TAG_EDU_ANALYSIS,
        TAG_PORT_CONSUMER,
        TAG_HYPERGIANT_CONSUMER,
        TAG_AS_TOTALS_CONSUMER,
        TAG_HEATMAP_CONSUMER,
        TAG_CLASS_USAGE_CONSUMER,
        TAG_AS_HOURLY,
        TAG_VPN_WEEK,
        TAG_HOURLY_ORIGINS,
    ]
    .iter()
    .find(|t| t.id == id)
    .map(|t| t.name)
    .unwrap_or("unknown")
}

/// A failed state decode, attributed to the consumer the caller expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Name of the consumer whose state was being decoded.
    pub consumer: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "consumer state [{}]: {}", self.consumer, self.detail)
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected). Bitwise — state frames are
/// small, and a table buys nothing here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append a `u16`, big-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a `u32`, big-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a `u64`, big-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append an `i64`, big-endian two's complement.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a strict boolean byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Sequential reader over one frame's payload; every error it produces
/// names the expected consumer.
#[derive(Debug)]
pub struct StateReader<'a> {
    consumer: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `buf`, attributing errors to `consumer`.
    pub fn new(consumer: &'static str, buf: &'a [u8]) -> StateReader<'a> {
        StateReader {
            consumer,
            buf,
            pos: 0,
        }
    }

    /// Build an error attributed to this reader's consumer.
    pub fn error(&self, detail: impl Into<String>) -> CodecError {
        CodecError {
            consumer: self.consumer,
            detail: detail.into(),
        }
    }

    /// Unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.error(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a big-endian `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64, CodecError> {
        Ok(i64::from_be_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a strict boolean byte (anything but 0/1 is corruption).
    pub fn bool(&mut self, what: &str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.error(format!("bad boolean {what}: {other}"))),
        }
    }

    /// Read a `u64` length prefix, sanity-bounded by what the remaining
    /// bytes could possibly hold (`min_entry` bytes per entry).
    pub fn len(&mut self, what: &str, min_entry: usize) -> Result<usize, CodecError> {
        let n = self.u64(what)?;
        let cap = self.remaining() / min_entry.max(1);
        if n as usize > cap {
            return Err(self.error(format!(
                "implausible {what}: {n} entries in {} bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }
}

/// Serialize one consumer's state as a self-checking frame:
/// `version ‖ tag ‖ payload-length ‖ payload ‖ CRC-32`.
pub fn encode_frame<C: FlowConsumer + ?Sized>(consumer: &C) -> Vec<u8> {
    let tag = consumer.state_tag();
    let mut buf = Vec::with_capacity(64);
    put_u16(&mut buf, STATE_VERSION);
    buf.push(tag.id);
    let len_at = buf.len();
    put_u32(&mut buf, 0); // patched below
    consumer.encode_state(&mut buf);
    let payload_len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&payload_len.to_be_bytes());
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Decode a state frame and merge it into `consumer`. The frame must
/// carry `consumer`'s own tag — errors always name the consumer the
/// caller expected, which survives corruption of the frame's tag byte.
pub fn merge_frame<C: FlowConsumer + ?Sized>(
    consumer: &mut C,
    frame: &[u8],
) -> Result<(), CodecError> {
    let expected = consumer.state_tag();
    let err = |detail: String| CodecError {
        consumer: expected.name,
        detail,
    };
    if frame.len() < FRAME_OVERHEAD {
        return Err(err(format!(
            "frame is {} bytes, shorter than header + CRC",
            frame.len()
        )));
    }
    let crc_at = frame.len() - 4;
    let stored = u32::from_be_bytes(frame[crc_at..].try_into().expect("4 bytes"));
    let actual = crc32(&frame[..crc_at]);
    if stored != actual {
        return Err(err(format!(
            "state frame CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let version = u16::from_be_bytes(frame[0..2].try_into().expect("2 bytes"));
    if version != STATE_VERSION {
        return Err(err(format!(
            "unsupported state version {version} (expected {STATE_VERSION})"
        )));
    }
    let tag = frame[2];
    if tag != expected.id {
        return Err(err(format!(
            "frame carries {} state (tag {tag}), expected {} (tag {})",
            tag_name(tag),
            expected.name,
            expected.id
        )));
    }
    let payload_len = u32::from_be_bytes(frame[3..7].try_into().expect("4 bytes")) as usize;
    let payload = &frame[7..crc_at];
    if payload.len() != payload_len {
        return Err(err(format!(
            "payload length {} does not match header claim {payload_len}",
            payload.len()
        )));
    }
    let mut r = StateReader::new(expected.name, payload);
    consumer.merge_state(&mut r)?;
    if r.remaining() != 0 {
        return Err(err(format!(
            "{} trailing bytes after consumer state",
            r.remaining()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::HourlyVolume;
    use lockdown_flow::time::Date;

    #[test]
    fn crc_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips_and_any_flipped_byte_fails_named() {
        let mut v = HourlyVolume::new();
        v.add_bytes(Date::new(2020, 3, 25).at_hour(9), 1_234);
        v.add_bytes(Date::new(2020, 3, 26).at_hour(0), 7);
        let frame = encode_frame(&v);

        let mut back = HourlyVolume::new();
        merge_frame(&mut back, &frame).expect("clean frame decodes");
        assert_eq!(back.get(Date::new(2020, 3, 25), 9), 1_234);

        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let mut sink = HourlyVolume::new();
            let e =
                merge_frame(&mut sink, &bad).expect_err("one flipped byte must fail the decode");
            assert_eq!(e.consumer, "HourlyVolume", "flip at byte {i}: {e}");
        }
    }

    #[test]
    fn short_and_empty_frames_fail_named() {
        let mut sink = HourlyVolume::new();
        let e = merge_frame(&mut sink, &[]).unwrap_err();
        assert_eq!(e.consumer, "HourlyVolume");
        assert!(e.to_string().contains("HourlyVolume"), "{e}");
    }
}
