//! Two-method VPN traffic classification (§6, Fig. 10).
//!
//! Method 1 (port-based): the well-known VPN transport signatures —
//! IPsec (UDP/500, UDP/4500), OpenVPN (1194), L2TP (1701), PPTP (1723) on
//! both TCP and UDP, plus the ESP and GRE tunnelling protocols that carry
//! IPsec payloads (Appendix B's VPN class).
//!
//! Method 2 (domain-based): TCP/443 flows to addresses identified by the
//! `lockdown-dns` `*vpn*` procedure. The paper's finding — reproduced by
//! Fig. 10 — is that method 1 shows almost no change across the lockdown
//! while method 2 surfaces a >200% working-hours increase, because
//! enterprise SSL-VPN rides TCP/443 where port-based counting cannot see
//! it.

use lockdown_flow::protocol::IpProtocol;
use lockdown_flow::record::FlowRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Which §6 method identified a flow as VPN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VpnMethod {
    /// Well-known VPN port/protocol.
    Port,
    /// TCP/443 to a `*vpn*` domain's address.
    Domain,
}

/// VPN ports checked on both TCP and UDP (§6).
pub const VPN_PORTS: [u16; 5] = [500, 4_500, 1_194, 1_701, 1_723];

/// The §6 classifier.
#[derive(Debug, Clone, Default)]
pub struct VpnClassifier {
    vpn_ips: BTreeSet<Ipv4Addr>,
}

impl VpnClassifier {
    /// Build from the candidate VPN endpoint set produced by
    /// [`lockdown_dns::vpn::identify_vpn_ips`].
    pub fn new(vpn_ips: BTreeSet<Ipv4Addr>) -> VpnClassifier {
        VpnClassifier { vpn_ips }
    }

    /// Number of candidate endpoints.
    pub fn candidate_count(&self) -> usize {
        self.vpn_ips.len()
    }

    /// Classify one flow. Port-based identification wins when both apply
    /// (a VPN port to a VPN host is unambiguous anyway).
    pub fn classify(&self, record: &FlowRecord) -> Option<VpnMethod> {
        if is_port_vpn(record) {
            return Some(VpnMethod::Port);
        }
        if self.is_domain_vpn(record) {
            return Some(VpnMethod::Domain);
        }
        None
    }

    /// Method 2: TCP/443 with a known VPN endpoint on either side.
    pub fn is_domain_vpn(&self, record: &FlowRecord) -> bool {
        let https = record.key.protocol == IpProtocol::Tcp
            && (record.key.src_port == 443 || record.key.dst_port == 443);
        https
            && (self.vpn_ips.contains(&record.key.src_addr)
                || self.vpn_ips.contains(&record.key.dst_addr))
    }
}

/// Method 1: well-known VPN transport signature.
pub fn is_port_vpn(record: &FlowRecord) -> bool {
    match record.key.protocol {
        IpProtocol::Esp | IpProtocol::Gre => true,
        IpProtocol::Tcp | IpProtocol::Udp => {
            let lo = record.key.src_port.min(record.key.dst_port);
            VPN_PORTS.contains(&lo)
                || VPN_PORTS.contains(&record.key.src_port)
                || VPN_PORTS.contains(&record.key.dst_port)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::record::FlowKey;
    use lockdown_flow::time::Date;

    fn flow(proto: IpProtocol, sport: u16, dport: u16, src: [u8; 4], dst: [u8; 4]) -> FlowRecord {
        let t = Date::new(2020, 3, 25).at_hour(11);
        FlowRecord::builder(
            FlowKey {
                src_addr: src.into(),
                dst_addr: dst.into(),
                src_port: sport,
                dst_port: dport,
                protocol: proto,
            },
            t,
        )
        .end(t.add_secs(10))
        .bytes(1_000)
        .packets(5)
        .build()
    }

    const A: [u8; 4] = [192, 0, 2, 1];
    const B: [u8; 4] = [198, 51, 100, 2];
    const GW: [u8; 4] = [203, 0, 113, 9];

    fn classifier() -> VpnClassifier {
        VpnClassifier::new([Ipv4Addr::from(GW)].into_iter().collect())
    }

    #[test]
    fn port_method() {
        assert!(is_port_vpn(&flow(IpProtocol::Udp, 50_000, 4_500, A, B)));
        assert!(is_port_vpn(&flow(IpProtocol::Udp, 1_194, 40_000, A, B)));
        assert!(is_port_vpn(&flow(IpProtocol::Tcp, 1_723, 40_000, A, B)));
        assert!(is_port_vpn(&flow(IpProtocol::Esp, 0, 0, A, B)));
        assert!(is_port_vpn(&flow(IpProtocol::Gre, 0, 0, A, B)));
        assert!(!is_port_vpn(&flow(IpProtocol::Tcp, 443, 40_000, A, B)));
        assert!(!is_port_vpn(&flow(IpProtocol::Icmp, 0, 0, A, B)));
    }

    #[test]
    fn domain_method() {
        let c = classifier();
        // HTTPS to the gateway: domain-identified VPN.
        let f = flow(IpProtocol::Tcp, 50_000, 443, A, GW);
        assert_eq!(c.classify(&f), Some(VpnMethod::Domain));
        // Reverse direction too.
        let f = flow(IpProtocol::Tcp, 443, 50_000, GW, A);
        assert_eq!(c.classify(&f), Some(VpnMethod::Domain));
        // HTTPS to a non-VPN host: nothing.
        assert_eq!(c.classify(&flow(IpProtocol::Tcp, 443, 50_000, A, B)), None);
        // Non-HTTPS traffic to the gateway is not the §6 method's target.
        assert_eq!(c.classify(&flow(IpProtocol::Udp, 53, 50_000, A, GW)), None);
    }

    #[test]
    fn port_method_wins_ties() {
        let c = classifier();
        let f = flow(IpProtocol::Udp, 4_500, 50_000, GW, A);
        assert_eq!(c.classify(&f), Some(VpnMethod::Port));
    }

    #[test]
    fn counts() {
        assert_eq!(classifier().candidate_count(), 1);
        assert_eq!(VpnClassifier::default().candidate_count(), 0);
    }
}
