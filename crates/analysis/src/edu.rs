//! Educational-network analysis (§7, Figs. 11–12).
//!
//! Volume and directionality at the EDU border, plus the connection-level
//! per-class analysis. Directionality is *re-derived* the way the paper
//! does ("using the AS numbers of each end-point, interfaces, and port
//! pairs"), not read from generator state: a connection is oriented by
//! which endpoint owns a recognized service port and whether that endpoint
//! is inside the EDU network. Flows with no recognizable service port stay
//! undetermined — the paper reports 39% of flows in that state.

use crate::timeseries::HourlyVolume;
use lockdown_flow::protocol::IpProtocol;
use lockdown_flow::record::{Direction, FlowRecord};
use lockdown_flow::time::Date;
use lockdown_topology::registry::{EDU_ASN, SPOTIFY_ASN};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Connection orientation relative to the EDU network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Orientation {
    /// Established from outside toward a service inside EDU.
    Incoming,
    /// Established from inside EDU toward an external service.
    Outgoing,
    /// Cannot be determined (P2P-like, marginal protocols, unknown ports).
    Undetermined,
}

/// Appendix B's traffic classes for the EDU analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EduTrafficClass {
    /// TCP/80, TCP/443, UDP/443, TCP/8000, TCP/8080.
    Web,
    /// UDP/443.
    Quic,
    /// TCP/5223, TCP/5228.
    PushNotif,
    /// TCP/25, 110, 143, 465, 587, 993, 995.
    Email,
    /// UDP/500, ESP, GRE, TCP/UDP 1194, UDP/4500.
    Vpn,
    /// TCP/22.
    Ssh,
    /// TCP/UDP 1494, TCP/3389, TCP/UDP 5938.
    RemoteDesktop,
    /// TCP/4070 or AS8403.
    Spotify,
    /// Anything else.
    Other,
}

impl EduTrafficClass {
    /// All classes.
    pub const ALL: [EduTrafficClass; 9] = [
        EduTrafficClass::Web,
        EduTrafficClass::Quic,
        EduTrafficClass::PushNotif,
        EduTrafficClass::Email,
        EduTrafficClass::Vpn,
        EduTrafficClass::Ssh,
        EduTrafficClass::RemoteDesktop,
        EduTrafficClass::Spotify,
        EduTrafficClass::Other,
    ];

    /// Classify by Appendix B's port lists (plus Spotify's ASN).
    pub fn of(record: &FlowRecord) -> EduTrafficClass {
        use EduTrafficClass::*;
        if record.src_as == SPOTIFY_ASN.0 || record.dst_as == SPOTIFY_ASN.0 {
            return Spotify;
        }
        match record.key.protocol {
            IpProtocol::Esp | IpProtocol::Gre => return Vpn,
            _ => {}
        }
        let Some((proto, port)) = service_port(record) else {
            return Other;
        };
        let tcp = proto == IpProtocol::Tcp;
        let udp = proto == IpProtocol::Udp;
        match port {
            443 if udp => Quic,
            80 | 443 | 8_000 | 8_080 if tcp => Web,
            5_223 | 5_228 if tcp => PushNotif,
            25 | 110 | 143 | 465 | 587 | 993 | 995 if tcp => Email,
            500 | 4_500 if udp => Vpn,
            1_194 => Vpn,
            22 if tcp => Ssh,
            1_494 | 5_938 => RemoteDesktop,
            3_389 if tcp => RemoteDesktop,
            4_070 if tcp => Spotify,
            _ => Other,
        }
    }
}

/// The recognized service port of a flow, if any: the destination port if
/// it is a known service port, else the source port if it is. Mirrors the
/// "port pairs" part of the paper's directionality method.
fn service_port(record: &FlowRecord) -> Option<(IpProtocol, u16)> {
    let proto = record.key.protocol;
    if !proto.has_ports() {
        return None;
    }
    if is_known_service(proto, record.key.dst_port) {
        Some((proto, record.key.dst_port))
    } else if is_known_service(proto, record.key.src_port) {
        Some((proto, record.key.src_port))
    } else {
        None
    }
}

/// Appendix B's recognized service ports.
fn is_known_service(proto: IpProtocol, port: u16) -> bool {
    let tcp = proto == IpProtocol::Tcp;
    let udp = proto == IpProtocol::Udp;
    matches!(
        (tcp, udp, port),
        (true, _, 80 | 443 | 8_000 | 8_080)
            | (_, true, 443)
            | (true, _, 5_223 | 5_228)
            | (true, _, 25 | 110 | 143 | 465 | 587 | 993 | 995)
            | (_, true, 500 | 4_500)
            | (_, _, 1_194)
            | (true, _, 22)
            | (_, _, 1_494 | 5_938)
            | (true, _, 3_389)
            | (true, _, 4_070)
    )
}

/// Re-derive a connection's orientation (§7's method).
pub fn orientation(record: &FlowRecord) -> Orientation {
    // Tunnelling protocols carry no ports but are services by definition:
    // orient by which side is the EDU network.
    let edu_src = record.src_as == EDU_ASN.0;
    let edu_dst = record.dst_as == EDU_ASN.0;
    if !edu_src && !edu_dst {
        return Orientation::Undetermined;
    }
    match record.key.protocol {
        IpProtocol::Esp | IpProtocol::Gre => {
            return if edu_dst {
                Orientation::Incoming
            } else {
                Orientation::Outgoing
            };
        }
        _ => {}
    }
    // The service side is the endpoint holding a recognized service port.
    let dst_is_service = is_known_service(record.key.protocol, record.key.dst_port);
    let src_is_service = is_known_service(record.key.protocol, record.key.src_port);
    match (dst_is_service, src_is_service) {
        (true, _) => {
            if edu_dst {
                Orientation::Incoming
            } else {
                Orientation::Outgoing
            }
        }
        (false, true) => {
            // The flow is the server-to-client half; the connection was
            // made toward the source.
            if edu_src {
                Orientation::Incoming
            } else {
                Orientation::Outgoing
            }
        }
        (false, false) => Orientation::Undetermined,
    }
}

/// Streaming §7 connection-level accumulator: daily connection counts per
/// (traffic class, orientation), plus ingress/egress volume.
#[derive(Debug, Clone, Default)]
pub struct EduAnalysis {
    /// (date, class, orientation) → connections.
    connections: BTreeMap<(i64, EduTrafficClass, Orientation), u64>,
    /// Ingress volume (bytes) by hour.
    pub ingress: HourlyVolume,
    /// Egress volume (bytes) by hour.
    pub egress: HourlyVolume,
    /// Total flows seen.
    pub flows: u64,
    /// Flows with undetermined orientation.
    pub undetermined: u64,
}

impl EduAnalysis {
    /// An empty accumulator.
    pub fn new() -> EduAnalysis {
        EduAnalysis::default()
    }

    /// Add one border flow.
    pub fn add(&mut self, record: &FlowRecord) {
        self.flows += 1;
        let class = EduTrafficClass::of(record);
        let orient = orientation(record);
        if orient == Orientation::Undetermined {
            self.undetermined += 1;
        }
        let day = record.start.date().day_number();
        *self.connections.entry((day, class, orient)).or_insert(0) += 1;

        // Volume accounting uses the exporter's interface direction, as
        // NetFlow provides it (§7's volumetric analysis).
        match record.direction {
            Direction::Ingress => self.ingress.add(record),
            Direction::Egress => self.egress.add(record),
            Direction::Unknown => {}
        }
    }

    /// Add many flows.
    pub fn add_all<'a>(&mut self, records: impl IntoIterator<Item = &'a FlowRecord>) {
        for r in records {
            self.add(r);
        }
    }

    /// Merge another accumulator into this one (used by the engine's
    /// per-worker partial merge; all bins are additive).
    pub fn merge(&mut self, other: &EduAnalysis) {
        for (k, v) in &other.connections {
            *self.connections.entry(*k).or_insert(0) += v;
        }
        self.ingress.merge(&other.ingress);
        self.egress.merge(&other.egress);
        self.flows += other.flows;
        self.undetermined += other.undetermined;
    }

    /// Shard-codec payload: connection bins (class/orientation as indexes
    /// into their `ALL` arrays), both volume series, then the counters.
    pub(crate) fn encode_payload(&self, out: &mut Vec<u8>) {
        crate::codec::put_u64(out, self.connections.len() as u64);
        for ((day, class, orient), count) in &self.connections {
            crate::codec::put_i64(out, *day);
            out.push(class_index(*class));
            out.push(orientation_index(*orient));
            crate::codec::put_u64(out, *count);
        }
        self.ingress.encode_bins(out);
        self.egress.encode_bins(out);
        crate::codec::put_u64(out, self.flows);
        crate::codec::put_u64(out, self.undetermined);
    }

    /// Decode a shard-codec payload and merge it additively.
    pub(crate) fn merge_payload(
        &mut self,
        r: &mut crate::codec::StateReader<'_>,
    ) -> Result<(), crate::codec::CodecError> {
        let n = r.len("connection bins", 18)?;
        for _ in 0..n {
            let day = r.i64("day number")?;
            let class = r.u8("traffic class")?;
            let class = EduTrafficClass::ALL
                .get(class as usize)
                .copied()
                .ok_or_else(|| r.error(format!("unknown traffic class {class}")))?;
            let orient = r.u8("orientation")?;
            let orient = ORIENTATIONS
                .get(orient as usize)
                .copied()
                .ok_or_else(|| r.error(format!("unknown orientation {orient}")))?;
            let count = r.u64("connections")?;
            *self.connections.entry((day, class, orient)).or_insert(0) += count;
        }
        self.ingress.merge_bins(r)?;
        self.egress.merge_bins(r)?;
        self.flows += r.u64("flow count")?;
        self.undetermined += r.u64("undetermined count")?;
        Ok(())
    }

    /// Daily connections for (class, orientation).
    pub fn daily_connections(
        &self,
        date: Date,
        class: EduTrafficClass,
        orient: Orientation,
    ) -> u64 {
        self.connections
            .get(&(date.day_number(), class, orient))
            .copied()
            .unwrap_or(0)
    }

    /// Total daily connections by orientation (all classes).
    pub fn daily_by_orientation(&self, date: Date, orient: Orientation) -> u64 {
        EduTrafficClass::ALL
            .iter()
            .map(|&c| self.daily_connections(date, c, orient))
            .sum()
    }

    /// Fraction of flows whose orientation could not be determined
    /// (the paper: 39%).
    pub fn undetermined_fraction(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.undetermined as f64 / self.flows as f64
        }
    }

    /// Daily ingress/egress volume ratio (Fig. 11b). `None` when egress is
    /// zero.
    pub fn in_out_ratio(&self, date: Date) -> Option<f64> {
        let i = self.ingress.daily_total(date);
        let e = self.egress.daily_total(date);
        if e == 0 {
            None
        } else {
            Some(i as f64 / e as f64)
        }
    }

    /// Fig. 12's series: daily connections of (class, orientation)
    /// relative to the count on `base_date`, over an inclusive range.
    pub fn relative_growth(
        &self,
        class: EduTrafficClass,
        orient: Orientation,
        base_date: Date,
        start: Date,
        end: Date,
    ) -> Vec<(Date, f64)> {
        let base = self.daily_connections(base_date, class, orient).max(1) as f64;
        start
            .range_inclusive(end)
            .map(|d| (d, self.daily_connections(d, class, orient) as f64 / base))
            .collect()
    }

    /// Median daily connections for (class, orientation) over a window —
    /// §7 reports medians ("the median number of daily incoming web
    /// connections increases by over 77%").
    pub fn median_daily(
        &self,
        class: EduTrafficClass,
        orient: Orientation,
        start: Date,
        end: Date,
    ) -> f64 {
        let counts: Vec<f64> = start
            .range_inclusive(end)
            .map(|d| self.daily_connections(d, class, orient) as f64)
            .collect();
        crate::timeseries::median(&counts)
    }
}

/// Orientation wire order (shard codec).
pub(crate) const ORIENTATIONS: [Orientation; 3] = [
    Orientation::Incoming,
    Orientation::Outgoing,
    Orientation::Undetermined,
];

/// Shard-codec wire byte for a traffic class: index into
/// [`EduTrafficClass::ALL`].
pub(crate) fn class_index(class: EduTrafficClass) -> u8 {
    EduTrafficClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("every class is in ALL") as u8
}

/// Shard-codec wire byte for an orientation: index into [`ORIENTATIONS`].
pub(crate) fn orientation_index(orient: Orientation) -> u8 {
    ORIENTATIONS
        .iter()
        .position(|&o| o == orient)
        .expect("every orientation is listed") as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::TcpFlags;
    use lockdown_flow::record::FlowKey;
    use std::net::Ipv4Addr;

    const EDU_IP: Ipv4Addr = Ipv4Addr::new(11, 50, 0, 1);
    const EXT_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

    fn flow(
        proto: IpProtocol,
        sport: u16,
        dport: u16,
        src_edu: bool,
        direction: Direction,
    ) -> FlowRecord {
        let t = Date::new(2020, 3, 3).at_hour(10);
        let (src, dst, src_as, dst_as) = if src_edu {
            (EDU_IP, EXT_IP, EDU_ASN.0, 65_001)
        } else {
            (EXT_IP, EDU_IP, 65_001, EDU_ASN.0)
        };
        FlowRecord::builder(
            FlowKey {
                src_addr: src,
                dst_addr: dst,
                src_port: sport,
                dst_port: dport,
                protocol: proto,
            },
            t,
        )
        .end(t.add_secs(5))
        .bytes(1_000)
        .packets(4)
        .tcp_flags(TcpFlags::complete_connection())
        .asns(src_as, dst_as)
        .direction(direction)
        .build()
    }

    #[test]
    fn orientation_rules() {
        // External client → EDU web server: incoming.
        let f = flow(IpProtocol::Tcp, 50_000, 443, false, Direction::Ingress);
        assert_eq!(orientation(&f), Orientation::Incoming);
        // EDU client → external service: outgoing.
        let f = flow(IpProtocol::Tcp, 50_000, 443, true, Direction::Egress);
        assert_eq!(orientation(&f), Orientation::Outgoing);
        // Server-to-client half (service port on the source side).
        let f = flow(IpProtocol::Tcp, 443, 50_000, true, Direction::Egress);
        assert_eq!(orientation(&f), Orientation::Incoming);
        // High ports both sides: undetermined.
        let f = flow(IpProtocol::Udp, 40_000, 50_000, true, Direction::Unknown);
        assert_eq!(orientation(&f), Orientation::Undetermined);
        // ESP toward EDU: incoming VPN.
        let f = flow(IpProtocol::Esp, 0, 0, false, Direction::Ingress);
        assert_eq!(orientation(&f), Orientation::Incoming);
    }

    #[test]
    fn classes() {
        assert_eq!(
            EduTrafficClass::of(&flow(
                IpProtocol::Tcp,
                50_000,
                443,
                false,
                Direction::Ingress
            )),
            EduTrafficClass::Web
        );
        assert_eq!(
            EduTrafficClass::of(&flow(IpProtocol::Udp, 50_000, 443, true, Direction::Egress)),
            EduTrafficClass::Quic
        );
        assert_eq!(
            EduTrafficClass::of(&flow(
                IpProtocol::Udp,
                50_000,
                4_500,
                false,
                Direction::Ingress
            )),
            EduTrafficClass::Vpn
        );
        assert_eq!(
            EduTrafficClass::of(&flow(
                IpProtocol::Tcp,
                50_000,
                22,
                false,
                Direction::Ingress
            )),
            EduTrafficClass::Ssh
        );
        assert_eq!(
            EduTrafficClass::of(&flow(
                IpProtocol::Tcp,
                50_000,
                3_389,
                false,
                Direction::Ingress
            )),
            EduTrafficClass::RemoteDesktop
        );
        assert_eq!(
            EduTrafficClass::of(&flow(
                IpProtocol::Tcp,
                50_000,
                4_070,
                true,
                Direction::Egress
            )),
            EduTrafficClass::Spotify
        );
        assert_eq!(
            EduTrafficClass::of(&flow(
                IpProtocol::Udp,
                40_000,
                50_000,
                true,
                Direction::Unknown
            )),
            EduTrafficClass::Other
        );
    }

    #[test]
    fn spotify_by_asn() {
        let t = Date::new(2020, 3, 3).at_hour(10);
        let f = FlowRecord::builder(
            FlowKey {
                src_addr: EDU_IP,
                dst_addr: EXT_IP,
                src_port: 50_000,
                dst_port: 443,
                protocol: IpProtocol::Tcp,
            },
            t,
        )
        .end(t.add_secs(1))
        .bytes(1)
        .packets(1)
        .asns(EDU_ASN.0, SPOTIFY_ASN.0)
        .build();
        assert_eq!(EduTrafficClass::of(&f), EduTrafficClass::Spotify);
    }

    #[test]
    fn accumulator_counts_and_volume() {
        let mut a = EduAnalysis::new();
        let d = Date::new(2020, 3, 3);
        a.add(&flow(
            IpProtocol::Tcp,
            50_000,
            443,
            false,
            Direction::Ingress,
        ));
        a.add(&flow(
            IpProtocol::Tcp,
            50_000,
            443,
            false,
            Direction::Ingress,
        ));
        a.add(&flow(IpProtocol::Tcp, 50_000, 443, true, Direction::Egress));
        a.add(&flow(
            IpProtocol::Udp,
            40_000,
            50_000,
            true,
            Direction::Unknown,
        ));
        assert_eq!(
            a.daily_connections(d, EduTrafficClass::Web, Orientation::Incoming),
            2
        );
        assert_eq!(a.daily_by_orientation(d, Orientation::Outgoing), 1);
        assert_eq!(a.undetermined_fraction(), 0.25);
        assert_eq!(a.in_out_ratio(d), Some(2.0));
        assert_eq!(a.ingress.daily_total(d), 2_000);
    }

    #[test]
    fn growth_series_and_median() {
        let mut a = EduAnalysis::new();
        // 1 connection on Mar 3, 3 on Mar 4.
        a.add(&flow(
            IpProtocol::Tcp,
            50_000,
            22,
            false,
            Direction::Ingress,
        ));
        for _ in 0..3 {
            let mut f = flow(IpProtocol::Tcp, 50_000, 22, false, Direction::Ingress);
            f.start = Date::new(2020, 3, 4).at_hour(9);
            f.end = f.start.add_secs(2);
            a.add(&f);
        }
        let series = a.relative_growth(
            EduTrafficClass::Ssh,
            Orientation::Incoming,
            Date::new(2020, 3, 3),
            Date::new(2020, 3, 3),
            Date::new(2020, 3, 4),
        );
        assert_eq!(series[0].1, 1.0);
        assert_eq!(series[1].1, 3.0);
        let med = a.median_daily(
            EduTrafficClass::Ssh,
            Orientation::Incoming,
            Date::new(2020, 3, 3),
            Date::new(2020, 3, 4),
        );
        assert_eq!(med, 2.0);
    }

    #[test]
    fn ratio_none_without_egress() {
        let mut a = EduAnalysis::new();
        a.add(&flow(
            IpProtocol::Tcp,
            50_000,
            443,
            false,
            Direction::Ingress,
        ));
        assert_eq!(a.in_out_ratio(Date::new(2020, 3, 3)), None);
    }
}
