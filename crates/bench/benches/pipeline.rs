//! Pipeline-stage throughput: trace generation, classification, and
//! streaming aggregation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lockdown_analysis::appclass::Classifier;
use lockdown_analysis::ports::PortProfile;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_core::{Context, Fidelity};
use lockdown_flow::sampling::FlowSampler;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;

fn bench_pipeline(c: &mut Criterion) {
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    let date = Date::new(2020, 3, 25);

    // Generation throughput (flows/second).
    let sample = generator.generate_hour(VantagePoint::IxpCe, date, 20);
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(sample.len() as u64));
    g.bench_function("generate_hour_ixp_ce", |b| {
        b.iter(|| generator.generate_hour(VantagePoint::IxpCe, date, 20).len())
    });

    // Classification throughput over a fixed batch.
    let classifier = Classifier::from_registry(&ctx.registry);
    g.bench_function("classify_table1", |b| {
        b.iter(|| {
            sample
                .iter()
                .filter(|f| classifier.classify(f).is_some())
                .count()
        })
    });

    // Streaming aggregation throughput.
    g.bench_function("hourly_volume_aggregate", |b| {
        b.iter(|| {
            let mut v = HourlyVolume::new();
            v.add_all(&sample);
            v.len()
        })
    });
    g.bench_function("port_profile_aggregate", |b| {
        b.iter(|| {
            let mut p = PortProfile::new();
            p.add_all(&sample, VantagePoint::IxpCe.region());
            p.top_services(10, &[]).len()
        })
    });

    // Sampling throughput.
    let sampler = FlowSampler::new(16, 7);
    g.bench_function("flow_sampling_1in16", |b| {
        b.iter(|| sampler.sample_all(&sample).len())
    });

    // EDU generation throughput.
    let edu = ctx.edu_generator();
    let edu_sample = edu.generate_hour(Date::new(2020, 3, 17), 11);
    g.throughput(Throughput::Elements(edu_sample.len() as u64));
    g.bench_function("generate_hour_edu", |b| {
        b.iter(|| edu.generate_hour(Date::new(2020, 3, 17), 11).len())
    });
    g.finish();

    // Parallel sweep scaling: one week of IXP-CE, 1 vs N workers.
    let mut g = c.benchmark_group("parallel_sweep");
    g.sample_size(10);
    let start = Date::new(2020, 3, 18);
    let end = Date::new(2020, 3, 24);
    // Dedup: on small machines default_workers() may collide with the
    // fixed points, and Criterion requires unique bench IDs.
    let mut worker_counts = vec![1usize, 4, lockdown_traffic::parallel::default_workers()];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    for workers in worker_counts {
        g.bench_function(format!("week_workers_{workers}"), |b| {
            b.iter(|| {
                generator.fold_hours_parallel(
                    VantagePoint::IxpCe,
                    start,
                    end,
                    workers,
                    || 0u64,
                    |acc, _, _, flows| *acc += flows.len() as u64,
                    |a, b| a + b,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
