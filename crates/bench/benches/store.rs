//! Columnar store: spill vs. replay vs. plain generation.
//!
//! The store's claim in numbers: a warm replay (decode segments, zero
//! generation) must beat both the cold pass (generate + spill) and the
//! no-archive baseline (generate only) on the same plan — decoding
//! delta/varint columns is cheaper than regenerating flows. The
//! `warm_workers` benches show how segment decoding scales across the
//! engine's worker fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_core::engine::{self, EnginePlan};
use lockdown_core::{Context, Fidelity};
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::new(Fidelity::Standard))
}

/// One week of ISP-CE through the engine, optionally archived.
fn week_pass(archive: Option<&Path>, workers: usize) -> u64 {
    let mut plan = EnginePlan::new();
    if let Some(dir) = archive {
        plan.with_archive(dir);
    }
    let d = plan.subscribe(
        Stream::Vantage(VantagePoint::IspCe),
        Date::new(2020, 3, 16),
        Date::new(2020, 3, 22),
        HourlyVolume::new,
    );
    let mut out = engine::try_run_with_workers(ctx(), plan, workers).expect("pass");
    let stats = out.stats();
    let _ = out.take(d);
    stats.flows_emitted
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lockdown-bench-store-{tag}-{}", std::process::id()))
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    group.bench_function("baseline_generate", |b| b.iter(|| week_pass(None, 1)));

    let cold_dir = bench_dir("cold");
    group.bench_function("cold_spill", |b| {
        b.iter(|| {
            // Remove the manifest so every iteration is a true cold pass
            // (an intact manifest would flip the engine into replay).
            let _ = std::fs::remove_file(cold_dir.join("manifest.lks"));
            week_pass(Some(&cold_dir), 1)
        })
    });

    let warm_dir = bench_dir("warm");
    week_pass(Some(&warm_dir), 1); // pre-spill once
    group.bench_function("warm_replay", |b| b.iter(|| week_pass(Some(&warm_dir), 1)));

    for workers in [2usize, 4] {
        group.bench_function(format!("warm_replay_workers_{workers}"), |b| {
            b.iter(|| week_pass(Some(&warm_dir), workers))
        });
    }
    group.finish();

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
