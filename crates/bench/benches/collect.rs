//! The wire-mode collection plane in numbers.
//!
//! `suite` prices the whole measurement path: the in-process figure suite
//! vs. the same suite with every cell crossing export → transport →
//! collect (zero faults, so both compute identical figures). `ingest`
//! isolates the collector side — one pre-encoded day of datagrams pushed
//! through a [`ShardSet`] at varying shard counts, to show how routing
//! observation domains across shards scales ingest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lockdown_collect::{
    DomainTruth, ExporterFleet, FleetConfig, ShardSet, WireConfig, WireDatagram,
};
use lockdown_core::experiments::suite;
use lockdown_core::{Context, Fidelity};
use lockdown_flow::exporter::ExportFormat;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::new(Fidelity::Standard))
}

/// Pre-encoded day: datagrams, per-domain session ground truth for
/// closing shard sessions, and the ground-truth record count.
type WireDay = (Vec<WireDatagram>, Vec<DomainTruth>, u64);

/// One day of IXP-CE traffic exported by a 4-member fleet.
fn day_on_the_wire() -> &'static WireDay {
    static WIRE: OnceLock<WireDay> = OnceLock::new();
    WIRE.get_or_init(|| {
        let date = Date::new(2020, 3, 25);
        let flows = ctx().generator().generate_day(VantagePoint::IxpCe, date);
        let now = flows
            .iter()
            .map(|f| f.end)
            .max()
            .expect("day has flows")
            .add_secs(1);
        let mut fleet = ExporterFleet::new(
            FleetConfig {
                format: ExportFormat::Ipfix,
                exporters: 4,
                batch_size: 64,
                template_refresh: 8,
                restart_every: 0,
                initial_sequence: 0,
                boot_age_secs: 0,
                sampling: None,
            },
            1,
            date.midnight(),
        );
        let (dgs, truth) = fleet.export_cell(&flows, now);
        (dgs, truth.sessions, truth.sent_records)
    })
}

fn bench_collect(c: &mut Criterion) {
    let mut g = c.benchmark_group("collect");
    g.sample_size(10);

    // The price of the wire: same figures, with vs. without the plane.
    g.bench_function("suite_in_process", |b| b.iter(|| suite::run_all(ctx())));
    g.bench_function("suite_wire_zero_faults", |b| {
        b.iter(|| suite::run_all_with(ctx(), Some(WireConfig::new())))
    });

    // Ingest throughput vs. shard count on a fixed pre-encoded day.
    let (dgs, sessions, sent) = day_on_the_wire();
    g.throughput(Throughput::Elements(*sent));
    for shards in [1usize, 2, 4, 8] {
        g.bench_function(format!("ingest_shards_{shards}"), |b| {
            b.iter(|| {
                let mut set = ShardSet::new(shards, ExportFormat::Ipfix);
                for d in dgs {
                    set.ingest(d);
                }
                set.close(sessions, true);
                set.totals()
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_collect);
criterion_main!(benches);
