//! One-pass engine vs. per-figure regeneration.
//!
//! The tentpole claim in numbers: running the whole figure suite through
//! one shared [`lockdown_core::engine`] plan generates each overlapping
//! `(stream, date, hour)` cell exactly once, while the old per-figure path
//! regenerates it per driver. `one_pass_suite` vs `per_figure_suite` is
//! the direct comparison (same figures, same fidelity, same seed); the
//! `workers` benches show the engine's scaling on a fixed plan.

use criterion::{criterion_group, criterion_main, Criterion};
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_core::engine::{self, EnginePlan};
use lockdown_core::experiments::{
    fig1, fig10, fig11_12, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sec3_4, sec9, suite,
};
use lockdown_core::{Context, Fidelity};
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::new(Fidelity::Standard))
}

/// The old world: every driver runs standalone, regenerating its own
/// trace slices (each `run()` is its own engine pass, so shared windows
/// are produced once *per figure*).
fn per_figure_suite(ctx: &Context) {
    fig1::run(ctx);
    fig2::run_2a(ctx);
    fig2::run_2bc(ctx, VantagePoint::IspCe);
    fig2::run_2bc(ctx, VantagePoint::IxpCe);
    fig3::run_3a(ctx);
    fig3::run_3b(ctx);
    fig4::run(ctx);
    fig5::run(ctx);
    fig6::run(ctx);
    sec3_4::run(ctx);
    fig7::run(ctx, VantagePoint::IspCe);
    fig7::run(ctx, VantagePoint::IxpCe);
    fig8::run(ctx);
    for vp in VantagePoint::CORE_FOUR {
        fig9::run(ctx, vp);
    }
    fig10::run(ctx);
    fig11_12::run(ctx);
    sec9::run(ctx);
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    g.bench_function("one_pass_suite", |b| b.iter(|| suite::run_all(ctx())));
    g.bench_function("per_figure_suite", |b| b.iter(|| per_figure_suite(ctx())));

    // Worker scaling on one fixed month-long plan.
    for workers in [1usize, 2, 4, 8] {
        g.bench_function(format!("volume_month_{workers}w"), |b| {
            b.iter(|| {
                let mut plan = EnginePlan::new();
                let d = plan.subscribe(
                    Stream::Vantage(VantagePoint::IspCe),
                    Date::new(2020, 3, 1),
                    Date::new(2020, 3, 31),
                    HourlyVolume::new,
                );
                engine::run_with_workers(ctx(), plan, workers)
                    .expect("pass succeeds")
                    .take(d)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
