//! Supervised execution: what panic isolation costs when nothing fails.
//!
//! The supervisor's claim in numbers: wrapping every cell in
//! `catch_unwind` plus the chaos decision must be measurement-noise on a
//! clean pass (`supervised_zero_chaos` vs. `unsupervised`), and a pass
//! that retries its way through injected panics stays within its budget
//! (`chaos_retries` — backoff 0, so the cost shown is pure re-execution).

use criterion::{criterion_group, criterion_main, Criterion};
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_chaos::ChaosConfig;
use lockdown_core::engine::{self, EnginePlan};
use lockdown_core::{Context, Fidelity};
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::new(Fidelity::Standard))
}

/// One week of ISP-CE through the engine, optionally supervised.
fn week_pass(chaos: Option<ChaosConfig>, workers: usize) -> u64 {
    let mut plan = EnginePlan::new();
    if let Some(cfg) = chaos {
        plan.with_supervisor(cfg);
    }
    let d = plan.subscribe(
        Stream::Vantage(VantagePoint::IspCe),
        Date::new(2020, 3, 16),
        Date::new(2020, 3, 22),
        HourlyVolume::new,
    );
    let mut out = engine::run_with_workers(ctx(), plan, workers).expect("pass");
    let stats = out.stats();
    let _ = out.take(d);
    stats.flows_emitted
}

fn bench_supervisor(c: &mut Criterion) {
    let mut group = c.benchmark_group("supervisor");
    group.sample_size(10);

    group.bench_function("unsupervised", |b| b.iter(|| week_pass(None, 1)));

    group.bench_function("supervised_zero_chaos", |b| {
        b.iter(|| week_pass(Some(ChaosConfig::zero()), 1))
    });

    // ~30% of attempts panic; budget 3 keeps quarantine rare (~2.7% of
    // cells), so the bench shows retry cost, not missing work.
    let chaos = ChaosConfig {
        seed: 7,
        panic: 0.3,
        attempts: 3,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        ..ChaosConfig::zero()
    };
    group.bench_function("chaos_retries", |b| b.iter(|| week_pass(Some(chaos), 1)));

    for workers in [2usize, 4] {
        group.bench_function(format!("chaos_retries_workers_{workers}"), |b| {
            b.iter(|| week_pass(Some(chaos), workers))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_supervisor);
criterion_main!(benches);
