//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_lpm` — longest-prefix-match trie vs. linear prefix scan
//!   for IP→AS attribution;
//! * `ablation_dayclass_granularity` — the day classifier at 1/2/4/6/12-
//!   hour aggregation (the paper chose 6 h);
//! * `ablation_vpn_method` — port-only vs. domain-augmented VPN
//!   classification cost per flow.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lockdown_analysis::dayclass::DayClassifier;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_analysis::vpn::{is_port_vpn, VpnClassifier};
use lockdown_core::{Context, Fidelity};
use lockdown_flow::time::Date;
use lockdown_topology::asn::Region;
use lockdown_topology::prefix::LinearPrefixTable;
use lockdown_topology::vantage::VantagePoint;
use std::net::Ipv4Addr;

fn bench_lpm(c: &mut Criterion) {
    let ctx = Context::new(Fidelity::Test);
    let registry = &ctx.registry;
    // Mirror the registry's prefixes into a linear table.
    let mut linear = LinearPrefixTable::new();
    for a in registry.ases() {
        for p in registry.prefixes_of(a.asn) {
            linear.insert(*p, a.asn);
        }
    }
    // A lookup workload: addresses spread over the allocated space.
    let addrs: Vec<Ipv4Addr> = (0..10_000u32)
        .map(|i| Ipv4Addr::from(0x0B00_0000 + i.wrapping_mul(40_503) % 0x0200_0000))
        .collect();

    let mut g = c.benchmark_group("ablation_lpm");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("trie", |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter(|a| registry.lookup(**a).is_some())
                .count()
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter(|a| linear.lookup(**a).is_some())
                .count()
        })
    });
    g.finish();
}

fn bench_dayclass(c: &mut Criterion) {
    let ctx = Context::new(Fidelity::Test);
    let generator = ctx.generator();
    let mut volume = HourlyVolume::new();
    generator.for_each_hour(
        VantagePoint::IspCe,
        Date::new(2020, 2, 1),
        Date::new(2020, 4, 30),
        |_, _, flows| volume.add_all(flows),
    );

    let mut g = c.benchmark_group("ablation_dayclass_granularity");
    for buckets in [2usize, 4, 6, 12, 24] {
        // Report classification *quality* alongside cost: accuracy on the
        // pre-lockdown window, where calendar truth is meaningful.
        let clf = DayClassifier::train(
            &volume,
            Region::CentralEurope,
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 29),
            buckets,
        );
        let days = clf.classify_range(&volume, Date::new(2020, 2, 1), Date::new(2020, 2, 29));
        let acc = lockdown_analysis::dayclass::ClassificationSummary::of(&days).accuracy();
        println!("dayclass buckets={buckets}: February accuracy {acc:.3}");

        g.bench_function(format!("buckets_{buckets}"), |b| {
            b.iter(|| {
                let clf = DayClassifier::train(
                    &volume,
                    Region::CentralEurope,
                    Date::new(2020, 2, 1),
                    Date::new(2020, 2, 29),
                    buckets,
                );
                clf.classify_range(&volume, Date::new(2020, 3, 1), Date::new(2020, 4, 30))
                    .len()
            })
        });
    }
    g.finish();
}

fn bench_vpn_method(c: &mut Criterion) {
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    let flows = generator.generate_day(VantagePoint::IxpCe, Date::new(2020, 3, 25));
    let domain = VpnClassifier::new(ctx.vpn_candidate_ips());

    // Coverage comparison (the §6 claim) printed once.
    let port_hits = flows.iter().filter(|f| is_port_vpn(f)).count();
    let both_hits = flows
        .iter()
        .filter(|f| domain.classify(f).is_some())
        .count();
    println!(
        "vpn_method coverage on a lockdown day: port-only {port_hits} flows, \
         port+domain {both_hits} flows ({:.1}% found only via domains)",
        (both_hits - port_hits) as f64 / both_hits.max(1) as f64 * 100.0
    );

    let mut g = c.benchmark_group("ablation_vpn_method");
    g.throughput(Throughput::Elements(flows.len() as u64));
    g.bench_function("port_only", |b| {
        b.iter(|| flows.iter().filter(|f| is_port_vpn(f)).count())
    });
    g.bench_function("port_plus_domain", |b| {
        b.iter(|| {
            flows
                .iter()
                .filter(|f| domain.classify(f).is_some())
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lpm, bench_dayclass, bench_vpn_method);
criterion_main!(benches);
