//! One Criterion bench per paper figure/table: each benchmark runs the
//! full experiment driver (generation + analysis) at test fidelity and, as
//! a side effect of the first iteration, prints the rendered result — so
//! `cargo bench` both times and regenerates the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use lockdown_core::experiments::{
    fig1, fig10, fig11_12, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, tables,
};
use lockdown_core::{Context, Fidelity};
use lockdown_topology::vantage::VantagePoint;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::new(Fidelity::Test))
}

/// Print a rendering once per process so bench output doubles as the
/// regenerated evaluation.
fn show(name: &str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static SHOWN: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let mut guard = SHOWN.lock().expect("not poisoned");
    let shown = guard.get_or_insert_with(HashSet::new);
    if shown.insert(name.to_string()) {
        println!("\n{}\n", render());
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_weekly_volume", |b| {
        show("fig1", || fig1::run(ctx()).render());
        b.iter(|| fig1::run(ctx()))
    });
    g.bench_function("fig2_patterns", |b| {
        show("fig2a", || fig2::run_2a(ctx()).render());
        show("fig2b", || {
            fig2::run_2bc(ctx(), VantagePoint::IspCe).render()
        });
        b.iter(|| {
            (
                fig2::run_2a(ctx()),
                fig2::run_2bc(ctx(), VantagePoint::IspCe),
            )
        })
    });
    g.bench_function("fig3_weeks", |b| {
        show("fig3a", || fig3::run_3a(ctx()).render());
        show("fig3b", || fig3::run_3b(ctx()).render());
        b.iter(|| (fig3::run_3a(ctx()), fig3::run_3b(ctx())))
    });
    g.bench_function("fig4_hypergiants", |b| {
        show("fig4", || fig4::run(ctx()).render());
        b.iter(|| fig4::run(ctx()))
    });
    g.bench_function("fig5_ecdf", |b| {
        show("fig5", || fig5::run(ctx()).render());
        b.iter(|| fig5::run(ctx()))
    });
    g.bench_function("fig6_shift", |b| {
        show("fig6", || fig6::run(ctx()).render());
        b.iter(|| fig6::run(ctx()))
    });
    g.bench_function("fig7_ports", |b| {
        show("fig7a", || fig7::run(ctx(), VantagePoint::IspCe).render());
        show("fig7b", || fig7::run(ctx(), VantagePoint::IxpCe).render());
        b.iter(|| fig7::run(ctx(), VantagePoint::IspCe))
    });
    g.bench_function("fig8_gaming", |b| {
        show("fig8", || fig8::run(ctx()).render());
        b.iter(|| fig8::run(ctx()))
    });
    g.bench_function("fig9_heatmap", |b| {
        show("fig9_isp", || {
            fig9::run(ctx(), VantagePoint::IspCe).render()
        });
        show("fig9_ixpce", || {
            fig9::run(ctx(), VantagePoint::IxpCe).render()
        });
        b.iter(|| fig9::run(ctx(), VantagePoint::IxpCe))
    });
    g.bench_function("fig10_vpn", |b| {
        show("fig10", || fig10::run(ctx()).render());
        b.iter(|| fig10::run(ctx()))
    });
    g.bench_function("fig11_12_edu", |b| {
        show("fig11_12", || fig11_12::run(ctx()).render());
        b.iter(|| fig11_12::run(ctx()))
    });
    g.bench_function("table1_filters", |b| {
        show("table1", || tables::table1(ctx()).render());
        show("table2", tables::table2);
        b.iter(|| tables::table1(ctx()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
