//! Wire-codec throughput: NetFlow v5 vs v9 vs IPFIX, encode and decode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lockdown_core::{Context, Fidelity};
use lockdown_flow::ipfix;
use lockdown_flow::netflow::v9::TemplateCache;
use lockdown_flow::netflow::{v5, v9, Template};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;

fn sample_records(n: usize) -> Vec<FlowRecord> {
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    let date = Date::new(2020, 3, 25);
    let mut flows = Vec::new();
    let mut hour = 0u8;
    while flows.len() < n {
        flows.extend(generator.generate_hour(VantagePoint::IxpCe, date, hour % 24));
        hour += 1;
    }
    flows.truncate(n);
    // v5-compatible timestamps: clamp flow times under the export time.
    let export = date.at_hour(23);
    for f in &mut flows {
        if f.end > export {
            f.end = export;
        }
        if f.start > f.end {
            f.start = f.end;
        }
    }
    flows
}

fn bench_codecs(c: &mut Criterion) {
    const N: usize = 3_000;
    let records = sample_records(N);
    let date = Date::new(2020, 3, 25);
    let boot = date.midnight();
    let export = date.at_hour(23);

    let mut g = c.benchmark_group("codec_throughput");
    g.throughput(Throughput::Elements(N as u64));

    // --- encode ---
    g.bench_function("encode/netflow_v5", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for chunk in records.chunks(v5::MAX_RECORDS) {
                out += v5::encode(chunk, export, boot, 0).len();
            }
            out
        })
    });
    let t9 = Template::standard_v9(300);
    g.bench_function("encode/netflow_v9", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for chunk in records.chunks(100) {
                out += v9::encode(chunk, Some(&t9), &t9, export, boot, 0, 1).len();
            }
            out
        })
    });
    let ti = Template::standard_ipfix(300);
    g.bench_function("encode/ipfix", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for chunk in records.chunks(100) {
                out += ipfix::encode(chunk, Some(&ti), &ti, export, 0, 1).len();
            }
            out
        })
    });

    // --- decode ---
    let v5_pkts: Vec<Vec<u8>> = records
        .chunks(v5::MAX_RECORDS)
        .map(|c| v5::encode(c, export, boot, 0))
        .collect();
    g.bench_function("decode/netflow_v5", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &v5_pkts {
                n += v5::decode(p).expect("valid").1.len();
            }
            n
        })
    });
    let v9_pkts: Vec<Vec<u8>> = records
        .chunks(100)
        .map(|c| v9::encode(c, Some(&t9), &t9, export, boot, 0, 1))
        .collect();
    g.bench_function("decode/netflow_v9", |b| {
        b.iter_batched(
            TemplateCache::new,
            |mut cache| {
                let mut n = 0usize;
                for p in &v9_pkts {
                    n += v9::decode(p, &mut cache).expect("valid").1.len();
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    let ipfix_pkts: Vec<Vec<u8>> = records
        .chunks(100)
        .map(|c| ipfix::encode(c, Some(&ti), &ti, export, 0, 1))
        .collect();
    g.bench_function("decode/ipfix", |b| {
        b.iter_batched(
            TemplateCache::new,
            |mut cache| {
                let mut n = 0usize;
                for p in &ipfix_pkts {
                    n += ipfix::decode(p, &mut cache).expect("valid").1.len();
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
