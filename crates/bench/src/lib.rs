//! # lockdown-bench
//!
//! Bench-only crate. The Criterion targets under `benches/` regenerate
//! every paper figure/table (`figures`), measure the wire codecs
//! (`codecs`), the pipeline stages (`pipeline`), and the design-choice
//! ablations DESIGN.md lists (`ablations`). Run with
//! `cargo bench -p lockdown-bench`.
