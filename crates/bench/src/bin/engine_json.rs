//! Emit machine-readable engine numbers as JSON (hand-formatted — no
//! serialization dependency): single-pass generation throughput, and the
//! wall-clock speedup of a 2-scenario matrix sweep over running the
//! suite twice sequentially. `scripts/verify.sh` writes the output to
//! `BENCH_engine.json` at the repo root.
//!
//! Usage: `cargo run --release -p lockdown-bench --bin engine_json
//! [--fidelity test|standard]` (prints to stdout).

use lockdown_core::experiments::suite;
use lockdown_core::{run_matrix, Context, Fidelity, MatrixOptions, MatrixScenario};
use lockdown_scenario::measures::ScenarioSpec;
use std::time::Instant;

fn main() {
    let fidelity = match std::env::args().nth(2).as_deref() {
        Some("standard") => Fidelity::Standard,
        _ => Fidelity::Test,
    };
    let fidelity_name = match fidelity {
        Fidelity::Test => "test",
        Fidelity::Standard => "standard",
        Fidelity::High => "high",
    };
    let variant = || {
        let mut s = ScenarioSpec::covid_spring_2020();
        s.baseline.organic_weekly = 1.004;
        s
    };

    // Warm-up pass (page-in and allocator effects should not land on the
    // timings).
    let _ = suite::run_all(&Context::new(fidelity));

    let t = Instant::now();
    let ctx = Context::new(fidelity);
    let single = suite::run_all(&ctx);
    let single_secs = t.elapsed().as_secs_f64();
    drop(ctx);

    // Sequential baseline: what `lockdown figures --scenario FILE` twice
    // costs — each run pays context synthesis, planning and its own pass.
    let t = Instant::now();
    for spec in [ScenarioSpec::covid_spring_2020(), variant()] {
        let ctx = Context::with_scenario(fidelity, 0x10CD_2020, spec);
        let _ = suite::run_all(&ctx);
    }
    let sequential_secs = t.elapsed().as_secs_f64();

    // Matrix: one context, one shared enumeration, per-scenario lanes.
    let t = Instant::now();
    let ctx = Context::new(fidelity);
    let matrix = run_matrix(
        &ctx,
        vec![
            MatrixScenario {
                label: "covid-spring-2020".into(),
                spec: ScenarioSpec::covid_spring_2020(),
            },
            MatrixScenario {
                label: "variant".into(),
                spec: variant(),
            },
        ],
        MatrixOptions::default(),
    )
    .expect("archive-free matrix cannot fail");
    let matrix_secs = t.elapsed().as_secs_f64();

    let stats = single.stats;
    let flows_per_sec = stats.flows_emitted as f64 / single_secs.max(1e-9);
    let speedup = sequential_secs / matrix_secs.max(1e-9);
    println!("{{");
    println!("  \"fidelity\": \"{fidelity_name}\",");
    println!("  \"workers\": {},", stats.workers);
    println!("  \"cells_generated\": {},", stats.cells_generated);
    println!("  \"flows_emitted\": {},", stats.flows_emitted);
    println!("  \"single_pass_secs\": {single_secs:.4},");
    println!("  \"flows_per_sec\": {flows_per_sec:.0},");
    println!("  \"sequential_2x_secs\": {sequential_secs:.4},");
    println!("  \"matrix_2x_secs\": {matrix_secs:.4},");
    println!(
        "  \"matrix_cells_generated\": {},",
        matrix.stats.cells_generated
    );
    println!("  \"matrix_speedup_vs_sequential\": {speedup:.3}");
    println!("}}");
}
