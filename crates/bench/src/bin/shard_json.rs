//! Emit machine-readable shard-plane numbers as JSON (hand-formatted —
//! no serialization dependency): coordinated wall clock at 1, 2 and 4
//! workers against the single-process baseline, plus the cost of one
//! seeded worker-kill reassignment. `scripts/verify.sh` writes the
//! output to `BENCH_shard.json` at the repo root.
//!
//! Workers here are protocol-serving threads on loopback listeners (the
//! same topology the shard integration tests use), so the numbers
//! isolate the shard layer itself — framing, state streaming, merge —
//! from process spawn cost. Every pass is cold (no archive) and every
//! worker's engine uses the machine's full core budget, so wall clock
//! does not *drop* with more workers on a saturated machine; the
//! interesting numbers are the coordination overhead vs the baseline
//! and the reassignment penalty under chaos.
//!
//! Usage: `cargo run --release -p lockdown-bench --bin shard_json
//! [--fidelity test|standard]` (prints to stdout).

use lockdown_chaos::{ChaosConfig, ChaosInjector};
use lockdown_core::experiments::suite::{self, suite_shard_cell_count};
use lockdown_core::{Context, Fidelity};
use lockdown_shard::coord::{self, chunk_ranges, CoordOptions};
use lockdown_shard::worker::serve_worker;
use std::net::TcpListener;
use std::time::Instant;

/// One coordinated pass over `n` protocol-thread workers; returns the
/// wall clock and the coordinator stats.
fn coordinated_pass(fidelity: Fidelity, opts: &CoordOptions, n: usize) -> (f64, coord::CoordStats) {
    let mut addrs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("bound").to_string());
        let sopts = opts.suite.clone();
        handles.push(std::thread::spawn(move || {
            serve_worker(&Context::new(fidelity), &sopts, listener).expect("worker protocol")
        }));
    }
    let t = Instant::now();
    let links = coord::attach_workers(&addrs).expect("attach");
    let out = coord::coordinate(&Context::new(fidelity), opts, links).expect("coordinate");
    let secs = t.elapsed().as_secs_f64();
    for h in handles {
        let _ = h.join();
    }
    (secs, out.stats)
}

/// A chaos seed that kills at least one first attempt on this plan's
/// ranges and lets every retry through — pure reassignment cost.
fn reassignment_seed(cells: usize, workers: usize, cpw: usize) -> ChaosConfig {
    let ranges = chunk_ranges(cells, workers, cpw);
    for seed in 0..10_000 {
        let mut cfg = ChaosConfig::zero();
        cfg.seed = seed;
        cfg.wkill = 0.2;
        let injector = ChaosInjector::new(cfg);
        let mut kills = 0;
        let mut trouble = false;
        for &(s, e) in &ranges {
            let a0 = injector.decide_worker(s, e, 0);
            if a0.kill {
                kills += 1;
                let a1 = injector.decide_worker(s, e, 1);
                trouble |= a1.kill || a1.stall;
            }
        }
        if kills >= 1 && kills < workers && !trouble {
            return cfg;
        }
    }
    panic!("no survivable-kill seed in range");
}

fn main() {
    let fidelity = match std::env::args().nth(2).as_deref() {
        Some("standard") => Fidelity::Standard,
        _ => Fidelity::Test,
    };
    let fidelity_name = match fidelity {
        Fidelity::Test => "test",
        Fidelity::Standard => "standard",
        Fidelity::High => "high",
    };
    let opts = CoordOptions::default();
    let cells = suite_shard_cell_count(&Context::new(fidelity), &opts.suite);

    // Warm-up pass, then the single-process baseline.
    let _ = suite::run_all(&Context::new(fidelity));
    let t = Instant::now();
    let single = suite::run_all(&Context::new(fidelity));
    let single_secs = t.elapsed().as_secs_f64();

    let mut pass_secs = [0.0f64; 3];
    for (slot, workers) in [1usize, 2, 4].iter().enumerate() {
        let (secs, stats) = coordinated_pass(fidelity, &opts, *workers);
        assert_eq!(stats.quarantined_ranges, 0, "clean pass");
        pass_secs[slot] = secs;
    }
    let [t1, t2, t4] = pass_secs;

    // Reassignment cost: same 2-worker pass, one seeded first-attempt
    // kill, every retry clean — the delta is protocol + rerun overhead.
    let mut chaos_opts = CoordOptions::default();
    chaos_opts.suite.chaos = Some(reassignment_seed(cells, 2, opts.chunks_per_worker));
    let (tkill, kill_stats) = coordinated_pass(fidelity, &chaos_opts, 2);
    assert!(
        kill_stats.reassignments >= 1,
        "seed must force reassignment"
    );
    assert_eq!(kill_stats.quarantined_ranges, 0, "survivable seed");

    println!("{{");
    println!("  \"fidelity\": \"{fidelity_name}\",");
    println!("  \"cells\": {cells},");
    println!("  \"flows_emitted\": {},", single.stats.flows_emitted);
    println!("  \"single_process_secs\": {single_secs:.4},");
    println!("  \"workers_1_secs\": {t1:.4},");
    println!("  \"workers_2_secs\": {t2:.4},");
    println!("  \"workers_4_secs\": {t4:.4},");
    println!(
        "  \"coordination_overhead_1w\": {:.3},",
        t1 / single_secs.max(1e-9)
    );
    println!("  \"speedup_2w_vs_1w\": {:.3},", t1 / t2.max(1e-9));
    println!("  \"speedup_4w_vs_1w\": {:.3},", t1 / t4.max(1e-9));
    println!(
        "  \"scaling_efficiency_4w\": {:.3},",
        t1 / (4.0 * t4.max(1e-9))
    );
    println!("  \"reassignments\": {},", kill_stats.reassignments);
    println!("  \"reassigned_2w_secs\": {tkill:.4},");
    println!(
        "  \"reassignment_overhead_secs\": {:.4}",
        (tkill - t2).max(0.0)
    );
    println!("}}");
}
