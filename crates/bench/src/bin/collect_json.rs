//! Emit machine-readable socket-plane soak numbers as JSON (hand-formatted
//! — no serialization dependency): flow records pushed through the
//! real-UDP `collectd` daemon end-to-end (export encode → localhost UDP →
//! receiver fan-out → shard decode → session close), with the conservation
//! audit verdict and the drop decomposition. `scripts/verify.sh` writes
//! the output to `BENCH_collect.json` at the repo root.
//!
//! Usage: `cargo run --release -p lockdown-bench --bin collect_json
//! [records_per_cell [cells]]` (prints to stdout).

use lockdown_collect::soak::{run, SoakConfig};

fn main() {
    let mut cfg = SoakConfig::new();
    let mut args = std::env::args().skip(1);
    if let Some(n) = args.next().and_then(|a| a.parse().ok()) {
        cfg.records_per_cell = n;
    }
    if let Some(c) = args.next().and_then(|a| a.parse().ok()) {
        cfg.cells = c;
    }

    // Warm-up cell: page-in, socket setup and allocator effects should
    // not land on the timed run.
    let mut warm = cfg;
    warm.cells = 1;
    warm.records_per_cell = cfg.records_per_cell.min(50_000);
    run(&warm).expect("soak warm-up binds on localhost");

    let out = run(&cfg).expect("soak binds on localhost");
    println!("{}", out.render_json());
}
