//! Emit machine-readable columnar-store numbers as JSON (hand-formatted
//! — no serialization dependency): the cold path (generate + encode +
//! spill every suite cell) against the warm path (decode + replay the
//! same cells from the manifest), each as wall-clock, bytes/sec and
//! segments/sec. `scripts/verify.sh` writes the output to
//! `BENCH_store.json` at the repo root.
//!
//! Usage: `cargo run --release -p lockdown-bench --bin store_json
//! [--fidelity test|standard]` (prints to stdout).

use lockdown_core::experiments::suite;
use lockdown_core::{Context, Fidelity};
use std::time::Instant;

fn main() {
    let fidelity = match std::env::args().nth(2).as_deref() {
        Some("standard") => Fidelity::Standard,
        _ => Fidelity::Test,
    };
    let fidelity_name = match fidelity {
        Fidelity::Test => "test",
        Fidelity::Standard => "standard",
        Fidelity::High => "high",
    };
    let dir = std::env::temp_dir().join(format!("lockdown-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || suite::SuiteOptions {
        wire: None,
        archive: Some(dir.clone()),
        chaos: None,
    };

    // Warm-up pass without the archive (page-in and allocator effects
    // should not land on the cold timing).
    let _ = suite::run_all(&Context::new(fidelity));

    // Cold: no covering manifest, so every cell is generated, encoded
    // and spilled as a segment.
    let t = Instant::now();
    let ctx = Context::new(fidelity);
    let cold = suite::run_all_opts(&ctx, opts()).expect("cold archived pass");
    let cold_secs = t.elapsed().as_secs_f64();
    let cold_store = cold.store_metrics.as_ref().expect("archived pass metrics");
    let segments_written = cold_store.segments_written.get();
    let bytes_written = cold_store.bytes_written.get();
    let records_written = cold_store.records_written.get();

    // Warm: the manifest now covers the plan, so the same pass decodes
    // and replays — zero generation.
    let t = Instant::now();
    let warm = suite::run_all_opts(&ctx, opts()).expect("warm archived pass");
    let warm_secs = t.elapsed().as_secs_f64();
    let warm_store = warm.store_metrics.as_ref().expect("archived pass metrics");
    let segments_read = warm_store.segments_read.get();
    let bytes_read = warm_store.bytes_read.get();
    let records_read = warm_store.records_read.get();
    assert_eq!(
        warm.stats.cells_generated, 0,
        "warm pass must replay, not regenerate"
    );

    let _ = std::fs::remove_dir_all(&dir);

    println!("{{");
    println!("  \"fidelity\": \"{fidelity_name}\",");
    println!("  \"cold_spill_secs\": {cold_secs:.4},");
    println!("  \"cold_segments_written\": {segments_written},");
    println!("  \"cold_bytes_written\": {bytes_written},");
    println!("  \"cold_records_written\": {records_written},");
    println!(
        "  \"cold_write_bytes_per_sec\": {:.0},",
        bytes_written as f64 / cold_secs.max(1e-9)
    );
    println!(
        "  \"cold_segments_per_sec\": {:.1},",
        segments_written as f64 / cold_secs.max(1e-9)
    );
    println!("  \"warm_replay_secs\": {warm_secs:.4},");
    println!("  \"warm_segments_read\": {segments_read},");
    println!("  \"warm_bytes_read\": {bytes_read},");
    println!("  \"warm_records_read\": {records_read},");
    println!(
        "  \"warm_read_bytes_per_sec\": {:.0},",
        bytes_read as f64 / warm_secs.max(1e-9)
    );
    println!(
        "  \"warm_segments_per_sec\": {:.1},",
        segments_read as f64 / warm_secs.max(1e-9)
    );
    println!(
        "  \"warm_speedup_vs_cold\": {:.3}",
        cold_secs / warm_secs.max(1e-9)
    );
    println!("}}");
}
