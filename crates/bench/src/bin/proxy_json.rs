//! Emit machine-readable wire-chaos proxy overhead numbers as JSON
//! (hand-formatted — no serialization dependency). Two measurements:
//!
//! 1. **Bulk relay throughput**: MiB/s streaming a fixed byte volume
//!    over loopback TCP, direct vs through a zero-chaos `TcpProxy`.
//!    Isolates the interposer's copy-loop cost from any protocol.
//! 2. **Shard-plane coordination**: a 2-worker coordinated suite pass,
//!    direct vs with every coordinator↔worker link routed through a
//!    zero-chaos proxy. The headline robustness-tax number: what the
//!    hardened protocol pays for an extra user-space hop.
//!
//! `scripts/verify.sh` writes the output to `BENCH_proxy.json` at the
//! repo root. Usage: `cargo run --release -p lockdown-bench --bin
//! proxy_json [--fidelity test|standard]` (prints to stdout).

use lockdown_core::experiments::suite;
use lockdown_core::{Context, Fidelity};
use lockdown_shard::coord::{self, CoordOptions};
use lockdown_shard::worker::serve_worker;
use lockdown_wirechaos::{TcpProxy, WireChaosConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

/// Bytes streamed per bulk-relay pass. Large enough that steady-state
/// copy cost dominates connection setup.
const BULK_BYTES: usize = 64 * 1024 * 1024;

/// Write chunk for the bulk sender; matches the proxy's own copy size
/// order of magnitude so neither side artificially fragments.
const CHUNK: usize = 64 * 1024;

/// Stream `BULK_BYTES` to a discarding sink at `addr`; returns MiB/s.
fn bulk_pass(addr: &str) -> f64 {
    let mut tx = TcpStream::connect(addr).expect("connect sink");
    tx.set_nodelay(true).expect("nodelay");
    let chunk = vec![0x5au8; CHUNK];
    let t = Instant::now();
    let mut sent = 0usize;
    while sent < BULK_BYTES {
        let n = CHUNK.min(BULK_BYTES - sent);
        tx.write_all(&chunk[..n]).expect("bulk write");
        sent += n;
    }
    // Half-close, then wait for the sink to acknowledge the full count
    // back — the clock stops only once every byte went through.
    tx.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut ack = [0u8; 8];
    tx.read_exact(&mut ack).expect("sink ack");
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(u64::from_be_bytes(ack), BULK_BYTES as u64, "sink count");
    (BULK_BYTES as f64 / (1024.0 * 1024.0)) / secs.max(1e-9)
}

/// A sink that drains one connection per call forever, replying with
/// the byte count it saw.
fn spawn_sink() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
    let addr = listener.local_addr().expect("sink addr").to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { break };
            let mut buf = vec![0u8; CHUNK];
            let mut total = 0u64;
            loop {
                match conn.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => total += n as u64,
                    Err(_) => break,
                }
            }
            let _ = conn.write_all(&total.to_be_bytes());
        }
    });
    addr
}

/// One coordinated pass over `n` protocol-thread workers, optionally
/// with a zero-chaos proxy on every link; returns wall-clock seconds.
fn coordinated_pass(fidelity: Fidelity, opts: &CoordOptions, n: usize, proxied: bool) -> f64 {
    let mut addrs = Vec::with_capacity(n);
    let mut proxies = Vec::new();
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let upstream = listener.local_addr().expect("bound");
        let sopts = opts.suite.clone();
        handles.push(std::thread::spawn(move || {
            serve_worker(&Context::new(fidelity), &sopts, listener).expect("worker protocol")
        }));
        if proxied {
            let proxy = TcpProxy::start("127.0.0.1:0", upstream, WireChaosConfig::zero())
                .expect("start proxy");
            addrs.push(proxy.addr().to_string());
            proxies.push(proxy);
        } else {
            addrs.push(upstream.to_string());
        }
    }
    let t = Instant::now();
    let links = coord::attach_workers(&addrs).expect("attach");
    let out = coord::coordinate(&Context::new(fidelity), opts, links).expect("coordinate");
    let secs = t.elapsed().as_secs_f64();
    assert!(!out.is_degraded(), "zero-chaos pass must be clean");
    for h in handles {
        let _ = h.join();
    }
    secs
}

fn main() {
    let fidelity = match std::env::args().nth(2).as_deref() {
        Some("standard") => Fidelity::Standard,
        _ => Fidelity::Test,
    };
    let fidelity_name = match fidelity {
        Fidelity::Test => "test",
        Fidelity::Standard => "standard",
        Fidelity::High => "high",
    };

    // Bulk relay: warm once, then measure direct and proxied.
    let sink = spawn_sink();
    let _ = bulk_pass(&sink);
    let direct_mibs = bulk_pass(&sink);
    let proxy = TcpProxy::start("127.0.0.1:0", sink.as_str(), WireChaosConfig::zero())
        .expect("start bulk proxy");
    let proxy_addr = proxy.addr().to_string();
    let _ = bulk_pass(&proxy_addr);
    let proxied_mibs = bulk_pass(&proxy_addr);
    drop(proxy);

    // Shard plane: warm the engine, then direct vs proxied 2-worker
    // coordinated passes.
    let opts = CoordOptions::default();
    let _ = suite::run_all(&Context::new(fidelity));
    let direct_secs = coordinated_pass(fidelity, &opts, 2, false);
    let proxied_secs = coordinated_pass(fidelity, &opts, 2, true);

    println!("{{");
    println!("  \"fidelity\": \"{fidelity_name}\",");
    println!("  \"bulk_mib\": {},", BULK_BYTES / (1024 * 1024));
    println!("  \"bulk_direct_mib_per_s\": {direct_mibs:.1},");
    println!("  \"bulk_proxied_mib_per_s\": {proxied_mibs:.1},");
    println!(
        "  \"bulk_overhead_pct\": {:.1},",
        (direct_mibs / proxied_mibs.max(1e-9) - 1.0) * 100.0
    );
    println!("  \"shard_2w_direct_secs\": {direct_secs:.4},");
    println!("  \"shard_2w_proxied_secs\": {proxied_secs:.4},");
    println!(
        "  \"shard_overhead_pct\": {:.1}",
        (proxied_secs / direct_secs.max(1e-9) - 1.0) * 100.0
    );
    println!("}}");
}
