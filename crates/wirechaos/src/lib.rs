//! Seeded wire-chaos: a deterministic TCP/UDP fault-injecting proxy.
//!
//! `crates/chaos` owns *process*-level faults (worker kills, torn
//! spills); this crate owns the *wire*. A [`TcpProxy`] or [`UdpProxy`]
//! sits between any two planes of the pipeline — coordinator↔worker,
//! export↔collectd, loadgen↔serve — and mangles traffic on a schedule
//! that is a pure function of `(seed, connection, direction, chunk)`:
//! the same seed replays the same faults, so a failing run is a
//! repro case, not an anecdote.
//!
//! The fault vocabulary (all opt-in via [`WireChaosConfig::parse`]):
//!
//! | key            | plane | effect                                           |
//! |----------------|-------|--------------------------------------------------|
//! | `corrupt=P`    | TCP   | flip one byte of a relayed chunk                 |
//! | `trunc=P`      | TCP   | forward half a chunk, then sever the connection  |
//! | `split=P`      | TCP   | relay the chunk one byte per `write` call        |
//! | `delay=P` + `delay-ms=N` | both | hold a chunk/datagram for `N` ms       |
//! | `reset=P`      | TCP   | sever the connection before relaying the chunk   |
//! | `stall=P`      | TCP   | stop relaying this direction forever (hold open) |
//! | `cut-payload=N`| TCP   | once per proxy: first server→client chunk of at  |
//! |                |       | least `N` bytes is cut in half, then severed     |
//! | `min-len=N`    | TCP   | `corrupt`/`trunc` draws only consider chunks of  |
//! |                |       | at least `N` bytes (spares tiny control frames)  |
//! | `drop=P`       | UDP   | swallow the datagram                             |
//! | `dup=P`        | UDP   | deliver the datagram twice                       |
//! | `corrupt=P`    | UDP   | flip one byte of the datagram                    |
//!
//! Like its process-level sibling this crate is dependency-free and
//! does all randomness through splitmix64 folding, so schedules never
//! shift when unrelated draws are added.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tcp;
mod udp;

pub use tcp::TcpProxy;
pub use udp::UdpProxy;

use std::sync::atomic::{AtomicU64, Ordering};

/// Relay buffer size: one proxied "chunk" is one `read` into this much.
pub const CHUNK_LEN: usize = 64 << 10;

/// Salt for byte-corruption draws.
const CORRUPT_SALT: u64 = 0x0005_7c1c_0477_u64;
/// Salt for truncation draws.
const TRUNC_SALT: u64 = 0x0057_c172_411c_u64;
/// Salt for write-splitting draws.
const SPLIT_SALT: u64 = 0x0005_7c15_9117_u64;
/// Salt for latency draws.
const DELAY_SALT: u64 = 0x0005_7c1d_e1a1_u64;
/// Salt for connection-reset draws.
const RESET_SALT: u64 = 0x0005_7c14_e5e7_u64;
/// Salt for stall draws.
const STALL_SALT: u64 = 0x0005_7c15_7a11_u64;
/// Salt for UDP drop draws.
const DROP_SALT: u64 = 0x57c1_d409_u64;
/// Salt for UDP duplication draws.
const DUP_SALT: u64 = 0x57c1_d119_u64;
/// Salt for picking which byte to flip and what to xor it with.
const FLIP_SALT: u64 = 0x57c1_f119_u64;

/// One splitmix64 scramble step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fold a key sequence into one hash; every draw in this crate is a
/// pure function of the folded keys, never of call order.
fn fold_hash(keys: &[u64]) -> u64 {
    let mut h = 0x10cd_d047_2020_c4a5u64;
    for &k in keys {
        h = splitmix64(h ^ k);
    }
    h
}

/// Map a hash to a uniform draw in `[0, 1)` from its top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Traffic direction through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → upstream (what the dialing side sends).
    Up,
    /// Upstream → client (what the accepting side answers).
    Down,
}

impl Direction {
    fn code(self) -> u64 {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
        }
    }

    /// Short label for metrics and logs.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Up => "up",
            Direction::Down => "down",
        }
    }
}

/// Parsed wire-chaos specification. All probabilities are per-chunk
/// (TCP) or per-datagram (UDP); a zeroed config is a pure passthrough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireChaosConfig {
    /// Root of every schedule.
    pub seed: u64,
    /// Probability a relayed TCP chunk (or UDP datagram) has one byte
    /// flipped.
    pub corrupt: f64,
    /// Probability a relayed chunk is cut in half and the connection
    /// severed.
    pub trunc: f64,
    /// Probability a chunk is written one byte per syscall.
    pub split: f64,
    /// Probability a chunk/datagram is delayed by [`Self::delay_ms`].
    pub delay: f64,
    /// Added latency for delayed chunks, milliseconds.
    pub delay_ms: u64,
    /// Probability the connection is severed before a chunk is relayed.
    pub reset: f64,
    /// Probability this direction of the connection stalls forever
    /// (held open, nothing relayed again).
    pub stall: f64,
    /// When non-zero: exactly once per proxy lifetime, the first
    /// upstream→client chunk of at least this many bytes is forwarded
    /// only halfway, then the connection is severed. A deterministic
    /// mid-frame reset for reconnect/resume gates.
    pub cut_payload: usize,
    /// `corrupt` and `trunc` draws only consider chunks of at least
    /// this many bytes; small control traffic passes clean.
    pub min_len: usize,
    /// Probability a UDP datagram is swallowed.
    pub drop: f64,
    /// Probability a UDP datagram is delivered twice.
    pub dup: f64,
}

impl WireChaosConfig {
    /// A passthrough config: no faults, seed zero.
    pub fn zero() -> WireChaosConfig {
        WireChaosConfig {
            seed: 0,
            corrupt: 0.0,
            trunc: 0.0,
            split: 0.0,
            delay: 0.0,
            delay_ms: 10,
            reset: 0.0,
            stall: 0.0,
            cut_payload: 0,
            min_len: 0,
            drop: 0.0,
            dup: 0.0,
        }
    }

    /// Whether every fault channel is off.
    pub fn is_zero(&self) -> bool {
        self.corrupt == 0.0
            && self.trunc == 0.0
            && self.split == 0.0
            && self.delay == 0.0
            && self.reset == 0.0
            && self.stall == 0.0
            && self.cut_payload == 0
            && self.drop == 0.0
            && self.dup == 0.0
    }

    /// Parse a `key=value,key=value` spec (same grammar as the
    /// process-chaos `--chaos` flag). Unknown keys, malformed numbers
    /// and out-of-range probabilities are errors, not defaults.
    pub fn parse(spec: &str) -> Result<WireChaosConfig, String> {
        let mut cfg = WireChaosConfig::zero();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("wire-chaos spec part {part:?} is not key=value"))?;
            let prob = || -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("wire-chaos {key}={value:?} is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("wire-chaos {key}={value} is outside [0, 1]"));
                }
                Ok(p)
            };
            let count = || -> Result<u64, String> {
                value
                    .parse()
                    .map_err(|_| format!("wire-chaos {key}={value:?} is not a count"))
            };
            match key {
                "seed" => cfg.seed = count()?,
                "corrupt" => cfg.corrupt = prob()?,
                "trunc" => cfg.trunc = prob()?,
                "split" => cfg.split = prob()?,
                "delay" => cfg.delay = prob()?,
                "delay-ms" => cfg.delay_ms = count()?,
                "reset" => cfg.reset = prob()?,
                "stall" => cfg.stall = prob()?,
                "cut-payload" => cfg.cut_payload = count()? as usize,
                "min-len" => cfg.min_len = count()? as usize,
                "drop" => cfg.drop = prob()?,
                "dup" => cfg.dup = prob()?,
                other => return Err(format!("unknown wire-chaos key {other:?}")),
            }
        }
        Ok(cfg)
    }
}

/// What the schedule says to do with one TCP chunk. At most one fault
/// fires per chunk; severing faults win over mangling ones so a chunk
/// is never both corrupted and cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkFault {
    /// Relay unmodified.
    None,
    /// Sever the connection without relaying this chunk.
    Reset,
    /// Stop relaying this direction forever, holding the socket open.
    Stall,
    /// Relay the first half, then sever.
    Truncate,
    /// Flip `byte index` with `xor` (xor is never zero).
    Corrupt {
        /// Index into the chunk of the byte to flip.
        index: usize,
        /// Non-zero value to xor the byte with.
        xor: u8,
    },
    /// Relay one byte per `write` call.
    Split,
    /// Sleep this many milliseconds, then relay unmodified.
    Delay(u64),
}

/// The seeded decision engine. Cheap to copy; every proxy connection
/// shares one.
#[derive(Debug, Clone, Copy)]
pub struct WireSchedule {
    cfg: WireChaosConfig,
}

impl WireSchedule {
    /// Build a schedule over `cfg`.
    pub fn new(cfg: WireChaosConfig) -> WireSchedule {
        WireSchedule { cfg }
    }

    /// The config this schedule draws from.
    pub fn config(&self) -> &WireChaosConfig {
        &self.cfg
    }

    /// Decide the fate of TCP chunk `chunk_idx` of `len` bytes flowing
    /// in `dir` on connection `conn`. Pure: same keys, same fault.
    pub fn tcp_fault(&self, conn: u64, dir: Direction, chunk_idx: u64, len: usize) -> ChunkFault {
        let c = &self.cfg;
        let keys = |salt: u64| [c.seed, salt, conn, dir.code(), chunk_idx];
        if c.reset > 0.0 && unit(fold_hash(&keys(RESET_SALT))) < c.reset {
            return ChunkFault::Reset;
        }
        if c.stall > 0.0 && unit(fold_hash(&keys(STALL_SALT))) < c.stall {
            return ChunkFault::Stall;
        }
        let big_enough = len >= c.min_len;
        if big_enough && c.trunc > 0.0 && unit(fold_hash(&keys(TRUNC_SALT))) < c.trunc {
            return ChunkFault::Truncate;
        }
        if big_enough && c.corrupt > 0.0 && unit(fold_hash(&keys(CORRUPT_SALT))) < c.corrupt {
            let h = fold_hash(&keys(FLIP_SALT));
            return ChunkFault::Corrupt {
                index: (h as usize) % len.max(1),
                xor: ((h >> 32) as u8).max(1),
            };
        }
        if c.split > 0.0 && unit(fold_hash(&keys(SPLIT_SALT))) < c.split {
            return ChunkFault::Split;
        }
        if c.delay > 0.0 && unit(fold_hash(&keys(DELAY_SALT))) < c.delay {
            return ChunkFault::Delay(c.delay_ms);
        }
        ChunkFault::None
    }

    /// Decide the fate of UDP datagram number `idx` of `len` bytes.
    pub fn udp_fault(&self, idx: u64, len: usize) -> UdpFault {
        let c = &self.cfg;
        let keys = |salt: u64| [c.seed, salt, idx];
        if c.drop > 0.0 && unit(fold_hash(&keys(DROP_SALT))) < c.drop {
            return UdpFault::Drop;
        }
        if c.dup > 0.0 && unit(fold_hash(&keys(DUP_SALT))) < c.dup {
            return UdpFault::Duplicate;
        }
        if len >= c.min_len && c.corrupt > 0.0 && unit(fold_hash(&keys(CORRUPT_SALT))) < c.corrupt {
            let h = fold_hash(&keys(FLIP_SALT));
            return UdpFault::Corrupt {
                index: (h as usize) % len.max(1),
                xor: ((h >> 32) as u8).max(1),
            };
        }
        if c.delay > 0.0 && unit(fold_hash(&keys(DELAY_SALT))) < c.delay {
            return UdpFault::Delay(c.delay_ms);
        }
        UdpFault::None
    }
}

/// What the schedule says to do with one UDP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpFault {
    /// Forward unmodified.
    None,
    /// Swallow the datagram.
    Drop,
    /// Forward it twice.
    Duplicate,
    /// Flip one byte, then forward.
    Corrupt {
        /// Index into the datagram of the byte to flip.
        index: usize,
        /// Non-zero value to xor the byte with.
        xor: u8,
    },
    /// Sleep this many milliseconds, then forward.
    Delay(u64),
}

/// Lock-free tallies of what a proxy actually did — the ground truth a
/// fault-matrix test checks injected faults against.
#[derive(Debug, Default)]
pub struct ProxyMetrics {
    /// TCP connections accepted.
    pub connections: AtomicU64,
    /// TCP chunks relayed (mangled or not).
    pub chunks: AtomicU64,
    /// Bytes relayed client→upstream.
    pub bytes_up: AtomicU64,
    /// Bytes relayed upstream→client.
    pub bytes_down: AtomicU64,
    /// Chunks with a byte flipped.
    pub corrupted: AtomicU64,
    /// Chunks cut in half (trunc or cut-payload), severing the link.
    pub truncated: AtomicU64,
    /// Chunks relayed byte-by-byte.
    pub split: AtomicU64,
    /// Chunks (or datagrams) held for added latency.
    pub delayed: AtomicU64,
    /// Connections severed by a reset draw.
    pub resets: AtomicU64,
    /// Directions stalled forever.
    pub stalls: AtomicU64,
    /// UDP datagrams relayed.
    pub datagrams: AtomicU64,
    /// UDP datagrams swallowed.
    pub dropped: AtomicU64,
    /// UDP datagrams delivered twice.
    pub duplicated: AtomicU64,
}

impl ProxyMetrics {
    /// Total chunks/datagrams that had any fault applied.
    pub fn faults(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.split.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.resets.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
            + self.dropped.load(Ordering::Relaxed)
            + self.duplicated.load(Ordering::Relaxed)
    }

    /// Text exposition (Prometheus style, same school as the other
    /// planes' metrics).
    pub fn render(&self) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "wirechaos_connections {}\n\
             wirechaos_chunks {}\n\
             wirechaos_bytes_up {}\n\
             wirechaos_bytes_down {}\n\
             wirechaos_corrupted {}\n\
             wirechaos_truncated {}\n\
             wirechaos_split {}\n\
             wirechaos_delayed {}\n\
             wirechaos_resets {}\n\
             wirechaos_stalls {}\n\
             wirechaos_datagrams {}\n\
             wirechaos_dropped {}\n\
             wirechaos_duplicated {}\n",
            g(&self.connections),
            g(&self.chunks),
            g(&self.bytes_up),
            g(&self.bytes_down),
            g(&self.corrupted),
            g(&self.truncated),
            g(&self.split),
            g(&self.delayed),
            g(&self.resets),
            g(&self.stalls),
            g(&self.datagrams),
            g(&self.dropped),
            g(&self.duplicated),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_key() {
        let cfg = WireChaosConfig::parse(
            "seed=7,corrupt=0.5,trunc=0.1,split=0.2,delay=0.3,delay-ms=25,\
             reset=0.05,stall=0.01,cut-payload=512,min-len=128,drop=0.4,dup=0.15",
        )
        .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.corrupt, 0.5);
        assert_eq!(cfg.trunc, 0.1);
        assert_eq!(cfg.split, 0.2);
        assert_eq!(cfg.delay, 0.3);
        assert_eq!(cfg.delay_ms, 25);
        assert_eq!(cfg.reset, 0.05);
        assert_eq!(cfg.stall, 0.01);
        assert_eq!(cfg.cut_payload, 512);
        assert_eq!(cfg.min_len, 128);
        assert_eq!(cfg.drop, 0.4);
        assert_eq!(cfg.dup, 0.15);
        assert!(!cfg.is_zero());
        assert!(WireChaosConfig::parse("").unwrap().is_zero());
        assert!(WireChaosConfig::parse("seed=9").unwrap().is_zero());
    }

    #[test]
    fn parse_rejects_garbage_with_names() {
        for (spec, needle) in [
            ("corrupt=2", "outside"),
            ("corrupt=x", "not a number"),
            ("frobnicate=1", "unknown"),
            ("corrupt", "key=value"),
            ("seed=-1", "not a count"),
        ] {
            let err = WireChaosConfig::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let cfg = WireChaosConfig::parse("seed=3,corrupt=0.3,reset=0.1,split=0.2").unwrap();
        let s = WireSchedule::new(cfg);
        for conn in 0..4u64 {
            for chunk in 0..64u64 {
                let a = s.tcp_fault(conn, Direction::Up, chunk, 1000);
                let b = s.tcp_fault(conn, Direction::Up, chunk, 1000);
                assert_eq!(a, b, "same keys, same fault");
            }
        }
        // A different seed must produce a different fault pattern.
        let other = WireSchedule::new(WireChaosConfig { seed: 4, ..cfg });
        let pattern = |s: &WireSchedule| -> Vec<ChunkFault> {
            (0..256u64)
                .map(|i| s.tcp_fault(0, Direction::Down, i, 1000))
                .collect()
        };
        assert_ne!(pattern(&s), pattern(&other));
    }

    #[test]
    fn min_len_spares_small_chunks() {
        let cfg = WireChaosConfig::parse("seed=1,corrupt=1,min-len=512").unwrap();
        let s = WireSchedule::new(cfg);
        for chunk in 0..128u64 {
            assert_eq!(
                s.tcp_fault(0, Direction::Up, chunk, 100),
                ChunkFault::None,
                "chunks under min-len pass clean"
            );
            assert!(matches!(
                s.tcp_fault(0, Direction::Up, chunk, 512),
                ChunkFault::Corrupt { .. }
            ));
        }
    }

    #[test]
    fn corrupt_xor_is_never_zero_and_index_in_range() {
        let cfg = WireChaosConfig::parse("seed=11,corrupt=1").unwrap();
        let s = WireSchedule::new(cfg);
        for chunk in 0..512u64 {
            match s.tcp_fault(3, Direction::Down, chunk, 37) {
                ChunkFault::Corrupt { index, xor } => {
                    assert!(index < 37);
                    assert_ne!(xor, 0, "xor 0 would be a silent no-op");
                }
                other => panic!("corrupt=1 must always corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn udp_faults_cover_the_vocabulary() {
        let cfg = WireChaosConfig::parse("seed=5,drop=0.3,dup=0.3,corrupt=0.3").unwrap();
        let s = WireSchedule::new(cfg);
        let mut seen_drop = false;
        let mut seen_dup = false;
        let mut seen_corrupt = false;
        let mut seen_none = false;
        for i in 0..512u64 {
            match s.udp_fault(i, 64) {
                UdpFault::Drop => seen_drop = true,
                UdpFault::Duplicate => seen_dup = true,
                UdpFault::Corrupt { index, xor } => {
                    assert!(index < 64);
                    assert_ne!(xor, 0);
                    seen_corrupt = true;
                }
                UdpFault::None => seen_none = true,
                UdpFault::Delay(_) => {}
            }
        }
        assert!(seen_drop && seen_dup && seen_corrupt && seen_none);
    }
}
