//! The TCP interposer: accept, dial upstream, relay chunks through the
//! fault schedule.
//!
//! One proxy is one listener plus two pump threads per accepted
//! connection (one per direction). A pump reads up to [`CHUNK_LEN`]
//! bytes, asks the [`WireSchedule`] what to do with chunk `i` of its
//! `(connection, direction)`, and relays, mangles, delays or severs
//! accordingly. Clean EOF propagates as a write-side shutdown so
//! half-closed protocols still drain; severing faults shut down both
//! sockets in both directions so each end observes the failure rather
//! than waiting on a ghost.

use crate::{ChunkFault, Direction, ProxyMetrics, WireChaosConfig, WireSchedule, CHUNK_LEN};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll tick for stoppable blocking operations.
const POLL: Duration = Duration::from_millis(20);

/// A running TCP wire-chaos proxy.
#[derive(Debug)]
pub struct TcpProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    metrics: Arc<ProxyMetrics>,
}

impl TcpProxy {
    /// Bind `listen`, and relay every accepted connection to `upstream`
    /// through the fault schedule seeded by `cfg`.
    pub fn start(
        listen: impl ToSocketAddrs,
        upstream: impl ToSocketAddrs,
        cfg: WireChaosConfig,
    ) -> io::Result<TcpProxy> {
        let listener = TcpListener::bind(listen)?;
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("upstream resolved to no address"))?;
        TcpProxy::start_on(listener, upstream, cfg)
    }

    /// Like [`TcpProxy::start`] but over an already-bound listener.
    pub fn start_on(
        listener: TcpListener,
        upstream: SocketAddr,
        cfg: WireChaosConfig,
    ) -> io::Result<TcpProxy> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ProxyMetrics::default());
        let schedule = WireSchedule::new(cfg);
        // The deterministic cut-payload fault fires at most once per
        // proxy lifetime; this is its one-shot trigger.
        let cut = Arc::new(AtomicBool::new(cfg.cut_payload > 0));

        let accept = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let cut = Arc::clone(&cut);
            std::thread::spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                let mut conn_id = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _peer)) => {
                            metrics.connections.fetch_add(1, Ordering::Relaxed);
                            match TcpStream::connect(upstream) {
                                Ok(server) => {
                                    let _ = client.set_nodelay(true);
                                    let _ = server.set_nodelay(true);
                                    spawn_pumps(
                                        &mut pumps, client, server, conn_id, schedule, &metrics,
                                        &stop, &cut,
                                    );
                                }
                                // Upstream refused: dropping the client
                                // socket is the honest relay of that.
                                Err(_) => drop(client),
                            }
                            conn_id += 1;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                for pump in pumps {
                    let _ = pump.join();
                }
            })
        };

        Ok(TcpProxy {
            addr,
            stop,
            accept: Some(accept),
            metrics,
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live fault tallies.
    pub fn metrics(&self) -> Arc<ProxyMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop accepting, sever nothing, and join every pump. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for TcpProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the two per-direction pump threads for one connection.
#[allow(clippy::too_many_arguments)]
fn spawn_pumps(
    pumps: &mut Vec<JoinHandle<()>>,
    client: TcpStream,
    server: TcpStream,
    conn: u64,
    schedule: WireSchedule,
    metrics: &Arc<ProxyMetrics>,
    stop: &Arc<AtomicBool>,
    cut: &Arc<AtomicBool>,
) {
    // A severing fault in either pump must kill both directions; the
    // shared flag is how the surviving pump learns.
    let dead = Arc::new(AtomicBool::new(false));
    let up = Pump {
        src: match client.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        dst: match server.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
        dir: Direction::Up,
        conn,
        schedule,
        metrics: Arc::clone(metrics),
        stop: Arc::clone(stop),
        dead: Arc::clone(&dead),
        cut: Arc::clone(cut),
    };
    let down = Pump {
        src: server,
        dst: client,
        dir: Direction::Down,
        conn,
        schedule,
        metrics: Arc::clone(metrics),
        stop: Arc::clone(stop),
        dead,
        cut: Arc::clone(cut),
    };
    pumps.push(std::thread::spawn(move || up.run()));
    pumps.push(std::thread::spawn(move || down.run()));
}

/// One direction of one proxied connection.
struct Pump {
    src: TcpStream,
    dst: TcpStream,
    dir: Direction,
    conn: u64,
    schedule: WireSchedule,
    metrics: Arc<ProxyMetrics>,
    stop: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
    cut: Arc<AtomicBool>,
}

impl Pump {
    fn run(mut self) {
        let _ = self.src.set_read_timeout(Some(POLL));
        let mut buf = vec![0u8; CHUNK_LEN];
        let mut chunk_idx = 0u64;
        loop {
            if self.stop.load(Ordering::Relaxed) || self.dead.load(Ordering::Relaxed) {
                return;
            }
            let n = match self.src.read(&mut buf) {
                Ok(0) => {
                    // Clean EOF: propagate the half-close and let the
                    // other direction keep draining.
                    let _ = self.dst.shutdown(Shutdown::Write);
                    return;
                }
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => {
                    self.sever();
                    return;
                }
            };
            self.metrics.chunks.fetch_add(1, Ordering::Relaxed);
            let chunk = &mut buf[..n];

            // The one-shot deterministic cut beats the random draws: a
            // reconnect gate needs its mid-frame reset exactly where the
            // schedule cannot guarantee one.
            let cut_at = self.schedule.config().cut_payload;
            if self.dir == Direction::Down
                && cut_at > 0
                && n >= cut_at
                && self.cut.swap(false, Ordering::Relaxed)
            {
                self.metrics.truncated.fetch_add(1, Ordering::Relaxed);
                let _ = self.dst.write_all(&chunk[..n / 2]);
                let _ = self.dst.flush();
                self.sever();
                return;
            }

            let fault = self.schedule.tcp_fault(self.conn, self.dir, chunk_idx, n);
            chunk_idx += 1;
            match fault {
                ChunkFault::Reset => {
                    self.metrics.resets.fetch_add(1, Ordering::Relaxed);
                    self.sever();
                    return;
                }
                ChunkFault::Stall => {
                    // Hold both sockets open and go silent: the fault a
                    // frame deadline exists to catch.
                    self.metrics.stalls.fetch_add(1, Ordering::Relaxed);
                    while !self.stop.load(Ordering::Relaxed) && !self.dead.load(Ordering::Relaxed) {
                        std::thread::sleep(POLL);
                    }
                    return;
                }
                ChunkFault::Truncate => {
                    self.metrics.truncated.fetch_add(1, Ordering::Relaxed);
                    let _ = self.dst.write_all(&chunk[..n / 2]);
                    let _ = self.dst.flush();
                    self.sever();
                    return;
                }
                ChunkFault::Corrupt { index, xor } => {
                    self.metrics.corrupted.fetch_add(1, Ordering::Relaxed);
                    chunk[index] ^= xor;
                    if self.relay(&buf[..n]).is_err() {
                        return;
                    }
                }
                ChunkFault::Split => {
                    self.metrics.split.fetch_add(1, Ordering::Relaxed);
                    for i in 0..n {
                        if self.relay(&buf[i..i + 1]).is_err() {
                            return;
                        }
                    }
                }
                ChunkFault::Delay(ms) => {
                    self.metrics.delayed.fetch_add(1, Ordering::Relaxed);
                    let deadline = std::time::Instant::now() + Duration::from_millis(ms);
                    while std::time::Instant::now() < deadline
                        && !self.stop.load(Ordering::Relaxed)
                        && !self.dead.load(Ordering::Relaxed)
                    {
                        std::thread::sleep(POLL.min(Duration::from_millis(ms)));
                    }
                    if self.relay(&buf[..n]).is_err() {
                        return;
                    }
                }
                ChunkFault::None => {
                    if self.relay(&buf[..n]).is_err() {
                        return;
                    }
                }
            }
        }
    }

    /// Write bytes onward, keeping the byte tallies honest.
    fn relay(&mut self, bytes: &[u8]) -> io::Result<()> {
        let counter = match self.dir {
            Direction::Up => &self.metrics.bytes_up,
            Direction::Down => &self.metrics.bytes_down,
        };
        match self.dst.write_all(bytes) {
            Ok(()) => {
                counter.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.sever();
                Err(e)
            }
        }
    }

    /// Kill both directions of this connection.
    fn sever(&self) {
        self.dead.store(true, Ordering::Relaxed);
        let _ = self.src.shutdown(Shutdown::Both);
        let _ = self.dst.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// An echo server good for one connection at a time.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn passthrough_is_byte_faithful() {
        let (upstream, _srv) = echo_server();
        let mut proxy = TcpProxy::start("127.0.0.1:0", upstream, WireChaosConfig::zero()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        c.write_all(&payload).unwrap();
        let _ = c.shutdown(Shutdown::Write);
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, payload);
        let m = proxy.metrics();
        assert_eq!(m.connections.load(Ordering::Relaxed), 1);
        assert_eq!(m.faults(), 0, "passthrough injects nothing");
        assert_eq!(m.bytes_up.load(Ordering::Relaxed), payload.len() as u64);
        proxy.shutdown();
    }

    #[test]
    fn corrupt_flips_exactly_the_scheduled_bytes() {
        let (upstream, _srv) = echo_server();
        let cfg = WireChaosConfig::parse("seed=2,corrupt=1,min-len=8").unwrap();
        let mut proxy = TcpProxy::start("127.0.0.1:0", upstream, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let payload = vec![0u8; 1024];
        c.write_all(&payload).unwrap();
        let _ = c.shutdown(Shutdown::Write);
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), payload.len());
        assert_ne!(got, payload, "corrupt=1 must flip something");
        let m = proxy.metrics();
        assert!(m.corrupted.load(Ordering::Relaxed) >= 1);
        proxy.shutdown();
    }

    #[test]
    fn cut_payload_severs_mid_chunk_once() {
        let (upstream, _srv) = echo_server();
        let cfg = WireChaosConfig::parse("cut-payload=1000").unwrap();
        let mut proxy = TcpProxy::start("127.0.0.1:0", upstream, cfg).unwrap();

        // First connection: a big echo comes back cut roughly in half,
        // then the connection dies.
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&vec![7u8; 4096]).unwrap();
        let mut got = Vec::new();
        let _ = c.read_to_end(&mut got); // error or short — never full
        assert!(
            got.len() < 4096,
            "cut must lose the tail, kept {}",
            got.len()
        );

        // Second connection: the one-shot is spent; full fidelity.
        let mut c2 = TcpStream::connect(proxy.addr()).unwrap();
        c2.write_all(&vec![9u8; 4096]).unwrap();
        let _ = c2.shutdown(Shutdown::Write);
        let mut got2 = Vec::new();
        c2.read_to_end(&mut got2).unwrap();
        assert_eq!(got2, vec![9u8; 4096]);
        assert_eq!(proxy.metrics().truncated.load(Ordering::Relaxed), 1);
        proxy.shutdown();
    }

    #[test]
    fn split_still_delivers_every_byte() {
        let (upstream, _srv) = echo_server();
        let cfg = WireChaosConfig::parse("seed=4,split=1").unwrap();
        let mut proxy = TcpProxy::start("127.0.0.1:0", upstream, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 13) as u8).collect();
        c.write_all(&payload).unwrap();
        let _ = c.shutdown(Shutdown::Write);
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, payload, "splitting reorders nothing");
        assert!(proxy.metrics().split.load(Ordering::Relaxed) >= 1);
        proxy.shutdown();
    }
}
