//! The UDP interposer: one datagram in, zero, one or two datagrams out.
//!
//! The collection plane is one-way (exporters send, collectd listens),
//! so the forward path carries the fault schedule — drop, duplicate,
//! corrupt, delay — keyed on the datagram's arrival index. A reverse
//! pump still exists (replies from the upstream go back to the most
//! recent client) but relays faithfully; none of our planes answer
//! over UDP today.

use crate::{ProxyMetrics, UdpFault, WireChaosConfig, WireSchedule};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll tick for stoppable blocking reads.
const POLL: Duration = Duration::from_millis(20);

/// Strictly larger than the biggest UDP payload, so nothing truncates
/// silently inside the proxy itself.
const DGRAM_BUF: usize = 65_536 + 64;

/// A running UDP wire-chaos proxy.
#[derive(Debug)]
pub struct UdpProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    metrics: Arc<ProxyMetrics>,
}

impl UdpProxy {
    /// Bind `listen` and relay datagrams to `upstream` through the
    /// fault schedule seeded by `cfg`.
    pub fn start(
        listen: impl ToSocketAddrs,
        upstream: impl ToSocketAddrs,
        cfg: WireChaosConfig,
    ) -> io::Result<UdpProxy> {
        let front = UdpSocket::bind(listen)?;
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("upstream resolved to no address"))?;
        let addr = front.local_addr()?;
        // Dial out from a second socket so upstream replies come back
        // here, not to the listening port.
        let back = UdpSocket::bind((addr.ip(), 0))?;
        front.set_read_timeout(Some(POLL))?;
        back.set_read_timeout(Some(POLL))?;

        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ProxyMetrics::default());
        let schedule = WireSchedule::new(cfg);
        let last_client: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
        let mut threads = Vec::with_capacity(2);

        // Forward pump: client → upstream, with faults.
        {
            let front = front.try_clone()?;
            let back = back.try_clone()?;
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let last_client = Arc::clone(&last_client);
            threads.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; DGRAM_BUF];
                let mut idx = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (n, from) = match front.recv_from(&mut buf) {
                        Ok(pair) => pair,
                        Err(e)
                            if matches!(
                                e.kind(),
                                ErrorKind::WouldBlock
                                    | ErrorKind::TimedOut
                                    | ErrorKind::Interrupted
                            ) =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    };
                    *last_client.lock().expect("client-addr lock") = Some(from);
                    metrics.datagrams.fetch_add(1, Ordering::Relaxed);
                    let fault = schedule.udp_fault(idx, n);
                    idx += 1;
                    match fault {
                        UdpFault::Drop => {
                            metrics.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        UdpFault::Duplicate => {
                            metrics.duplicated.fetch_add(1, Ordering::Relaxed);
                            let _ = back.send_to(&buf[..n], upstream);
                            let _ = back.send_to(&buf[..n], upstream);
                        }
                        UdpFault::Corrupt { index, xor } => {
                            metrics.corrupted.fetch_add(1, Ordering::Relaxed);
                            buf[index] ^= xor;
                            let _ = back.send_to(&buf[..n], upstream);
                        }
                        UdpFault::Delay(ms) => {
                            metrics.delayed.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(ms));
                            let _ = back.send_to(&buf[..n], upstream);
                        }
                        UdpFault::None => {
                            let _ = back.send_to(&buf[..n], upstream);
                        }
                    }
                }
            }));
        }

        // Reverse pump: upstream replies → the most recent client,
        // relayed faithfully.
        {
            let stop = Arc::clone(&stop);
            let last_client = Arc::clone(&last_client);
            threads.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; DGRAM_BUF];
                while !stop.load(Ordering::Relaxed) {
                    match back.recv_from(&mut buf) {
                        Ok((n, _from)) => {
                            let client = *last_client.lock().expect("client-addr lock");
                            if let Some(client) = client {
                                let _ = front.send_to(&buf[..n], client);
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                ErrorKind::WouldBlock
                                    | ErrorKind::TimedOut
                                    | ErrorKind::Interrupted
                            ) => {}
                        Err(_) => break,
                    }
                }
            }));
        }

        Ok(UdpProxy {
            addr,
            stop,
            threads,
            metrics,
        })
    }

    /// The address exporters should send to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live fault tallies.
    pub fn metrics(&self) -> Arc<ProxyMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop both pumps and join them. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for UdpProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_dup_and_corrupt_are_accounted() {
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        sink.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let cfg = WireChaosConfig::parse("seed=6,drop=0.25,dup=0.25,corrupt=0.25").unwrap();
        let mut proxy = UdpProxy::start("127.0.0.1:0", sink.local_addr().unwrap(), cfg).unwrap();

        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        const SENT: u64 = 200;
        for i in 0..SENT {
            let mut dgram = vec![0u8; 64];
            dgram[..8].copy_from_slice(&i.to_be_bytes());
            tx.send_to(&dgram, proxy.addr()).unwrap();
        }

        // Drain everything that made it through.
        let mut received = 0u64;
        let mut corrupted_seen = 0u64;
        let mut buf = [0u8; 128];
        while let Ok((n, _)) = sink.recv_from(&mut buf) {
            received += 1;
            // A corrupted datagram still has its length; check payload.
            let clean = buf[8..n].iter().all(|&b| b == 0);
            let seq = u64::from_be_bytes(buf[..8].try_into().unwrap());
            if !clean || seq >= SENT {
                corrupted_seen += 1;
            }
        }

        let m = proxy.metrics();
        let dropped = m.dropped.load(Ordering::Relaxed);
        let duplicated = m.duplicated.load(Ordering::Relaxed);
        let corrupted = m.corrupted.load(Ordering::Relaxed);
        assert_eq!(m.datagrams.load(Ordering::Relaxed), SENT);
        assert!(
            dropped > 0 && duplicated > 0 && corrupted > 0,
            "{}",
            m.render()
        );
        // Conservation: every sent datagram is delivered, dropped, or
        // delivered twice — nothing vanishes unaccounted.
        assert_eq!(received, SENT - dropped + duplicated, "{}", m.render());
        assert!(corrupted_seen <= corrupted, "flips beyond schedule");
        proxy.shutdown();
    }
}
