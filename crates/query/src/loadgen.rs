//! Concurrent load generator for the query plane.
//!
//! Two phases. **Verify** (optional): fetch every figure in catalog
//! order over one connection, reassemble the suite stdout byte-for-byte
//! and compare against an expected rendering — the served output must be
//! *identical* to the engine's own, or the run reports mismatches (the
//! CLI maps that to its own exit code). **Load**: N OS threads, one
//! keep-alive connection each, drive a seeded request mix (ad-hoc
//! `/query` plans, figure fetches, `/metrics` scrapes) until the
//! deadline, recording per-request latency. The report carries
//! throughput and p50/p99/p999 — the numbers `BENCH_query.json`
//! commits.
//!
//! The client is hand-rolled over `std::net::TcpStream`, sharing the
//! request mix's determinism guarantees: same seed, same sequence of
//! paths per client.

use crate::json;
use crate::plan::{stream_keys, QueryPlan, CLASS_KEYS};
use lockdown_flow::time::Date;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to drive, and how hard.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Target authority, `host:port` (an `http://` prefix is accepted).
    pub target: String,
    /// Concurrent clients (one keep-alive connection each).
    pub clients: usize,
    /// Load-phase duration in seconds (0 skips the load phase).
    pub duration_secs: f64,
    /// Seed for the per-client request mix.
    pub seed: u64,
    /// Expected figure-suite stdout; when set, the verify phase fetches
    /// every served figure and byte-compares the reassembly.
    pub expect: Option<String>,
}

/// The outcome: verification result plus latency/throughput numbers.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Clients driven.
    pub clients: usize,
    /// Wall-clock seconds of the load phase.
    pub secs: f64,
    /// HTTP exchanges completed during the load phase, 2xx or not.
    pub requests: u64,
    /// Transport errors (connect/read/write failures): the exchange never
    /// completed, so it contributes no status and no latency sample.
    pub errors: u64,
    /// Completed exchanges with a non-2xx status (e.g. 503 backpressure
    /// rejections). Excluded from the latency percentiles: an error
    /// fast-path answers in microseconds and would deflate — or, behind a
    /// saturated listener, inflate — p99 for real work.
    pub failed_status: u64,
    /// Successful (2xx) exchanges — the population behind the latency
    /// percentiles. `requests == latency_samples + failed_status`.
    pub latency_samples: u64,
    /// Requests per second.
    pub rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Figures fetched in the verify phase.
    pub figures_verified: u64,
    /// Figures whose served rendering differed from the expectation.
    pub mismatches: u64,
}

impl LoadReport {
    /// Render as a JSON object (the `BENCH_query.json` payload).
    pub fn render_json(&self) -> String {
        format!(
            "{{\n  \"clients\": {},\n  \"secs\": {:.3},\n  \"requests\": {},\n  \"errors\": {},\n  \"failed_status\": {},\n  \"latency_samples\": {},\n  \"rps\": {:.1},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"figures_verified\": {},\n  \"mismatches\": {}\n}}",
            self.clients,
            self.secs,
            self.requests,
            self.errors,
            self.failed_status,
            self.latency_samples,
            self.rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.figures_verified,
            self.mismatches
        )
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One keep-alive connection with minimal HTTP/1.1 client plumbing.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn connect(authority: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(authority)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Conn {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Issue one GET, returning (status, body).
    fn get(&mut self, authority: &str, path: &str) -> std::io::Result<(u16, String)> {
        self.stream.write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: keep-alive\r\n\r\n")
                .as_bytes(),
        )?;
        let mut chunk = [0u8; 8192];
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let len: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
            })?;
        while self.buf.len() < head_end + 4 + len {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[head_end + 4..head_end + 4 + len]).to_string();
        self.buf.drain(..head_end + 4 + len);
        Ok((status, body))
    }
}

fn strip_scheme(target: &str) -> &str {
    target
        .strip_prefix("http://")
        .unwrap_or(target)
        .trim_end_matches('/')
}

/// A seeded dashboard-style request: mostly ad-hoc queries, some figure
/// fetches, some metrics scrapes.
fn pick_path(rng: &mut u64, figures: &[String]) -> String {
    let scenario_start = Date::new(2020, 1, 1).midnight().unix();
    match splitmix64(rng) % 10 {
        0..=5 => {
            let mut plan = QueryPlan::default();
            let day = 86_400;
            let from = scenario_start + (splitmix64(rng) % 180) * day;
            plan.from = Some(from);
            plan.to = Some(from + (1 + splitmix64(rng) % 14) * day);
            let streams = stream_keys();
            plan.stream = Some(streams[(splitmix64(rng) as usize) % streams.len()].1);
            match splitmix64(rng) % 4 {
                0 => plan.port = Some([443, 80, 3389, 8801, 51820][(splitmix64(rng) as usize) % 5]),
                1 => plan.class = Some(CLASS_KEYS[(splitmix64(rng) as usize) % CLASS_KEYS.len()].1),
                _ => {}
            }
            format!("/query?{}", plan.to_query_string())
        }
        6..=7 if !figures.is_empty() => {
            format!(
                "/figures/{}",
                figures[(splitmix64(rng) as usize) % figures.len()]
            )
        }
        8 => "/metrics".into(),
        _ => "/figures".into(),
    }
}

/// Reassemble what `lockdown figures` would print from served sections:
/// every section followed by a newline, in catalog order.
fn reassemble(sections: &[String]) -> String {
    let mut out = String::new();
    for s in sections {
        out.push_str(s);
        out.push('\n');
    }
    out
}

/// Run the verify phase (when configured) and the load phase.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let authority = strip_scheme(&cfg.target).to_string();
    let mut report = LoadReport {
        clients: cfg.clients,
        ..LoadReport::default()
    };

    // Catalog fetch doubles as a reachability check.
    let mut conn =
        Conn::connect(&authority).map_err(|e| format!("cannot connect to {authority}: {e}"))?;
    let (status, body) = conn
        .get(&authority, "/figures")
        .map_err(|e| format!("GET /figures failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /figures returned {status}"));
    }
    let figures =
        json::string_array(&body, "figures").ok_or("malformed /figures index".to_string())?;

    if let Some(expected) = &cfg.expect {
        let mut sections = Vec::with_capacity(figures.len());
        for name in &figures {
            let (status, body) = conn
                .get(&authority, &format!("/figures/{name}"))
                .map_err(|e| format!("GET /figures/{name} failed: {e}"))?;
            report.figures_verified += 1;
            if status != 200 {
                report.mismatches += 1;
                sections.push(format!("<status {status}>"));
                continue;
            }
            match json::string_field(&body, "render") {
                Some(render) => sections.push(render),
                None => {
                    report.mismatches += 1;
                    sections.push("<unparseable>".into());
                }
            }
        }
        if &reassemble(&sections) != expected {
            // Count diverging lines so the report carries a magnitude,
            // not just a boolean.
            let expected_sections: Vec<&str> = expected.split_terminator('\n').collect();
            let got = reassemble(&sections);
            let got_sections: Vec<&str> = got.split_terminator('\n').collect();
            let diverging = expected_sections
                .iter()
                .zip(&got_sections)
                .filter(|(a, b)| a != b)
                .count() as u64
                + expected_sections.len().abs_diff(got_sections.len()) as u64;
            report.mismatches = report.mismatches.max(diverging.max(1));
        }
    }

    if cfg.duration_secs <= 0.0 || cfg.clients == 0 {
        return Ok(report);
    }

    let errors = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let figures = Arc::new(figures);
    let deadline = Instant::now() + Duration::from_secs_f64(cfg.duration_secs);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(cfg.clients);
    for client in 0..cfg.clients {
        let authority = authority.clone();
        let figures = Arc::clone(&figures);
        let errors = Arc::clone(&errors);
        let failed = Arc::clone(&failed);
        let mut rng = cfg.seed ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let worker = std::thread::Builder::new()
            .name(format!("loadgen-{client}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                let mut latencies: Vec<u64> = Vec::new();
                let mut completed: u64 = 0;
                let mut conn = None;
                while Instant::now() < deadline {
                    let c = match conn {
                        Some(ref mut c) => c,
                        None => match Conn::connect(&authority) {
                            Ok(c) => conn.insert(c),
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(10));
                                continue;
                            }
                        },
                    };
                    let path = pick_path(&mut rng, &figures);
                    let t = Instant::now();
                    match c.get(&authority, &path) {
                        Ok((status, _)) => {
                            completed += 1;
                            if (200..300).contains(&status) {
                                // Only successful exchanges feed the
                                // percentiles: a 503 fast-path answers in
                                // microseconds and would skew the latency
                                // distribution of real work.
                                latencies.push(t.elapsed().as_micros() as u64);
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                                // A 503 (connection limit) closes the
                                // stream server-side; reconnect.
                                if status == 503 {
                                    conn = None;
                                }
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            conn = None;
                        }
                    }
                }
                (latencies, completed)
            })
            .map_err(|e| format!("spawning client {client}: {e}"))?;
        workers.push(worker);
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut requests: u64 = 0;
    for w in workers {
        let (lat, completed) = w.join().map_err(|_| "client thread panicked".to_string())?;
        latencies.extend(lat);
        requests += completed;
    }
    report.secs = started.elapsed().as_secs_f64();
    report.requests = requests;
    report.latency_samples = latencies.len() as u64;
    report.errors = errors.load(Ordering::Relaxed);
    report.failed_status = failed.load(Ordering::Relaxed);
    report.rps = report.requests as f64 / report.secs.max(1e-9);
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 0.50);
    report.p99_us = percentile(&latencies, 0.99);
    report.p999_us = percentile(&latencies, 0.999);
    Ok(report)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_mix_are_deterministic() {
        assert_eq!(percentile(&[], 0.5), 0);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);

        let figures = vec!["fig1".to_string(), "fig2a".to_string()];
        let mut a = 42u64;
        let mut b = 42u64;
        let seq_a: Vec<String> = (0..50).map(|_| pick_path(&mut a, &figures)).collect();
        let seq_b: Vec<String> = (0..50).map(|_| pick_path(&mut b, &figures)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same mix");
        assert!(seq_a.iter().any(|p| p.starts_with("/query?")));
        assert!(seq_a.iter().any(|p| p.starts_with("/figures/")));
        assert!(seq_a.iter().any(|p| p == "/metrics"));
        // Every generated query must be parseable by the server side.
        for p in seq_a.iter().filter(|p| p.starts_with("/query?")) {
            let pairs: Vec<(&str, &str)> = p["/query?".len()..]
                .split('&')
                .map(|kv| kv.split_once('=').unwrap())
                .collect();
            QueryPlan::parse(pairs).unwrap();
        }
    }
}
