//! A small hand-rolled HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Scope: exactly what the query plane needs. GET only, keep-alive
//! connections, `Content-Length` on every response, a bounded number of
//! concurrent connections (one small-stack thread each — beyond the
//! bound, new connections get an immediate 503), and graceful shutdown:
//! [`Server::shutdown`] stops accepting, lets in-flight requests finish,
//! and joins the accept loop. A malformed request gets a 400 and a
//! closed connection; a panicking handler gets a 500 — the server
//! thread survives both.

use crate::metrics::QueryMetrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (only `GET` reaches a handler).
    pub method: String,
    /// Percent-decoded path, e.g. `/figures/fig9:ISP-CE`.
    pub path: String,
    /// Percent-decoded query pairs in order of appearance.
    pub query: Vec<(String, String)>,
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (the `/metrics` exposition format).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error":"..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\":\"{}\"}}", crate::json::escape(message)),
        )
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// The request handler: shared across connection threads.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Percent-decode one URL component (`%XX` and `+` → space).
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Parse the request line + headers of one HTTP/1.x request. Returns the
/// request and whether the client asked to close the connection.
fn parse_request(head: &str) -> Option<(Request, bool)> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return None;
    }
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    let mut close = version == "HTTP/1.0";
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    Some((
        Request {
            method,
            path,
            query,
        },
        close,
    ))
}

const MAX_HEAD: usize = 8 * 1024;
const POLL: Duration = Duration::from_millis(100);

fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Serve one connection until EOF, a protocol error, `Connection:
/// close`, or shutdown.
fn serve_connection(
    mut stream: TcpStream,
    handler: &Handler,
    metrics: &QueryMetrics,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        // Accumulate until a full header block (or give up).
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            if buf.len() > MAX_HEAD {
                let _ = write_response(
                    &mut stream,
                    &Response::error(431, "headers too large"),
                    true,
                );
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return, // client closed between requests
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle poll tick: drain, but never strand a client
                    // mid-request — only close when no bytes are pending.
                    // Bytes already buffered (a slow writer mid-header)
                    // stay put; the next tick keeps accumulating.
                    if stop.load(Ordering::Relaxed) && buf.is_empty() {
                        return;
                    }
                }
                // EINTR is not a dead connection: a signal landing on the
                // poll read must not discard a half-received request.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        };
        let head = match std::str::from_utf8(&buf[..head_end]) {
            Ok(h) => h,
            Err(_) => {
                let _ = write_response(
                    &mut stream,
                    &Response::error(400, "malformed request"),
                    true,
                );
                return;
            }
        };
        metrics.requests.inc();
        let started = Instant::now();
        let (resp, close) = match parse_request(head) {
            None => (Response::error(400, "malformed request"), true),
            Some((req, _)) if req.method != "GET" => {
                // A non-GET may carry a body this server never reads;
                // closing keeps the stream from desyncing.
                (Response::error(405, "only GET is served"), true)
            }
            Some((req, client_close)) => {
                let resp = catch_unwind(AssertUnwindSafe(|| handler(&req)))
                    .unwrap_or_else(|_| Response::error(500, "handler panicked"));
                (resp, client_close)
            }
        };
        let close = close || stop.load(Ordering::Relaxed);
        metrics.observe_status(resp.status);
        metrics.observe_latency_us(started.elapsed().as_micros() as u64);
        if write_response(&mut stream, &resp, close).is_err() || close {
            return;
        }
        // GET has no body: anything past the head is the next request.
        buf.drain(..head_end + 4);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A running server: accept loop plus per-connection threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start serving `listener` with at most `max_connections` concurrent
    /// connections (the bound on the thread pool — connections beyond it
    /// are answered 503 and closed without dispatch).
    pub fn start(
        listener: TcpListener,
        max_connections: usize,
        metrics: Arc<QueryMetrics>,
        handler: Handler,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let accept_thread = std::thread::Builder::new()
            .name("query-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let mut stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if accept_active.load(Ordering::Relaxed) >= max_connections {
                        metrics.requests.inc();
                        metrics.observe_status(503);
                        let _ = write_response(
                            &mut stream,
                            &Response::error(503, "connection limit reached"),
                            true,
                        );
                        continue;
                    }
                    accept_active.fetch_add(1, Ordering::Relaxed);
                    let handler = Arc::clone(&handler);
                    let metrics = Arc::clone(&metrics);
                    let stop = Arc::clone(&accept_stop);
                    let active = Arc::clone(&accept_active);
                    let spawned = std::thread::Builder::new()
                        .name("query-conn".into())
                        .stack_size(512 * 1024)
                        .spawn(move || {
                            serve_connection(stream, &handler, &metrics, &stop);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        accept_active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            })?;
        Ok(Server {
            addr,
            stop,
            active,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with `--addr host:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish
    /// (bounded by `drain` — idle keep-alive connections notice the stop
    /// flag within one poll tick), and join the accept loop.
    pub fn shutdown(mut self, drain: Duration) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + drain;
        while self.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_lines_and_queries() {
        let (req, close) =
            parse_request("GET /query?from=10&vantage=isp%2Dce&x=a+b HTTP/1.1\r\nHost: h\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(
            req.query,
            vec![
                ("from".into(), "10".into()),
                ("vantage".into(), "isp-ce".into()),
                ("x".into(), "a b".into()),
            ]
        );
        assert!(!close);
        let (_, close) = parse_request("GET / HTTP/1.1\r\nConnection: close\r\n").unwrap();
        assert!(close);
        assert!(parse_request("FLY / TO/1.1\r\n").is_none());
        assert!(parse_request("GET no-slash HTTP/1.1\r\n").is_none());
    }

    #[test]
    fn server_smoke_keep_alive_and_shutdown() {
        let metrics = QueryMetrics::new();
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::json(200, format!("{{\"path\":\"{}\"}}", req.path))
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, 4, Arc::clone(&metrics), handler).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();

        // Two requests on one connection (keep-alive).
        for path in ["/a", "/b"] {
            s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
            let resp = read_response(&mut s);
            assert!(resp.contains("200 OK"), "{resp}");
            assert!(resp.contains(&format!("{{\"path\":\"{path}\"}}")));
        }

        // A panicking handler answers 500 and the server survives.
        s.write_all(b"GET /boom HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        assert!(read_response(&mut s).contains("500"));
        s.write_all(b"GET /after HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        assert!(read_response(&mut s).contains("200 OK"));

        // Malformed request: 400, connection closed.
        let mut bad = TcpStream::connect(server.addr()).unwrap();
        bad.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        assert!(read_response(&mut bad).contains("400"));

        assert_eq!(metrics.requests.get(), 5);
        assert_eq!(metrics.responses_5xx.get(), 1);
        server.shutdown(Duration::from_secs(2));
    }

    #[test]
    fn slow_writer_straddling_poll_ticks_is_reassembled() {
        // Trickle a request one byte at a time so the header spans many
        // POLL read-timeout boundaries. Every timeout tick must leave the
        // buffered prefix intact — the request is answered 200, not 400,
        // and the connection stays usable afterwards.
        let metrics = QueryMetrics::new();
        let handler: Handler =
            Arc::new(|req: &Request| Response::json(200, format!("{{\"path\":\"{}\"}}", req.path)));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, 2, Arc::clone(&metrics), handler).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();

        let request = b"GET /slow HTTP/1.1\r\nHost: t\r\n\r\n";
        // ~36 bytes * 20ms = ~720ms of writing against a 100ms poll: the
        // head straddles at least six timeout ticks.
        for &b in request.iter() {
            s.write_all(&[b]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        let resp = read_response(&mut s);
        assert!(resp.contains("200 OK"), "slow writer got: {resp}");
        assert!(resp.contains("{\"path\":\"/slow\"}"));

        // The same connection still serves a fast request.
        s.write_all(b"GET /fast HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        assert!(read_response(&mut s).contains("200 OK"));
        assert_eq!(metrics.responses_4xx.get(), 0, "no spurious 400s");
        server.shutdown(Duration::from_secs(2));
    }

    #[test]
    fn request_head_split_at_every_byte_boundary_is_reassembled() {
        // The straddle test above covers the byte-per-tick extreme; this
        // one covers every *single* split point — any prefix/suffix
        // segmentation a hostile wire (or a chaos proxy in split mode)
        // can produce must reassemble to exactly one 200, on one
        // keep-alive connection, with zero spurious 400s.
        let metrics = QueryMetrics::new();
        let handler: Handler =
            Arc::new(|req: &Request| Response::json(200, format!("{{\"path\":\"{}\"}}", req.path)));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, 2, Arc::clone(&metrics), handler).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_nodelay(true).unwrap();

        let request = b"GET /split HTTP/1.1\r\nHost: t\r\n\r\n";
        for cut in 1..request.len() {
            s.write_all(&request[..cut]).unwrap();
            s.flush().unwrap();
            // Let the first fragment land in its own poll read.
            std::thread::sleep(Duration::from_millis(2));
            s.write_all(&request[cut..]).unwrap();
            let resp = read_response(&mut s);
            assert!(resp.contains("200 OK"), "split at {cut} got: {resp}");
        }
        assert_eq!(metrics.responses_4xx.get(), 0, "no spurious 400s");
        assert_eq!(metrics.requests.get(), (request.len() - 1) as u64);
        server.shutdown(Duration::from_secs(2));
    }

    #[test]
    fn mid_response_client_reset_does_not_kill_the_server() {
        // A client that asks for a response and slams the door while the
        // server writes it (closing with unread data in the receive
        // queue makes the kernel send RST): the connection thread must
        // die quietly — no panic, no wedged slot — and the server must
        // keep serving everyone else.
        let metrics = QueryMetrics::new();
        let handler: Handler = Arc::new(|_req: &Request| {
            // A response large enough that the write outlives a rude
            // client's departure.
            Response::json(200, format!("{{\"blob\":\"{}\"}}", "x".repeat(1 << 20)))
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, 4, Arc::clone(&metrics), handler).unwrap();

        for _ in 0..3 {
            let rude = TcpStream::connect(server.addr()).unwrap();
            let mut rude = rude;
            rude.write_all(b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            // Read a few bytes so the server is mid-write, then slam the
            // door on the rest — an abortive close, from the server's
            // point of view a connection reset mid-response.
            let mut first = [0u8; 64];
            let _ = rude.read(&mut first);
            drop(rude);
        }

        // Survivors are served, repeatedly, on a fresh connection.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..2 {
            s.write_all(b"GET /after HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let resp = read_response(&mut s);
            assert!(resp.contains("200 OK"), "{}", &resp[..resp.len().min(200)]);
        }
        // Reset connections drain their slots; nothing stays wedged.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.active_connections() <= 1, "reset slots drained");
        server.shutdown(Duration::from_secs(2));
    }

    #[test]
    fn loadgen_percentiles_survive_a_rude_neighbour() {
        // While the load generator measures a healthy server, a rogue
        // client keeps resetting mid-response. The report's accounting
        // identity must hold (requests == samples + failed_status) and
        // every measured request must have succeeded — the rude
        // neighbour's wreckage must not leak into anyone's percentiles.
        let metrics = QueryMetrics::new();
        // Enough of the serve surface for loadgen's seeded mix: the
        // /figures catalog, per-figure renders, queries and metrics.
        let handler: Handler = Arc::new(|req: &Request| match req.path.as_str() {
            "/figures" => Response::json(200, "{\"figures\":[\"fig1\",\"fig2\"]}".into()),
            "/metrics" => Response::text(200, "query_requests_total 0\n".into()),
            _ => Response::json(200, "{\"ok\":true}".into()),
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, 64, Arc::clone(&metrics), handler).unwrap();
        let addr = server.addr();

        let stop = Arc::new(AtomicBool::new(false));
        let rude_stop = Arc::clone(&stop);
        let rude = std::thread::spawn(move || {
            while !rude_stop.load(Ordering::Relaxed) {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(b"GET /figures HTTP/1.1\r\nHost: t\r\n\r\n");
                    let mut b = [0u8; 8];
                    let _ = s.read(&mut b);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let report = crate::loadgen::run(&crate::loadgen::LoadConfig {
            target: addr.to_string(),
            clients: 4,
            duration_secs: 1.0,
            seed: 7,
            expect: None,
        })
        .expect("loadgen runs");
        stop.store(true, Ordering::Relaxed);
        rude.join().unwrap();

        assert!(report.requests > 0, "loadgen did work");
        assert_eq!(
            report.requests,
            report.latency_samples + report.failed_status,
            "accounting identity"
        );
        assert_eq!(report.failed_status, 0, "healthy server, healthy mix");
        assert!(report.p50_us > 0, "percentiles measured");
        assert!(report.p50_us <= report.p99_us && report.p99_us <= report.p999_us);
        server.shutdown(Duration::from_secs(2));
    }

    fn read_response(s: &mut TcpStream) -> String {
        // Responses always carry Content-Length; read head, then body.
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(p) = find_head_end(&buf) {
                break p;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        while buf.len() < head_end + 4 + len {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0);
            buf.extend_from_slice(&chunk[..n]);
        }
        String::from_utf8_lossy(&buf[..head_end + 4 + len]).to_string()
    }
}
