//! The `query_*` metrics family: request accounting, pushdown pruning
//! and cache effectiveness, in the same Prometheus-style registry
//! pattern as `collect`/`store`/`supervisor`.
//!
//! The latency histogram is cumulative fixed buckets (Prometheus `le`
//! semantics): each observation increments every bucket whose upper
//! bound admits it, plus `_count` and `_sum_us`.

use lockdown_collect::metrics::{Metric, MetricsRegistry};
use std::sync::Arc;

/// Upper bounds (microseconds) of the request-latency buckets.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    250, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

const BUCKET_NAMES: [&str; 10] = [
    "query_latency_us_le_250",
    "query_latency_us_le_1000",
    "query_latency_us_le_2500",
    "query_latency_us_le_5000",
    "query_latency_us_le_10000",
    "query_latency_us_le_25000",
    "query_latency_us_le_50000",
    "query_latency_us_le_100000",
    "query_latency_us_le_250000",
    "query_latency_us_le_1000000",
];

/// Counters and gauges for the query plane.
#[derive(Debug)]
pub struct QueryMetrics {
    registry: MetricsRegistry,
    /// HTTP requests accepted (any status).
    pub requests: Arc<Metric>,
    /// Responses with a 2xx status.
    pub responses_2xx: Arc<Metric>,
    /// Responses with a 4xx status.
    pub responses_4xx: Arc<Metric>,
    /// Responses with a 5xx status.
    pub responses_5xx: Arc<Metric>,
    /// Segments skipped before decode (stream/time/zone-map pushdown).
    pub segments_pruned: Arc<Metric>,
    /// Segments a query plan admitted (decoded or served from cache).
    pub segments_scanned: Arc<Metric>,
    /// Segments actually decoded from disk (cache misses).
    pub segments_decoded: Arc<Metric>,
    /// Segment-footer reads done for zone-map pruning decisions.
    pub footer_reads: Arc<Metric>,
    /// Decoded-segment cache hits.
    pub cache_hits: Arc<Metric>,
    /// Decoded-segment cache misses.
    pub cache_misses: Arc<Metric>,
    /// Segments evicted from the cache to stay under budget.
    pub cache_evictions: Arc<Metric>,
    /// Bytes of decoded records currently held by the cache.
    pub cache_bytes: Arc<Metric>,
    /// Latency observations recorded.
    pub latency_count: Arc<Metric>,
    /// Sum of observed latencies, microseconds.
    pub latency_sum_us: Arc<Metric>,
    /// Cumulative latency buckets, one per [`LATENCY_BUCKETS_US`] bound,
    /// plus the implicit `+Inf` (== `latency_count`).
    pub latency_buckets: [Arc<Metric>; 10],
}

impl QueryMetrics {
    /// Build the metric set inside a fresh registry.
    pub fn new() -> Arc<QueryMetrics> {
        let mut r = MetricsRegistry::new();
        let latency_buckets = BUCKET_NAMES
            .map(|name| r.counter(name, "Requests at or under this latency (cumulative)"));
        Arc::new(QueryMetrics {
            requests: r.counter("query_requests_total", "HTTP requests accepted"),
            responses_2xx: r.counter("query_responses_2xx_total", "2xx responses"),
            responses_4xx: r.counter("query_responses_4xx_total", "4xx responses"),
            responses_5xx: r.counter("query_responses_5xx_total", "5xx responses"),
            segments_pruned: r.counter(
                "query_segments_pruned_total",
                "Segments skipped before decode by predicate pushdown",
            ),
            segments_scanned: r.counter(
                "query_segments_scanned_total",
                "Segments admitted by a query plan",
            ),
            segments_decoded: r.counter(
                "query_segments_decoded_total",
                "Segments decoded from disk (cache misses)",
            ),
            footer_reads: r.counter(
                "query_footer_reads_total",
                "Segment footers read for zone-map pruning",
            ),
            cache_hits: r.counter("query_cache_hits_total", "Decoded-segment cache hits"),
            cache_misses: r.counter("query_cache_misses_total", "Decoded-segment cache misses"),
            cache_evictions: r.counter(
                "query_cache_evictions_total",
                "Segments evicted to stay under the byte budget",
            ),
            cache_bytes: r.gauge(
                "query_cache_bytes",
                "Bytes of decoded records held by the cache",
            ),
            latency_count: r.counter("query_latency_us_count", "Latency observations"),
            latency_sum_us: r.counter("query_latency_us_sum", "Sum of observed latencies (us)"),
            latency_buckets,
            registry: r,
        })
    }

    /// Record one request latency into the cumulative buckets.
    pub fn observe_latency_us(&self, us: u64) {
        self.latency_count.inc();
        self.latency_sum_us.add(us);
        for (bound, bucket) in LATENCY_BUCKETS_US.iter().zip(&self.latency_buckets) {
            if us <= *bound {
                bucket.inc();
            }
        }
    }

    /// Record one response's status class.
    pub fn observe_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }

    /// The underlying registry (for lookups and snapshot composition).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Prometheus-style text snapshot of the `query_*` family.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_cumulative() {
        let m = QueryMetrics::new();
        m.observe_latency_us(250); // boundary: included in its bucket
        m.observe_latency_us(251); // just over: next bucket up
        m.observe_latency_us(2_000_000); // over the top bound: +Inf only
        assert_eq!(m.latency_buckets[0].get(), 1);
        assert_eq!(m.latency_buckets[1].get(), 2);
        assert_eq!(m.latency_buckets[9].get(), 2);
        assert_eq!(m.latency_count.get(), 3);
        assert_eq!(m.latency_sum_us.get(), 2_000_501);
        let text = m.render();
        assert!(text.contains("query_latency_us_le_250 1"));
        assert!(text.contains("query_latency_us_count 3"));
    }
}
