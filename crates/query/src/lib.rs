//! The query plane: serve the archive, don't just replay it.
//!
//! The columnar store (PR 4) was built with one consumer — the figure
//! suite's replay path. This crate turns it into a read-serving layer
//! with a second, independent consumer: a [`plan::QueryPlan`] predicate
//! language (time range, vantage, traffic class, AS, port, direction)
//! compiled against the archive manifest, executed by a
//! [`engine::QueryEngine`] with predicate pushdown — manifest time spans
//! and segment zone-map footers prune whole segments before any column
//! is decoded — and a byte-budgeted LRU ([`cache`]) of decoded hot
//! segments so dashboard-style repeat queries never re-decode. On top
//! sit a hand-rolled HTTP/1.1 server ([`http`]) over
//! `std::net::TcpListener` with a bounded connection pool and a
//! Prometheus-style `query_*` metrics family ([`metrics`]), and a
//! concurrent load generator ([`loadgen`]) that both *verifies* (served
//! figures must be byte-identical to the engine's own output) and
//! *stresses* (thousands of keep-alive clients, p50/p99/p999 reporting).
//!
//! Like its siblings the crate is dependency-free beyond the workspace:
//! HTTP parsing, JSON encoding and the seeded request mix are all
//! hand-rolled over `std`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod plan;

pub use cache::SegmentCache;
pub use engine::{QueryEngine, QueryOutput};
pub use http::{Request, Response, Server};
pub use loadgen::{LoadConfig, LoadReport};
pub use metrics::QueryMetrics;
pub use plan::QueryPlan;
