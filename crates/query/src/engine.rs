//! Predicate-pushdown execution against the archive manifest.
//!
//! [`QueryEngine::execute`] resolves a [`QueryPlan`] in three stages,
//! cheapest first:
//!
//! 1. **Manifest pruning** (no I/O): segments whose stream doesn't match,
//!    whose `[min_start, max_end]` span cannot overlap the time window,
//!    or which hold zero records are skipped outright.
//! 2. **Zone-map pruning** (footer read, no column decode): with a port
//!    predicate, the segment footer's `SrcPort`/`DstPort` zone maps are
//!    consulted — a port outside *both* zones proves no record matches
//!    (a flow matches on either end, so only double exclusion prunes).
//! 3. **Decode + filter**: surviving segments are decoded through the
//!    byte-budgeted [`SegmentCache`] and filtered record-by-record.
//!
//! Every stage is counted in the `query_*` registry, so "pruning is
//! real" is an assertable property, not a code comment.

use crate::cache::SegmentCache;
use crate::metrics::QueryMetrics;
use crate::plan::QueryPlan;
use lockdown_analysis::appclass::Classifier;
use lockdown_flow::record::FlowRecord;
use lockdown_store::{ArchiveReader, Column, StoreError, StoreMetrics};
use lockdown_topology::registry::Registry;
use lockdown_traffic::plan::Cell;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Default decoded-segment cache budget (bytes).
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// The archive's read-serving face: manifest, cache, classifier and
/// metrics under one roof. All methods take `&self` — one engine serves
/// every HTTP worker concurrently.
pub struct QueryEngine {
    reader: ArchiveReader,
    store_metrics: Arc<StoreMetrics>,
    metrics: Arc<QueryMetrics>,
    cache: SegmentCache,
    classifier: Classifier,
}

/// What one query matched, plus what the scan did to find it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// Flow records matching every predicate.
    pub flows: u64,
    /// Their summed layer-3 bytes.
    pub bytes: u64,
    /// Their summed packets.
    pub packets: u64,
    /// Matched bytes binned by flow-start hour (unix hour-start → bytes),
    /// the same binning every paper figure uses.
    pub hourly: BTreeMap<u64, u64>,
    /// Segments admitted by pushdown (decoded or served from cache).
    pub segments_scanned: u64,
    /// Segments skipped before decode.
    pub segments_pruned: u64,
    /// Of the scanned segments, how many came from the cache.
    pub segments_cached: u64,
}

impl QueryOutput {
    /// Render as a JSON object (stable key order).
    pub fn render_json(&self) -> String {
        let hourly: Vec<String> = self
            .hourly
            .iter()
            .map(|(h, b)| format!("[{h},{b}]"))
            .collect();
        format!(
            "{{\"flows\":{},\"bytes\":{},\"packets\":{},\"segments_scanned\":{},\"segments_pruned\":{},\"segments_cached\":{},\"hourly\":[{}]}}",
            self.flows,
            self.bytes,
            self.packets,
            self.segments_scanned,
            self.segments_pruned,
            self.segments_cached,
            hourly.join(",")
        )
    }
}

impl QueryEngine {
    /// Open the archive at `dir`. `Ok(None)` when no manifest exists.
    /// The classifier is built against the synthesized registry — the
    /// same deterministic Table 1 inventory every engine run uses.
    pub fn open(dir: &Path, cache_bytes: u64) -> Result<Option<QueryEngine>, StoreError> {
        let store_metrics = StoreMetrics::new();
        let reader = match ArchiveReader::open(dir, Arc::clone(&store_metrics))? {
            Some(r) => r,
            None => return Ok(None),
        };
        let metrics = QueryMetrics::new();
        Ok(Some(QueryEngine {
            reader,
            store_metrics,
            cache: SegmentCache::new(cache_bytes, Arc::clone(&metrics)),
            metrics,
            classifier: Classifier::from_registry(&Registry::synthesize()),
        }))
    }

    /// The query-plane metrics family.
    pub fn metrics(&self) -> &Arc<QueryMetrics> {
        &self.metrics
    }

    /// The store metrics backing the reader (decode I/O accounting).
    pub fn store_metrics(&self) -> &Arc<StoreMetrics> {
        &self.store_metrics
    }

    /// The underlying manifest reader.
    pub fn reader(&self) -> &ArchiveReader {
        &self.reader
    }

    /// One combined Prometheus snapshot: the `query_*` family followed by
    /// the reader's `store_*` family.
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        self.metrics.registry().render_into(&mut out);
        self.store_metrics.registry().render_into(&mut out);
        out
    }

    /// Read one cell through the cache: a hit returns the shared decoded
    /// batch, a miss decodes from disk, counts `query_segments_decoded`,
    /// and retains the batch under the byte budget.
    pub fn read_cell(&self, cell: Cell) -> Result<Arc<Vec<FlowRecord>>, StoreError> {
        self.read_cell_tracked(cell).map(|(records, _)| records)
    }

    /// `read_cell`, also reporting whether the batch came from the cache.
    fn read_cell_tracked(&self, cell: Cell) -> Result<(Arc<Vec<FlowRecord>>, bool), StoreError> {
        if let Some(records) = self.cache.get(cell) {
            return Ok((records, true));
        }
        let records = Arc::new(self.reader.read_cell(cell)?);
        self.metrics.segments_decoded.inc();
        self.cache.insert(cell, Arc::clone(&records));
        Ok((records, false))
    }

    /// Execute one plan over the whole manifest with predicate pushdown.
    ///
    /// A CRC-failing segment aborts the query with an error naming the
    /// segment (the caller degrades per supervisor conventions); it never
    /// poisons the engine — healthy segments keep serving other queries.
    pub fn execute(&self, plan: &QueryPlan) -> Result<QueryOutput, StoreError> {
        let window = plan.time_range();
        let mut out = QueryOutput {
            flows: 0,
            bytes: 0,
            packets: 0,
            hourly: BTreeMap::new(),
            segments_scanned: 0,
            segments_pruned: 0,
            segments_cached: 0,
        };
        // The manifest is iterated without I/O; only survivors touch disk.
        let metas: Vec<_> = self.reader.segments().cloned().collect();
        for meta in metas {
            // Stage 1: manifest pruning (stream, time span, emptiness).
            if plan.stream.is_some_and(|s| meta.cell.stream != s) || !window.admits_meta(&meta) {
                out.segments_pruned += 1;
                continue;
            }
            // Stage 2: zone-map pruning for port predicates. Skip the
            // footer read when the cell is already cached — the decoded
            // batch is free anyway.
            if let Some(port) = plan.port {
                if !self.cache.contains(meta.cell) {
                    let footer = self.reader.read_footer(meta.cell)?;
                    self.metrics.footer_reads.inc();
                    let excluded =
                        |col: Column| footer.zone(col).is_some_and(|z| !z.admits(u64::from(port)));
                    if excluded(Column::SrcPort) && excluded(Column::DstPort) {
                        out.segments_pruned += 1;
                        continue;
                    }
                }
            }
            // Stage 3: decode (through the cache) and filter.
            let (records, was_hit) = self.read_cell_tracked(meta.cell)?;
            out.segments_scanned += 1;
            if was_hit {
                out.segments_cached += 1;
            }
            for r in records.iter() {
                if !plan.admits_record(r) {
                    continue;
                }
                if plan
                    .class
                    .is_some_and(|c| self.classifier.classify(r) != Some(c))
                {
                    continue;
                }
                out.flows += 1;
                out.bytes += r.bytes;
                out.packets += r.packets;
                *out.hourly.entry(r.start.floor_hour().unix()).or_insert(0) += r.bytes;
            }
        }
        self.metrics.segments_pruned.add(out.segments_pruned);
        self.metrics.segments_scanned.add(out.segments_scanned);
        Ok(out)
    }
}
