//! Hand-rolled JSON string escaping and the few extractors the load
//! generator needs — no serialization dependency, same as the rest of
//! the workspace.
//!
//! This is deliberately not a JSON parser: the query plane's responses
//! are flat objects built by this repo, so the load generator only needs
//! to pull one string field, one integer field, or one string array out
//! of a known-shape document.

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Unescape a JSON string body (the part between the quotes). Returns
/// `None` on malformed escapes.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Find the raw (still-escaped) body of `"key":"..."` in a flat JSON
/// object, respecting escapes inside the value.
fn raw_string_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return Some(&rest[..i]),
            _ => {}
        }
    }
    None
}

/// Extract and unescape `"key":"value"` from a flat JSON object.
pub fn string_field(doc: &str, key: &str) -> Option<String> {
    unescape(raw_string_field(doc, key)?)
}

/// Extract `"key":123` from a flat JSON object.
pub fn u64_field(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let digits: String = doc[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extract a flat string array `"key":["a","b",...]` from a JSON object.
pub fn string_array(doc: &str, key: &str) -> Option<Vec<String>> {
    let needle = format!("\"{key}\":[");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let mut out = Vec::new();
    let mut i = 0;
    let bytes = rest.as_bytes();
    loop {
        while i < bytes.len() && (bytes[i] == b',' || bytes[i] == b' ') {
            i += 1;
        }
        match bytes.get(i)? {
            b']' => return Some(out),
            b'"' => {
                i += 1;
                let body_start = i;
                let mut escaped = false;
                loop {
                    let c = *bytes.get(i)?;
                    if escaped {
                        escaped = false;
                    } else if c == b'\\' {
                        escaped = true;
                    } else if c == b'"' {
                        break;
                    }
                    i += 1;
                }
                out.push(unescape(&rest[body_start..i])?);
                i += 1;
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash\r\u{1}";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
    }

    #[test]
    fn extracts_fields_from_flat_objects() {
        let doc = r#"{"name":"fig9:ISP-CE","render":"a\nb \"c\"","flows":42,"tail":"x"}"#;
        assert_eq!(string_field(doc, "name").unwrap(), "fig9:ISP-CE");
        assert_eq!(string_field(doc, "render").unwrap(), "a\nb \"c\"");
        assert_eq!(u64_field(doc, "flows"), Some(42));
        assert_eq!(string_field(doc, "missing"), None);
    }

    #[test]
    fn extracts_string_arrays() {
        let doc = r#"{"figures":["table2","fig9:ISP-CE","a\"b"]}"#;
        assert_eq!(
            string_array(doc, "figures").unwrap(),
            vec!["table2", "fig9:ISP-CE", "a\"b"]
        );
        assert_eq!(string_array(doc, "figures").unwrap().len(), 3);
        assert_eq!(string_array("{}", "figures"), None);
    }
}
