//! The predicate language: what a dashboard may ask the archive.
//!
//! A [`QueryPlan`] is a conjunction of optional predicates over the flow
//! columns the paper's analyses filter on: a half-open time window over
//! flow starts, one stream (vantage point, ISP transit or EDU), one
//! application class, one AS number, one transport port (matched on
//! either end, like the §4 port analyses) and one direction. Parsing is
//! from decoded `key=value` pairs — the same surface whether they came
//! from `GET /query?...` or from `lockdown query` flags.

use lockdown_analysis::appclass::PaperClass;
use lockdown_flow::record::{Direction, FlowRecord};
use lockdown_flow::time::Date;
use lockdown_store::TimeRange;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// A conjunction of column predicates, compiled against the manifest by
/// [`crate::engine::QueryEngine::execute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryPlan {
    /// First admitted flow-start second (inclusive).
    pub from: Option<u64>,
    /// First excluded flow-start second (exclusive).
    pub to: Option<u64>,
    /// Restrict to one stream.
    pub stream: Option<Stream>,
    /// Restrict to one application class (Table 1 filter inventory).
    pub class: Option<PaperClass>,
    /// Restrict to flows with this AS on either end.
    pub asn: Option<u32>,
    /// Restrict to flows with this port on either end.
    pub port: Option<u16>,
    /// Restrict to one direction (meaningful for the EDU stream).
    pub direction: Option<Direction>,
}

/// Class keys accepted by `class=`, one per [`PaperClass::ALL`] entry.
pub const CLASS_KEYS: [(&str, PaperClass); 9] = [
    ("webconf", PaperClass::WebConf),
    ("vod", PaperClass::Vod),
    ("gaming", PaperClass::Gaming),
    ("social", PaperClass::SocialMedia),
    ("messaging", PaperClass::Messaging),
    ("email", PaperClass::Email),
    ("educational", PaperClass::Educational),
    ("collab", PaperClass::CollabWorking),
    ("cdn", PaperClass::Cdn),
];

/// Stream keys accepted by `vantage=`: every vantage label (lowercased),
/// plus the two non-vantage streams.
pub fn stream_keys() -> Vec<(String, Stream)> {
    let mut keys: Vec<(String, Stream)> = VantagePoint::ALL
        .iter()
        .map(|&vp| (vp.label().to_ascii_lowercase(), Stream::Vantage(vp)))
        .collect();
    keys.push(("isp-transit".into(), Stream::IspTransit));
    keys.push(("edu-directional".into(), Stream::Edu));
    keys
}

fn parse_time(value: &str, what: &str) -> Result<u64, String> {
    if let Ok(secs) = value.parse::<u64>() {
        return Ok(secs);
    }
    let parts: Vec<&str> = value.split('-').collect();
    if parts.len() == 3 {
        if let (Ok(y), Ok(m), Ok(d)) = (
            parts[0].parse::<i32>(),
            parts[1].parse::<u8>(),
            parts[2].parse::<u8>(),
        ) {
            if (1..=12).contains(&m) && (1..=31).contains(&d) {
                return Ok(Date::new(y, m, d).midnight().unix());
            }
        }
    }
    Err(format!(
        "bad {what} '{value}': want unix seconds or YYYY-MM-DD"
    ))
}

impl QueryPlan {
    /// Parse a plan from decoded `key=value` pairs. Unknown keys and
    /// unparseable values are errors naming the culprit — the HTTP layer
    /// maps them to 400, the CLI to exit 1.
    pub fn parse<'a>(
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<QueryPlan, String> {
        let mut plan = QueryPlan::default();
        for (key, value) in pairs {
            match key {
                "from" => plan.from = Some(parse_time(value, "from")?),
                // A date given as `to` means "up to the end of the day
                // before": the exclusive midnight boundary.
                "to" => plan.to = Some(parse_time(value, "to")?),
                "vantage" => {
                    let want = value.to_ascii_lowercase();
                    plan.stream = Some(
                        stream_keys()
                            .into_iter()
                            .find(|(k, _)| *k == want)
                            .map(|(_, s)| s)
                            .ok_or_else(|| {
                                format!(
                                    "unknown vantage '{value}': want one of {}",
                                    stream_keys()
                                        .into_iter()
                                        .map(|(k, _)| k)
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                )
                            })?,
                    );
                }
                "class" => {
                    plan.class = Some(
                        CLASS_KEYS
                            .iter()
                            .find(|(k, _)| *k == value)
                            .map(|&(_, c)| c)
                            .ok_or_else(|| {
                                format!(
                                    "unknown class '{value}': want one of {}",
                                    CLASS_KEYS.map(|(k, _)| k).join(", ")
                                )
                            })?,
                    );
                }
                "as" => {
                    plan.asn = Some(
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("bad as '{value}': want an AS number"))?,
                    );
                }
                "port" => {
                    plan.port = Some(
                        value
                            .parse::<u16>()
                            .map_err(|_| format!("bad port '{value}': want 0..=65535"))?,
                    );
                }
                "direction" => {
                    plan.direction = Some(match value {
                        "ingress" => Direction::Ingress,
                        "egress" => Direction::Egress,
                        "unknown" => Direction::Unknown,
                        other => {
                            return Err(format!(
                                "bad direction '{other}': want ingress, egress or unknown"
                            ))
                        }
                    });
                }
                other => return Err(format!("unknown query key '{other}'")),
            }
        }
        if plan.time_range().is_empty() {
            return Err("empty time range: from must be before to".into());
        }
        Ok(plan)
    }

    /// The plan's time window, unbounded ends filled in.
    pub fn time_range(&self) -> TimeRange {
        TimeRange {
            from: self.from.unwrap_or(0),
            to: self.to.unwrap_or(u64::MAX),
        }
    }

    /// Whether a decoded record passes every per-record predicate. The
    /// class predicate is evaluated by the caller (it needs the
    /// classifier); everything else is column comparisons.
    pub fn admits_record(&self, r: &FlowRecord) -> bool {
        self.time_range().admits_start(r.start.unix())
            && self
                .port
                .is_none_or(|p| r.key.src_port == p || r.key.dst_port == p)
            && self.asn.is_none_or(|a| r.src_as == a || r.dst_as == a)
            && self.direction.is_none_or(|d| r.direction == d)
    }

    /// Render back to a canonical query string (no percent-escaping
    /// needed: every key and value is URL-safe by construction). The
    /// load generator uses this to build its seeded request mix.
    pub fn to_query_string(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(f) = self.from {
            parts.push(format!("from={f}"));
        }
        if let Some(t) = self.to {
            parts.push(format!("to={t}"));
        }
        if let Some(s) = self.stream {
            let key = stream_keys()
                .into_iter()
                .find(|&(_, k)| k == s)
                .map(|(k, _)| k)
                .expect("every stream has a key");
            parts.push(format!("vantage={key}"));
        }
        if let Some(c) = self.class {
            let key = CLASS_KEYS
                .iter()
                .find(|&&(_, k)| k == c)
                .map(|&(k, _)| k)
                .expect("every class has a key");
            parts.push(format!("class={key}"));
        }
        if let Some(a) = self.asn {
            parts.push(format!("as={a}"));
        }
        if let Some(p) = self.port {
            parts.push(format!("port={p}"));
        }
        if let Some(d) = self.direction {
            parts.push(format!(
                "direction={}",
                match d {
                    Direction::Ingress => "ingress",
                    Direction::Egress => "egress",
                    Direction::Unknown => "unknown",
                }
            ));
        }
        parts.join("&")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_predicate() {
        let plan = QueryPlan::parse([
            ("from", "2020-03-01"),
            ("to", "2020-04-01"),
            ("vantage", "isp-ce"),
            ("class", "webconf"),
            ("as", "64501"),
            ("port", "443"),
            ("direction", "ingress"),
        ])
        .unwrap();
        assert_eq!(plan.from, Some(Date::new(2020, 3, 1).midnight().unix()));
        assert_eq!(plan.to, Some(Date::new(2020, 4, 1).midnight().unix()));
        assert_eq!(plan.stream, Some(Stream::Vantage(VantagePoint::IspCe)));
        assert_eq!(plan.class, Some(PaperClass::WebConf));
        assert_eq!(plan.asn, Some(64501));
        assert_eq!(plan.port, Some(443));
        assert_eq!(plan.direction, Some(Direction::Ingress));
    }

    #[test]
    fn round_trips_through_query_string() {
        let plan = QueryPlan::parse([
            ("from", "1583020800"),
            ("vantage", "isp-transit"),
            ("port", "3389"),
        ])
        .unwrap();
        let qs = plan.to_query_string();
        let pairs: Vec<(&str, &str)> = qs
            .split('&')
            .map(|kv| kv.split_once('=').unwrap())
            .collect();
        assert_eq!(QueryPlan::parse(pairs).unwrap(), plan);
    }

    #[test]
    fn rejects_unknowns_and_empty_windows() {
        assert!(QueryPlan::parse([("frobnicate", "1")])
            .unwrap_err()
            .contains("unknown query key"));
        assert!(QueryPlan::parse([("vantage", "moon")])
            .unwrap_err()
            .contains("unknown vantage"));
        assert!(QueryPlan::parse([("from", "10"), ("to", "10")])
            .unwrap_err()
            .contains("empty time range"));
    }
}
