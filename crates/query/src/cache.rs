//! Byte-budgeted LRU of decoded segments.
//!
//! Decoding a segment (varint columns → `Vec<FlowRecord>`) dominates
//! query cost once pushdown has pruned the rest; dashboards re-ask the
//! same windows constantly. The cache holds decoded batches behind
//! `Arc` (readers share, eviction never invalidates an in-flight
//! reference) under a byte budget charged at `records ×
//! size_of::<FlowRecord>()`. Recency is a monotone tick per entry —
//! eviction removes the smallest tick until the budget holds.

use crate::metrics::QueryMetrics;
use lockdown_flow::record::FlowRecord;
use lockdown_traffic::plan::Cell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

struct Entry {
    records: Arc<Vec<FlowRecord>>,
    bytes: u64,
    tick: u64,
}

struct Inner {
    map: HashMap<Cell, Entry>,
    used: u64,
    tick: u64,
}

/// A shared LRU of decoded segments under a byte budget.
pub struct SegmentCache {
    inner: Mutex<Inner>,
    budget: u64,
    metrics: Arc<QueryMetrics>,
}

/// Cost of one cached record.
fn record_cost() -> u64 {
    std::mem::size_of::<FlowRecord>() as u64
}

impl SegmentCache {
    /// A cache holding at most `budget_bytes` of decoded records.
    pub fn new(budget_bytes: u64, metrics: Arc<QueryMetrics>) -> SegmentCache {
        SegmentCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                used: 0,
                tick: 0,
            }),
            budget: budget_bytes,
            metrics,
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Look one cell up, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, cell: Cell) -> Option<Arc<Vec<FlowRecord>>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&cell) {
            Some(e) => {
                e.tick = tick;
                self.metrics.cache_hits.inc();
                Some(Arc::clone(&e.records))
            }
            None => {
                self.metrics.cache_misses.inc();
                None
            }
        }
    }

    /// Whether one cell is currently cached, without touching recency or
    /// the hit/miss counters (used for pruning decisions, not reads).
    pub fn contains(&self, cell: Cell) -> bool {
        self.inner
            .lock()
            .expect("cache lock")
            .map
            .contains_key(&cell)
    }

    /// Insert one decoded cell, evicting least-recently-used entries
    /// until the budget holds. A batch larger than the whole budget is
    /// still served (the `Arc` is returned) but not retained.
    pub fn insert(&self, cell: Cell, records: Arc<Vec<FlowRecord>>) {
        let bytes = records.len() as u64 * record_cost();
        let mut inner = self.inner.lock().expect("cache lock");
        if bytes > self.budget {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            cell,
            Entry {
                records,
                bytes,
                tick,
            },
        ) {
            inner.used -= old.bytes;
        }
        inner.used += bytes;
        while inner.used > self.budget {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&c, _)| c)
                .expect("over budget implies non-empty");
            let evicted = inner.map.remove(&oldest).expect("just found");
            inner.used -= evicted.bytes;
            self.metrics.cache_evictions.inc();
        }
        self.metrics.cache_bytes.set(inner.used);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::record::FlowKey;
    use lockdown_flow::time::Date;
    use lockdown_topology::vantage::VantagePoint;
    use lockdown_traffic::plan::Stream;
    use std::net::Ipv4Addr;

    fn cell(hour: u8) -> Cell {
        Cell {
            stream: Stream::Vantage(VantagePoint::IspCe),
            date: Date::new(2020, 3, 25),
            hour,
        }
    }

    fn batch(n: usize) -> Arc<Vec<FlowRecord>> {
        let key = FlowKey {
            src_addr: Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1,
            dst_port: 2,
            protocol: lockdown_flow::protocol::IpProtocol::Udp,
        };
        Arc::new(vec![
            FlowRecord::builder(
                key,
                Date::new(2020, 3, 25).midnight()
            )
            .build();
            n
        ])
    }

    #[test]
    fn lru_evicts_oldest_under_byte_budget() {
        let metrics = QueryMetrics::new();
        // Budget: exactly two 10-record batches.
        let cache = SegmentCache::new(20 * record_cost(), Arc::clone(&metrics));
        cache.insert(cell(0), batch(10));
        cache.insert(cell(1), batch(10));
        assert!(cache.get(cell(0)).is_some()); // refresh 0 → 1 is LRU
        cache.insert(cell(2), batch(10));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(cell(1)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(cell(0)).is_some());
        assert!(cache.get(cell(2)).is_some());
        assert_eq!(metrics.cache_evictions.get(), 1);
        assert_eq!(metrics.cache_bytes.get(), 20 * record_cost());
        // Oversized batches are never retained.
        cache.insert(cell(3), batch(100));
        assert!(cache.get(cell(3)).is_none());
    }
}
