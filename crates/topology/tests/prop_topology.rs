//! Property tests for the topology substrate: the LPM trie must agree with
//! the linear-scan oracle on arbitrary prefix sets, and prefixes must
//! behave like the sets they denote.

use lockdown_topology::prefix::{Ipv4Prefix, LinearPrefixTable, LpmTable};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr::from(addr), len))
}

proptest! {
    /// The trie and the linear oracle agree on every lookup. Duplicated
    /// prefixes resolve to the *last* insert in the trie; feed the oracle
    /// deduplicated last-wins entries to match.
    #[test]
    #[test]
    fn trie_matches_linear_oracle(
        prefixes in prop::collection::vec((arb_prefix(), any::<u32>()), 0..60),
        probes in prop::collection::vec(any::<u32>(), 0..100),
    ) {
        let mut trie = LpmTable::new();
        let mut last: std::collections::BTreeMap<Ipv4Prefix, u32> = Default::default();
        for (p, v) in &prefixes {
            trie.insert(*p, *v);
            last.insert(*p, *v);
        }
        let mut linear = LinearPrefixTable::new();
        for (p, v) in &last {
            linear.insert(*p, *v);
        }
        for probe in probes {
            let addr = Ipv4Addr::from(probe);
            let got = trie.lookup(addr).copied();
            // The linear oracle needs the longest match among last-wins
            // entries; LinearPrefixTable already returns that, but when
            // several distinct prefixes share a length and contain the
            // address they cannot (disjoint equal-length prefixes can't
            // both contain one address, so it's unambiguous).
            let want = linear.lookup(addr).copied();
            prop_assert_eq!(got, want, "mismatch at {}", addr);
        }
    }

    /// contains() is consistent with nth_addr() and size().
    #[test]
    #[test]
    fn prefix_membership(p in arb_prefix(), i in any::<u64>()) {
        let member = p.nth_addr(i);
        prop_assert!(p.contains(member));
        // The address one past the prefix (when it exists) is outside.
        if p.len() > 0 {
            let beyond = u32::from(p.network()) as u64 + p.size();
            if beyond <= u32::MAX as u64 {
                prop_assert!(!p.contains(Ipv4Addr::from(beyond as u32)));
            }
        }
    }

    /// covers() is a partial order consistent with membership.
    #[test]
    #[test]
    fn covers_transitivity(a in arb_prefix(), b in arb_prefix(), probe in any::<u32>()) {
        if a.covers(b) {
            let addr = Ipv4Addr::from(probe);
            if b.contains(addr) {
                prop_assert!(a.contains(addr), "{a} covers {b} but not {addr}");
            }
        }
    }

    /// Exact-match get() returns what was inserted (last wins).
    #[test]
    #[test]
    fn get_returns_last_insert(p in arb_prefix(), v1 in any::<u32>(), v2 in any::<u32>()) {
        let mut t = LpmTable::new();
        t.insert(p, v1);
        t.insert(p, v2);
        prop_assert_eq!(t.get(p), Some(&v2));
        prop_assert_eq!(t.len(), 1);
    }

    /// Lookup of an address inside an inserted prefix never returns None.
    #[test]
    #[test]
    fn inserted_prefix_always_matches(p in arb_prefix(), v in any::<u32>(), i in any::<u64>()) {
        let mut t = LpmTable::new();
        t.insert(p, v);
        prop_assert_eq!(t.lookup(p.nth_addr(i)), Some(&v));
    }
}
