//! The paper's vantage points (§2).
//!
//! Six observation networks: one residential ISP, three IXPs, one
//! educational metropolitan network, one mobile operator, plus the roaming
//! exchange (IPX). Each vantage point pairs a network kind with a region —
//! the region decides which lockdown timeline applies, the kind decides the
//! traffic composition and export format.

use crate::asn::Region;
use lockdown_flow::exporter::ExportFormat;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of network a vantage point observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VantageKind {
    /// Residential broadband ISP (border-router NetFlow, non-transit focus).
    Isp,
    /// Internet exchange point (peering-fabric IPFIX).
    Ixp,
    /// Educational/research metropolitan network (border NetFlow).
    Edu,
    /// Mobile network operator.
    Mobile,
    /// Roaming interconnect (IPX).
    Roaming,
}

/// One of the paper's vantage points.
///
/// The ordering follows the paper's presentation order (`ALL`); the trace
/// engine relies on it to enumerate generation cells deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VantagePoint {
    /// Large Central-European ISP, >15M fixed lines ("L-ISP"/"ISP-CE").
    IspCe,
    /// Central-European IXP, >900 members, >8 Tbps peak ("IXP-CE").
    IxpCe,
    /// Southern-European IXP, >170 members, ~500 Gbps peak ("IXP-SE").
    IxpSe,
    /// US East Coast IXP, 250 members, >600 Gbps peak ("IXP-US").
    IxpUs,
    /// Educational metropolitan network, 16 institutions ("EDU").
    Edu,
    /// Central-European mobile operator, >40M customers.
    MobileCe,
    /// Roaming/IPX interconnect co-located with ISP-CE.
    RoamingIpx,
}

impl VantagePoint {
    /// All vantage points, in the paper's presentation order.
    pub const ALL: [VantagePoint; 7] = [
        VantagePoint::IspCe,
        VantagePoint::IxpCe,
        VantagePoint::IxpSe,
        VantagePoint::IxpUs,
        VantagePoint::Edu,
        VantagePoint::MobileCe,
        VantagePoint::RoamingIpx,
    ];

    /// The four vantage points Fig. 3 and Fig. 9 analyze.
    pub const CORE_FOUR: [VantagePoint; 4] = [
        VantagePoint::IspCe,
        VantagePoint::IxpCe,
        VantagePoint::IxpSe,
        VantagePoint::IxpUs,
    ];

    /// Network kind.
    pub fn kind(self) -> VantageKind {
        match self {
            VantagePoint::IspCe => VantageKind::Isp,
            VantagePoint::IxpCe | VantagePoint::IxpSe | VantagePoint::IxpUs => VantageKind::Ixp,
            VantagePoint::Edu => VantageKind::Edu,
            VantagePoint::MobileCe => VantageKind::Mobile,
            VantagePoint::RoamingIpx => VantageKind::Roaming,
        }
    }

    /// Geographic region, controlling which lockdown timeline applies.
    pub fn region(self) -> Region {
        match self {
            VantagePoint::IspCe
            | VantagePoint::IxpCe
            | VantagePoint::MobileCe
            | VantagePoint::RoamingIpx => Region::CentralEurope,
            VantagePoint::IxpSe | VantagePoint::Edu => Region::SouthernEurope,
            VantagePoint::IxpUs => Region::UsEast,
        }
    }

    /// Export format used at this vantage point (§2: NetFlow at the ISP,
    /// EDU and mobile operator; IPFIX at the IXPs).
    pub fn export_format(self) -> ExportFormat {
        match self.kind() {
            VantageKind::Ixp => ExportFormat::Ipfix,
            VantageKind::Isp => ExportFormat::NetflowV9,
            _ => ExportFormat::NetflowV5,
        }
    }

    /// Nominal peak traffic in Gbps, used to scale synthetic volumes to
    /// the relative magnitudes the paper reports.
    pub fn peak_gbps(self) -> f64 {
        match self {
            VantagePoint::IspCe => 4_000.0,
            VantagePoint::IxpCe => 8_000.0,
            VantagePoint::IxpSe => 500.0,
            VantagePoint::IxpUs => 600.0,
            VantagePoint::Edu => 40.0,
            VantagePoint::MobileCe => 1_500.0,
            VantagePoint::RoamingIpx => 100.0,
        }
    }

    /// Short label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            VantagePoint::IspCe => "ISP-CE",
            VantagePoint::IxpCe => "IXP-CE",
            VantagePoint::IxpSe => "IXP-SE",
            VantagePoint::IxpUs => "IXP-US",
            VantagePoint::Edu => "EDU",
            VantagePoint::MobileCe => "MOBILE-CE",
            VantagePoint::RoamingIpx => "IPX",
        }
    }

    /// Long description matching the paper's dataset table.
    pub fn description(self) -> &'static str {
        match self {
            VantagePoint::IspCe => "ISP, Europe (>15M fixed-network lines)",
            VantagePoint::IxpCe => "IXP, Central Europe (900 members)",
            VantagePoint::IxpSe => "IXP, South Europe (170 members)",
            VantagePoint::IxpUs => "IXP, US East Coast (250 members)",
            VantagePoint::Edu => "Educational metropolitan network (16 institutions)",
            VantagePoint::MobileCe => "Mobile operator, Europe (>40M customers)",
            VantagePoint::RoamingIpx => "Roaming network, Europe",
        }
    }
}

impl fmt::Display for VantagePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_regions() {
        assert_eq!(VantagePoint::IspCe.kind(), VantageKind::Isp);
        assert_eq!(VantagePoint::IxpUs.kind(), VantageKind::Ixp);
        assert_eq!(VantagePoint::IxpUs.region(), Region::UsEast);
        assert_eq!(VantagePoint::Edu.region(), Region::SouthernEurope);
        assert_eq!(VantagePoint::RoamingIpx.region(), Region::CentralEurope);
    }

    #[test]
    fn export_formats_match_paper() {
        assert_eq!(VantagePoint::IxpCe.export_format(), ExportFormat::Ipfix);
        assert_eq!(VantagePoint::IspCe.export_format(), ExportFormat::NetflowV9);
        assert_eq!(VantagePoint::Edu.export_format(), ExportFormat::NetflowV5);
    }

    #[test]
    fn peak_ordering() {
        // IXP-CE is the biggest fabric; EDU the smallest network.
        assert!(VantagePoint::IxpCe.peak_gbps() > VantagePoint::IspCe.peak_gbps());
        assert!(VantagePoint::Edu.peak_gbps() < VantagePoint::IxpSe.peak_gbps());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = VantagePoint::ALL.iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), VantagePoint::ALL.len());
    }
}
