//! # lockdown-topology
//!
//! The AS-level Internet model underneath the `lockdown` reproduction.
//!
//! The paper attributes flows to autonomous systems and slices every result
//! by AS identity: hypergiants vs. the rest (§3.2, Fig. 4), remote-work
//! relevant ASes (§3.4, Fig. 6), per-class provider ASes (§5, Table 1), and
//! IXP members with physical port capacities (§3.3, Fig. 5). The real
//! inputs — WHOIS, PeeringDB, BGP tables, IXP member lists — are
//! proprietary or unavailable, so this crate synthesizes an Internet with
//! the same categorical structure:
//!
//! * [`asn`] — ASNs, business categories, regions;
//! * [`hypergiants`] — the paper's Table 2, verbatim;
//! * [`prefix`] — CIDR prefixes and a longest-prefix-match trie (plus the
//!   linear-scan baseline for the ablation bench);
//! * [`registry`] — the deterministic synthetic AS registry with prefix
//!   allocations and IP→AS attribution;
//! * [`vantage`] — the paper's seven observation networks;
//! * [`ixp`] — IXP member fabrics with port capacities and the pandemic
//!   capacity upgrades of §3.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod hypergiants;
pub mod ixp;
pub mod prefix;
pub mod registry;
pub mod vantage;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::asn::{AsCategory, AsInfo, Asn, Region};
    pub use crate::hypergiants::{hypergiant, is_hypergiant, HYPERGIANTS};
    pub use crate::ixp::{IxpFabric, IxpMember};
    pub use crate::prefix::{Ipv4Prefix, LinearPrefixTable, LpmTable};
    pub use crate::registry::{
        Registry, EDU_ASN, EDU_INSTITUTIONS, ISP_CE_ASN, MOBILE_ASN, SPOTIFY_ASN, ZOOM_ASN,
    };
    pub use crate::vantage::{VantageKind, VantagePoint};
}
