//! IXP peering-fabric model: members, physical ports, capacity upgrades.
//!
//! The paper's Fig. 5 plots the ECDF of per-customer *port utilization*
//! (traffic relative to physical port capacity) at IXP-CE before and during
//! the lockdown, and §3.1 reports "port capacity increases of 1,500 Gbps
//! across many IXP members at IXP-CE and 1,300 Gbps for IXP-SE and IXP-US
//! combined". Reproducing those requires a member model that carries
//! physical port capacity over time, which this module provides.

use crate::asn::{AsCategory, Asn};
use crate::registry::Registry;
use crate::vantage::VantagePoint;
use lockdown_flow::time::Date;
use rand::prelude::*;
use rand::rngs::StdRng;

/// One IXP member: an AS connected to the peering fabric through physical
/// ports of a given aggregate capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct IxpMember {
    /// Member AS number.
    pub asn: Asn,
    /// Member business category.
    pub category: AsCategory,
    /// Aggregate physical port capacity before any pandemic upgrade, Gbps.
    pub base_capacity_gbps: f64,
    /// Capacity added during the pandemic (0 for most members), Gbps.
    pub upgrade_gbps: f64,
    /// Date the upgrade went live, if any.
    pub upgrade_date: Option<Date>,
    /// Baseline average utilization of the port (fraction of capacity) in
    /// the February base week — drawn per member, heavy spread, as the
    /// Fig. 5 ECDF shows utilizations from a few percent to >90%.
    pub base_utilization: f64,
}

impl IxpMember {
    /// Physical capacity in effect on `date`.
    pub fn capacity_gbps(&self, date: Date) -> f64 {
        match self.upgrade_date {
            Some(up) if date >= up => self.base_capacity_gbps + self.upgrade_gbps,
            _ => self.base_capacity_gbps,
        }
    }
}

/// A synthesized IXP fabric.
#[derive(Debug, Clone)]
pub struct IxpFabric {
    /// Which IXP this fabric models.
    pub vantage: VantagePoint,
    /// Connected members.
    pub members: Vec<IxpMember>,
}

impl IxpFabric {
    /// Synthesize the member base of one of the paper's IXPs.
    ///
    /// Member counts follow §2 (900 / 170 / 250); port capacities are drawn
    /// from the discrete ladder real IXPs sell (1/10/40/100 Gbps, with a few
    /// multi-100G hypergiant ports); pandemic upgrades are assigned so the
    /// fabric-wide added capacity matches §3.1 (≈1,500 Gbps at IXP-CE;
    /// ≈1,300 Gbps for IXP-SE and IXP-US combined, split ∝ size).
    pub fn synthesize(vantage: VantagePoint, registry: &Registry, seed: u64) -> IxpFabric {
        let (member_count, upgrade_budget_gbps) = match vantage {
            VantagePoint::IxpCe => (900usize, 1_500.0f64),
            VantagePoint::IxpSe => (170, 500.0),
            VantagePoint::IxpUs => (250, 800.0),
            other => panic!("{other} is not an IXP vantage point"),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1A9);

        // Candidate member ASes: everything in the registry, weighted so
        // content networks and eyeballs dominate (an IXP's member list).
        let candidates: Vec<(Asn, AsCategory)> = registry
            .ases()
            .iter()
            .map(|a| (a.asn, a.category))
            .collect();

        let mut members = Vec::with_capacity(member_count);
        for i in 0..member_count {
            // Cycle through real registry ASes first so every hypergiant and
            // provider is connected; pad with synthetic small members.
            let (asn, category) = if i < candidates.len() {
                candidates[i]
            } else {
                (Asn(70_000 + i as u32), AsCategory::Enterprise)
            };
            let base_capacity_gbps = draw_capacity(&mut rng, category);
            // Fig. 5: utilizations spread widely; draw a Beta-ish shape by
            // squaring a uniform (mass toward low utilization, long tail).
            let u: f64 = rng.gen::<f64>();
            let base_utilization = 0.05 + 0.75 * u * u;
            members.push(IxpMember {
                asn,
                category,
                base_capacity_gbps,
                upgrade_gbps: 0.0,
                upgrade_date: None,
                base_utilization,
            });
        }

        // Assign pandemic upgrades: "across many IXP members" — pick members
        // at random, step each by one port-size, until the budget is spent.
        let mut remaining = upgrade_budget_gbps;
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.shuffle(&mut rng);
        for idx in order {
            if remaining <= 0.0 {
                break;
            }
            let m = &mut members[idx];
            let step = m.base_capacity_gbps.clamp(10.0, 100.0);
            m.upgrade_gbps = step;
            // Upgrades rolled out through late March / April.
            let offset = rng.gen_range(0..30i64);
            m.upgrade_date = Some(Date::new(2020, 3, 20).add_days(offset));
            remaining -= step;
        }

        IxpFabric { vantage, members }
    }

    /// Total fabric capacity on a date, Gbps.
    pub fn total_capacity_gbps(&self, date: Date) -> f64 {
        self.members.iter().map(|m| m.capacity_gbps(date)).sum()
    }

    /// Total capacity added by pandemic upgrades, Gbps.
    pub fn total_upgrade_gbps(&self) -> f64 {
        self.members.iter().map(|m| m.upgrade_gbps).sum()
    }

    /// Number of members holding an upgrade.
    pub fn upgraded_members(&self) -> usize {
        self.members.iter().filter(|m| m.upgrade_gbps > 0.0).count()
    }
}

/// Draw a port capacity from the discrete ladder, weighted by category.
fn draw_capacity(rng: &mut StdRng, category: AsCategory) -> f64 {
    let ladder: &[(f64, f64)] = match category {
        // Hypergiants run multi-100G LAGs.
        AsCategory::Hypergiant => &[(100.0, 0.3), (200.0, 0.4), (400.0, 0.3)],
        AsCategory::Cdn | AsCategory::VodProvider | AsCategory::EyeballIsp => {
            &[(10.0, 0.2), (40.0, 0.3), (100.0, 0.5)]
        }
        AsCategory::CloudProvider | AsCategory::GamingProvider | AsCategory::SocialMedia => {
            &[(10.0, 0.3), (40.0, 0.4), (100.0, 0.3)]
        }
        _ => &[(1.0, 0.3), (10.0, 0.5), (40.0, 0.2)],
    };
    let total: f64 = ladder.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (cap, w) in ladder {
        if x < *w {
            return *cap;
        }
        x -= w;
    }
    ladder.last().expect("ladder non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(v: VantagePoint) -> IxpFabric {
        let registry = Registry::synthesize();
        IxpFabric::synthesize(v, &registry, 1)
    }

    #[test]
    fn member_counts_follow_paper() {
        assert_eq!(fabric(VantagePoint::IxpCe).members.len(), 900);
        assert_eq!(fabric(VantagePoint::IxpSe).members.len(), 170);
        assert_eq!(fabric(VantagePoint::IxpUs).members.len(), 250);
    }

    #[test]
    #[should_panic(expected = "not an IXP")]
    fn non_ixp_rejected() {
        fabric(VantagePoint::IspCe);
    }

    #[test]
    fn upgrade_budget_respected() {
        let f = fabric(VantagePoint::IxpCe);
        let total = f.total_upgrade_gbps();
        // Budget 1500, last step may overshoot by one port (≤100G).
        assert!((1_500.0..=1_600.0).contains(&total), "upgrades = {total}");
        assert!(f.upgraded_members() > 10, "upgrades must span many members");
    }

    #[test]
    fn capacity_steps_on_upgrade_date() {
        let f = fabric(VantagePoint::IxpSe);
        let m = f
            .members
            .iter()
            .find(|m| m.upgrade_gbps > 0.0)
            .expect("some member upgraded");
        let before = m.upgrade_date.unwrap().add_days(-1);
        let after = m.upgrade_date.unwrap();
        assert!(m.capacity_gbps(after) > m.capacity_gbps(before));
        assert_eq!(m.capacity_gbps(before), m.base_capacity_gbps);
    }

    #[test]
    fn total_capacity_grows_over_pandemic() {
        let f = fabric(VantagePoint::IxpCe);
        let feb = f.total_capacity_gbps(Date::new(2020, 2, 19));
        let may = f.total_capacity_gbps(Date::new(2020, 5, 17));
        assert!(may > feb + 1_400.0);
    }

    #[test]
    fn utilizations_in_range() {
        let f = fabric(VantagePoint::IxpUs);
        for m in &f.members {
            assert!(m.base_utilization > 0.0 && m.base_utilization < 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let registry = Registry::synthesize();
        let a = IxpFabric::synthesize(VantagePoint::IxpCe, &registry, 9);
        let b = IxpFabric::synthesize(VantagePoint::IxpCe, &registry, 9);
        assert_eq!(a.members, b.members);
        let c = IxpFabric::synthesize(VantagePoint::IxpCe, &registry, 10);
        assert_ne!(a.members, c.members);
    }

    #[test]
    fn hypergiants_connected() {
        let f = fabric(VantagePoint::IxpCe);
        for hg in crate::hypergiants::HYPERGIANTS {
            assert!(
                f.members.iter().any(|m| m.asn == hg.asn),
                "{} missing from fabric",
                hg.name
            );
        }
    }
}
