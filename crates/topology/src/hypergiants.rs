//! The paper's hypergiant list (Appendix A, Table 2).
//!
//! The paper adopts the hypergiant classification of Böttger et al. and
//! lists 15 ASes responsible for about 75% of the traffic delivered to the
//! Central-European ISP's end users. The list is reproduced verbatim here
//! and is the ground truth for the hypergiant/other split of §3.2 (Fig. 4).

use crate::asn::Asn;

/// One hypergiant entry from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergiant {
    /// Organization name as printed in Table 2.
    pub name: &'static str,
    /// AS number from Table 2.
    pub asn: Asn,
}

/// Table 2, verbatim.
pub const HYPERGIANTS: [Hypergiant; 15] = [
    Hypergiant {
        name: "Apple Inc",
        asn: Asn(714),
    },
    Hypergiant {
        name: "Amazon.com",
        asn: Asn(16509),
    },
    Hypergiant {
        name: "Facebook",
        asn: Asn(32934),
    },
    Hypergiant {
        name: "Google Inc.",
        asn: Asn(15169),
    },
    Hypergiant {
        name: "Akamai Technologies",
        asn: Asn(20940),
    },
    Hypergiant {
        name: "Yahoo!",
        asn: Asn(10310),
    },
    Hypergiant {
        name: "Netflix",
        asn: Asn(2906),
    },
    Hypergiant {
        name: "Hurricane Electric",
        asn: Asn(6939),
    },
    Hypergiant {
        name: "OVH",
        asn: Asn(16276),
    },
    Hypergiant {
        name: "Limelight Networks Global",
        asn: Asn(22822),
    },
    Hypergiant {
        name: "Microsoft",
        asn: Asn(8075),
    },
    Hypergiant {
        name: "Twitter, Inc.",
        asn: Asn(13414),
    },
    Hypergiant {
        name: "Twitch",
        asn: Asn(46489),
    },
    Hypergiant {
        name: "Cloudflare",
        asn: Asn(13335),
    },
    Hypergiant {
        name: "Verizon Digital Media Services",
        asn: Asn(15133),
    },
];

/// Whether an ASN is one of the paper's 15 hypergiants.
pub fn is_hypergiant(asn: Asn) -> bool {
    HYPERGIANTS.iter().any(|h| h.asn == asn)
}

/// Look up a hypergiant by ASN.
pub fn hypergiant(asn: Asn) -> Option<&'static Hypergiant> {
    HYPERGIANTS.iter().find(|h| h.asn == asn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_entries() {
        assert_eq!(HYPERGIANTS.len(), 15);
    }

    #[test]
    fn membership() {
        assert!(is_hypergiant(Asn(15_169))); // Google
        assert!(is_hypergiant(Asn(2_906))); // Netflix
        assert!(is_hypergiant(Asn(13_335))); // Cloudflare
        assert!(!is_hypergiant(Asn(3_320))); // Deutsche Telekom: eyeball, not HG
        assert!(!is_hypergiant(Asn(0)));
    }

    #[test]
    fn lookup_by_asn() {
        assert_eq!(hypergiant(Asn(8_075)).unwrap().name, "Microsoft");
        assert!(hypergiant(Asn(1)).is_none());
    }

    #[test]
    fn asns_unique() {
        let mut asns: Vec<u32> = HYPERGIANTS.iter().map(|h| h.asn.0).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), 15);
    }
}
