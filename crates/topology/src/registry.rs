//! The synthetic AS-level Internet the generator populates.
//!
//! Real WHOIS/PeeringDB data cannot ship with this reproduction, so the
//! registry *synthesizes* an Internet with the same categorical structure
//! the paper's classification relies on: the 15 hypergiants of Table 2 with
//! their real ASNs, eyeball ISPs per region, and provider ASes for each
//! application class of Table 1 (5 VoD ASes, 5 gaming ASes, 4 social
//! networks, 9 educational networks, 2 collaboration suites, 8 CDNs, …).
//! Every AS receives deterministic IPv4 prefix allocations, and the
//! registry builds the longest-prefix-match table that attributes flow
//! addresses back to ASNs — the join at the heart of §3 and §5.

use crate::asn::{AsCategory, AsInfo, Asn, Region};
use crate::hypergiants::HYPERGIANTS;
use crate::prefix::{Ipv4Prefix, LpmTable};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The ISP-CE vantage point's own AS ("large European ISP … more than 15
/// million fixed lines", §2). Documentation-range ASN.
pub const ISP_CE_ASN: Asn = Asn(64_496);
/// The EDU metropolitan network's AS (REDImadrid-like, 16 institutions).
pub const EDU_ASN: Asn = Asn(64_497);
/// The Central-European mobile operator (>40M customers).
pub const MOBILE_ASN: Asn = Asn(64_498);
/// Spotify's real ASN; the EDU analysis (§7) tracks it by AS number.
pub const SPOTIFY_ASN: Asn = Asn(8_403);
/// The Zoom-like conferencing provider whose on-premise connectors drive
/// the UDP/8801 surge of §4.
pub const ZOOM_ASN: Asn = Asn(64_620);

/// Number of member institutions in the EDU network (§2: 16 universities
/// and research centers).
pub const EDU_INSTITUTIONS: usize = 16;

/// How many eyeball ISPs the synthetic Internet carries per region
/// (including ISP-CE itself in Central Europe).
pub const EYEBALLS_PER_REGION: usize = 12;

/// The complete synthetic AS registry.
#[derive(Debug, Clone)]
pub struct Registry {
    ases: Vec<AsInfo>,
    by_asn: HashMap<Asn, usize>,
    prefixes: HashMap<Asn, Vec<Ipv4Prefix>>,
    lpm: LpmTable<Asn>,
}

impl Registry {
    /// Build the standard synthetic Internet used throughout the workspace.
    ///
    /// Construction is fully deterministic (no RNG): category counts follow
    /// Table 1, hypergiants follow Table 2, prefixes are allocated
    /// sequentially. Deterministic construction means every experiment can
    /// rebuild an identical registry without shipping state.
    pub fn synthesize() -> Registry {
        let mut b = Builder::new();

        // Table 2 hypergiants — real ASNs. Regions: the split only matters
        // for lockdown timing of *demand*, which is keyed on vantage points,
        // not content ASes; we place them US-side as most are US companies.
        for hg in HYPERGIANTS {
            b.add(hg.asn, hg.name, AsCategory::Hypergiant, Region::UsEast, 4);
        }

        // The vantage-point networks themselves.
        b.add(
            ISP_CE_ASN,
            "ISP-CE Broadband",
            AsCategory::EyeballIsp,
            Region::CentralEurope,
            16,
        );
        b.add(
            EDU_ASN,
            "EDU Metropolitan Research Network",
            AsCategory::Educational,
            Region::SouthernEurope,
            4,
        );
        b.add(
            MOBILE_ASN,
            "Mobile-CE Wireless",
            AsCategory::MobileOperator,
            Region::CentralEurope,
            8,
        );

        // Eyeball ISPs per region (ISP-CE already accounts for one CE slot).
        for region in Region::ALL {
            let n = if region == Region::CentralEurope {
                EYEBALLS_PER_REGION - 1
            } else {
                EYEBALLS_PER_REGION
            };
            for i in 0..n {
                b.add_auto(
                    &format!("Eyeball-{region:?}-{i}"),
                    AsCategory::EyeballIsp,
                    region,
                    6,
                );
            }
        }

        // Application-class provider ASes (counts follow Table 1: the VoD
        // filter lists 5 ASNs — Netflix and Amazon from Table 2 plus these
        // three non-hypergiant streamers).
        for name in ["StreamFlix", "PrimeVid", "CineStream"] {
            b.add_auto(name, AsCategory::VodProvider, Region::UsEast, 3);
        }
        // Online TV broadcasters (the TCP/8200 streamer of §4 and a peer).
        for name in ["RuTV-Stream", "TVNow"] {
            b.add_auto(name, AsCategory::TvBroadcaster, Region::CentralEurope, 2);
        }
        // Gaming: 5 providers.
        for name in [
            "PlayNet",
            "GameCloud",
            "FragServ",
            "LootBox Interactive",
            "MMO-Hosting",
        ] {
            b.add_auto(name, AsCategory::GamingProvider, Region::UsEast, 3);
        }
        // Social media: 4 (Facebook/Twitter are hypergiants; these are the
        // remaining regional networks the Table 1 filter enumerates).
        for name in ["ChatterEU", "PicShare", "MicroBlog", "ForumNet"] {
            b.add_auto(name, AsCategory::SocialMedia, Region::CentralEurope, 2);
        }
        // Educational: 8 NRENs; together with the EDU vantage point the
        // educational filter lists 9 ASNs (Table 1).
        for i in 0..8 {
            let region = match i % 3 {
                0 => Region::CentralEurope,
                1 => Region::SouthernEurope,
                _ => Region::UsEast,
            };
            b.add_auto(&format!("NREN-{i}"), AsCategory::Educational, region, 2);
        }
        // Collaborative working: 2 providers.
        for name in ["DocsTogether", "TeamBoard"] {
            b.add_auto(name, AsCategory::CollaborationProvider, Region::UsEast, 2);
        }
        // CDNs: 4 synthetic — the Table 1 CDN filter lists 8 ASNs, these
        // plus the four CDN-heavy hypergiants (Akamai, Cloudflare,
        // Limelight, Verizon DMS).
        for i in 0..4 {
            b.add_auto(&format!("CDN-{i}"), AsCategory::Cdn, Region::UsEast, 3);
        }
        // Conferencing: Zoom-like provider (Table 1 Webconf lists 1 ASN;
        // Microsoft Teams/Skype traffic is attributed to AS8075 above).
        b.add(
            ZOOM_ASN,
            "ZoomRTC",
            AsCategory::ConferencingProvider,
            Region::UsEast,
            3,
        );
        // Messaging: 3 providers (Table 1 messaging uses ports + these).
        for name in ["MsgExpress", "PingMe", "SecureChat"] {
            b.add_auto(
                name,
                AsCategory::MessagingProvider,
                Region::CentralEurope,
                2,
            );
        }
        // Music streaming: Spotify, by its real ASN (§7, Appendix B).
        b.add(
            SPOTIFY_ASN,
            "Spotify",
            AsCategory::MusicStreaming,
            Region::CentralEurope,
            2,
        );

        // Cloud providers used by enterprises for remote work.
        for i in 0..8 {
            b.add_auto(
                &format!("Cloud-{i}"),
                AsCategory::CloudProvider,
                Region::UsEast,
                4,
            );
        }
        // Enterprises: the §3.4 remote-work scatter needs a population of
        // company ASes with their own address space.
        for i in 0..48 {
            let region = match i % 3 {
                0 => Region::CentralEurope,
                1 => Region::SouthernEurope,
                _ => Region::UsEast,
            };
            b.add_auto(
                &format!("Enterprise-{i}"),
                AsCategory::Enterprise,
                region,
                1,
            );
        }
        // Hosting companies (the unknown TCP/25461 port of §4 resolves to
        // "prefixes owned by hosting companies").
        for i in 0..6 {
            b.add_auto(
                &format!("Hosting-{i}"),
                AsCategory::Hosting,
                Region::CentralEurope,
                2,
            );
        }
        // Transit carriers.
        for i in 0..5 {
            b.add_auto(
                &format!("Transit-{i}"),
                AsCategory::Transit,
                Region::UsEast,
                2,
            );
        }

        b.finish()
    }

    /// All ASes.
    pub fn ases(&self) -> &[AsInfo] {
        &self.ases
    }

    /// Look up an AS by number.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.by_asn.get(&asn).map(|&i| &self.ases[i])
    }

    /// All ASes in a category.
    pub fn in_category(&self, category: AsCategory) -> impl Iterator<Item = &AsInfo> {
        self.ases.iter().filter(move |a| a.category == category)
    }

    /// All ASes in a region.
    pub fn in_region(&self, region: Region) -> impl Iterator<Item = &AsInfo> {
        self.ases.iter().filter(move |a| a.region == region)
    }

    /// Prefixes allocated to an AS.
    pub fn prefixes_of(&self, asn: Asn) -> &[Ipv4Prefix] {
        self.prefixes.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Attribute an address to its AS via longest-prefix match.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.lpm.lookup(addr).copied()
    }

    /// The underlying LPM table (exposed for the ablation bench).
    pub fn lpm(&self) -> &LpmTable<Asn> {
        &self.lpm
    }

    /// Total number of allocated prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.values().map(Vec::len).sum()
    }

    /// A deterministic "random" host address inside one of an AS's
    /// prefixes, selected by an arbitrary index (generators pass RNG draws).
    pub fn host_addr(&self, asn: Asn, index: u64) -> Option<Ipv4Addr> {
        let prefixes = self.prefixes.get(&asn)?;
        if prefixes.is_empty() {
            return None;
        }
        let p = prefixes[(index % prefixes.len() as u64) as usize];
        // Rotate by a large odd constant so consecutive indices spread out.
        Some(p.nth_addr(index.wrapping_mul(0x9E37_79B9)))
    }
}

/// Incremental registry builder with a sequential prefix allocator.
struct Builder {
    ases: Vec<AsInfo>,
    prefixes: HashMap<Asn, Vec<Ipv4Prefix>>,
    /// Next /16 block index to hand out. Starts at 11.0.0.0 to stay clear
    /// of 10/8 and other low reserved space.
    next_block: u32,
    next_auto_asn: u32,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            ases: Vec::new(),
            prefixes: HashMap::new(),
            next_block: 11 << 8, // block index in units of /16: 11.0.0.0
            next_auto_asn: 65_000,
        }
    }

    /// Add an AS with `blocks` /16 prefixes.
    fn add(&mut self, asn: Asn, name: &str, category: AsCategory, region: Region, blocks: u32) {
        assert!(
            !self.prefixes.contains_key(&asn),
            "duplicate ASN {asn} in registry"
        );
        let mut allocated = Vec::with_capacity(blocks as usize);
        for _ in 0..blocks {
            let base = self.next_block;
            self.next_block += 1;
            // Skip into 100.64/10-free space if we ever run that far (we
            // allocate ~400 blocks; starting at 11.0.0.0 there is room for
            // thousands before any special-use range).
            let addr = Ipv4Addr::new((base >> 8) as u8, (base & 0xFF) as u8, 0, 0);
            allocated.push(Ipv4Prefix::new(addr, 16));
        }
        self.prefixes.insert(asn, allocated);
        self.ases.push(AsInfo {
            asn,
            name: name.to_string(),
            category,
            region,
        });
    }

    /// Add with an auto-assigned ASN from the synthetic range.
    fn add_auto(&mut self, name: &str, category: AsCategory, region: Region, blocks: u32) {
        let asn = Asn(self.next_auto_asn);
        self.next_auto_asn += 1;
        self.add(asn, name, category, region, blocks);
    }

    fn finish(self) -> Registry {
        let mut lpm = LpmTable::new();
        for (asn, prefixes) in &self.prefixes {
            for p in prefixes {
                lpm.insert(*p, *asn);
            }
        }
        let by_asn = self
            .ases
            .iter()
            .enumerate()
            .map(|(i, a)| (a.asn, i))
            .collect();
        Registry {
            ases: self.ases,
            by_asn,
            prefixes: self.prefixes,
            lpm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_counts_follow_table1() {
        let r = Registry::synthesize();
        let count = |c| r.in_category(c).count();
        assert_eq!(count(AsCategory::Hypergiant), 15);
        assert_eq!(count(AsCategory::VodProvider), 3);
        assert_eq!(count(AsCategory::TvBroadcaster), 2);
        assert_eq!(count(AsCategory::GamingProvider), 5);
        assert_eq!(count(AsCategory::SocialMedia), 4);
        assert_eq!(count(AsCategory::Educational), 9); // 8 NRENs + EDU vantage
        assert_eq!(count(AsCategory::CollaborationProvider), 2);
        assert_eq!(count(AsCategory::Cdn), 4);
        assert_eq!(count(AsCategory::ConferencingProvider), 1);
        assert_eq!(count(AsCategory::MessagingProvider), 3);
        assert_eq!(count(AsCategory::EyeballIsp), 3 * EYEBALLS_PER_REGION);
    }

    #[test]
    fn vantage_asns_present() {
        let r = Registry::synthesize();
        assert_eq!(r.get(ISP_CE_ASN).unwrap().category, AsCategory::EyeballIsp);
        assert_eq!(r.get(EDU_ASN).unwrap().category, AsCategory::Educational);
        assert_eq!(
            r.get(MOBILE_ASN).unwrap().category,
            AsCategory::MobileOperator
        );
        assert_eq!(r.get(SPOTIFY_ASN).unwrap().name, "Spotify");
        assert!(r.get(Asn(15_169)).is_some()); // Google from Table 2
    }

    #[test]
    fn prefixes_disjoint() {
        let r = Registry::synthesize();
        let mut all: Vec<Ipv4Prefix> = r
            .ases()
            .iter()
            .flat_map(|a| r.prefixes_of(a.asn).to_vec())
            .collect();
        let total = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), total, "duplicate prefix allocations");
        // All same length here, so disjointness == uniqueness.
        assert_eq!(total, r.prefix_count());
    }

    #[test]
    fn lookup_attributes_host_addresses() {
        let r = Registry::synthesize();
        for a in r.ases() {
            for i in [0u64, 1, 17, 9_999] {
                let addr = r.host_addr(a.asn, i).unwrap();
                assert_eq!(
                    r.lookup(addr),
                    Some(a.asn),
                    "address {addr} of {} misattributed",
                    a.name
                );
            }
        }
    }

    #[test]
    fn lookup_unallocated_is_none() {
        let r = Registry::synthesize();
        assert_eq!(r.lookup(Ipv4Addr::new(203, 0, 113, 1)), None);
        assert_eq!(r.lookup(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn isp_ce_has_large_allocation() {
        let r = Registry::synthesize();
        // 15M fixed lines: ISP-CE must dwarf ordinary eyeballs.
        assert_eq!(r.prefixes_of(ISP_CE_ASN).len(), 16);
    }

    #[test]
    fn deterministic_synthesis() {
        let a = Registry::synthesize();
        let b = Registry::synthesize();
        assert_eq!(a.ases(), b.ases());
        assert_eq!(a.prefix_count(), b.prefix_count());
    }

    #[test]
    fn allocation_stays_in_safe_space() {
        let r = Registry::synthesize();
        for a in r.ases() {
            for p in r.prefixes_of(a.asn) {
                let first_octet = p.network().octets()[0];
                assert!(
                    (11..100).contains(&first_octet),
                    "prefix {p} strays outside the allocator range"
                );
            }
        }
    }
}
