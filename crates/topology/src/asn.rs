//! Autonomous system identities and categories.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous system number (32-bit, RFC 6793).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Business category of an AS — the dimension every AS-level analysis in the
/// paper slices by (hypergiants §3.2, remote-work ASes §3.4, application
/// classes §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsCategory {
    /// One of the 15 hypergiants of Table 2 (Böttger et al.).
    Hypergiant,
    /// Residential broadband provider ("eyeball network").
    EyeballIsp,
    /// Mobile network operator.
    MobileOperator,
    /// Content delivery network (non-hypergiant).
    Cdn,
    /// Cloud/hosting provider used by enterprises.
    CloudProvider,
    /// Enterprise network (companies with their own AS).
    Enterprise,
    /// University / research network.
    Educational,
    /// Gaming provider (multiplayer or cloud gaming).
    GamingProvider,
    /// Video-on-demand streaming provider (non-hypergiant).
    VodProvider,
    /// Online TV broadcaster (the TCP/8200 Russian-TV streamer of §4).
    TvBroadcaster,
    /// Social network operator.
    SocialMedia,
    /// Video conferencing / telephony provider.
    ConferencingProvider,
    /// Online collaboration suite provider.
    CollaborationProvider,
    /// Messaging service operator.
    MessagingProvider,
    /// Generic hosting company (the unattributable TCP/25461 crowd of §4).
    Hosting,
    /// Transit-only carrier.
    Transit,
    /// Music streaming (the EDU analysis tracks Spotify specifically).
    MusicStreaming,
}

impl AsCategory {
    /// All categories, for exhaustive iteration in generators and tests.
    pub const ALL: [AsCategory; 17] = [
        AsCategory::Hypergiant,
        AsCategory::EyeballIsp,
        AsCategory::MobileOperator,
        AsCategory::Cdn,
        AsCategory::CloudProvider,
        AsCategory::Enterprise,
        AsCategory::Educational,
        AsCategory::GamingProvider,
        AsCategory::VodProvider,
        AsCategory::TvBroadcaster,
        AsCategory::SocialMedia,
        AsCategory::ConferencingProvider,
        AsCategory::CollaborationProvider,
        AsCategory::MessagingProvider,
        AsCategory::Hosting,
        AsCategory::Transit,
        AsCategory::MusicStreaming,
    ];

    /// Whether users at home *receive* most of this category's traffic
    /// (content-heavy, outbound-dominant ASes).
    pub fn is_content_heavy(self) -> bool {
        matches!(
            self,
            AsCategory::Hypergiant
                | AsCategory::Cdn
                | AsCategory::VodProvider
                | AsCategory::TvBroadcaster
                | AsCategory::GamingProvider
                | AsCategory::SocialMedia
                | AsCategory::MusicStreaming
        )
    }

    /// Whether this category is relevant to remote work (§3.4: "large
    /// companies with their own AS or ASes offering cloud-based products
    /// used by companies").
    pub fn is_remote_work_relevant(self) -> bool {
        matches!(
            self,
            AsCategory::Enterprise
                | AsCategory::CloudProvider
                | AsCategory::ConferencingProvider
                | AsCategory::CollaborationProvider
        )
    }
}

impl fmt::Display for AsCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsCategory::Hypergiant => "hypergiant",
            AsCategory::EyeballIsp => "eyeball ISP",
            AsCategory::MobileOperator => "mobile operator",
            AsCategory::Cdn => "CDN",
            AsCategory::CloudProvider => "cloud provider",
            AsCategory::Enterprise => "enterprise",
            AsCategory::Educational => "educational",
            AsCategory::GamingProvider => "gaming provider",
            AsCategory::VodProvider => "VoD provider",
            AsCategory::TvBroadcaster => "TV broadcaster",
            AsCategory::SocialMedia => "social media",
            AsCategory::ConferencingProvider => "conferencing provider",
            AsCategory::CollaborationProvider => "collaboration provider",
            AsCategory::MessagingProvider => "messaging provider",
            AsCategory::Hosting => "hosting",
            AsCategory::Transit => "transit",
            AsCategory::MusicStreaming => "music streaming",
        };
        f.write_str(s)
    }
}

/// Geographic region of an AS or vantage point. Lockdown timing differs by
/// region (Europe locked down in March; the US East Coast later), which is
/// exactly the effect Fig. 1/3 show.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // region names are self-describing
pub enum Region {
    CentralEurope,
    SouthernEurope,
    UsEast,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 3] = [
        Region::CentralEurope,
        Region::SouthernEurope,
        Region::UsEast,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::CentralEurope => "Central Europe",
            Region::SouthernEurope => "Southern Europe",
            Region::UsEast => "US East Coast",
        };
        f.write_str(s)
    }
}

/// Everything the pipeline knows about one AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// AS number.
    pub asn: Asn,
    /// Organization name.
    pub name: String,
    /// Business category.
    pub category: AsCategory,
    /// Home region.
    pub region: Region,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Asn(15_169).to_string(), "AS15169");
        assert_eq!(AsCategory::EyeballIsp.to_string(), "eyeball ISP");
        assert_eq!(Region::UsEast.to_string(), "US East Coast");
    }

    #[test]
    fn category_flags() {
        assert!(AsCategory::Hypergiant.is_content_heavy());
        assert!(!AsCategory::Enterprise.is_content_heavy());
        assert!(AsCategory::CloudProvider.is_remote_work_relevant());
        assert!(!AsCategory::EyeballIsp.is_remote_work_relevant());
    }

    #[test]
    fn all_categories_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in AsCategory::ALL {
            assert!(seen.insert(format!("{c:?}")));
        }
        assert_eq!(seen.len(), 17);
    }
}
