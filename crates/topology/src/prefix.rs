//! IPv4 prefixes and the longest-prefix-match table.
//!
//! Flow pipelines attribute traffic to autonomous systems by looking up the
//! source/destination address in a BGP-derived prefix table. The paper's
//! analyses (hypergiant split §3.2, remote-work ASes §3.4, app classes §5)
//! all depend on that attribution, so the substrate implements a real LPM
//! structure: a binary trie keyed on address bits, with exact longest-match
//! semantics. A linear-scan fallback exists for the ablation bench
//! (`ablation_lpm`) that quantifies why tries are used.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Construct a prefix; host bits below the mask are cleared.
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Prefix {
        assert!(len <= 32, "prefix length out of range: {len}");
        let raw = u32::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Ipv4Prefix { addr: masked, len }
    }

    /// Network address.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a bit count, not a container
    pub fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered (2^(32-len)).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.len);
        (u32::from(addr) & mask) == self.addr
    }

    /// The `i`-th address within the prefix (wraps modulo the prefix size) —
    /// the generator's way of picking deterministic host addresses.
    pub fn nth_addr(self, i: u64) -> Ipv4Addr {
        Ipv4Addr::from(self.addr.wrapping_add((i % self.size()) as u32))
    }

    /// Whether `other` is fully contained in `self`.
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.network())
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Error parsing a prefix from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| ParsePrefixError(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError(s.to_string()))?;
        if len > 32 {
            return Err(ParsePrefixError(s.to_string()));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// A longest-prefix-match table mapping prefixes to values (ASNs here).
///
/// Implemented as a binary trie over address bits. Insertion is O(len);
/// lookup walks at most 32 nodes and returns the value of the deepest
/// matching prefix.
#[derive(Debug, Clone)]
pub struct LpmTable<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn empty() -> Node<V> {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V: Clone> Default for LpmTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> LpmTable<V> {
    /// An empty table.
    pub fn new() -> LpmTable<V> {
        LpmTable {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a prefix→value mapping. Replaces (and returns) any existing
    /// value for the identical prefix.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let bits = u32::from(prefix.network());
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(next) => next as usize,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(Node::empty());
                    self.nodes[node].children[bit] = Some(next as u32);
                    next
                }
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix-match lookup: the value of the most specific prefix
    /// containing `addr`, or `None`.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&V> {
        let bits = u32::from(addr);
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-match retrieval of a stored prefix's value.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&V> {
        let bits = u32::from(prefix.network());
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        self.nodes[node].value.as_ref()
    }
}

/// Linear-scan prefix matcher used as the ablation baseline: stores
/// `(prefix, value)` pairs and scans all of them per lookup, keeping the
/// longest match. Same results as [`LpmTable`], asymptotically worse.
#[derive(Debug, Clone, Default)]
pub struct LinearPrefixTable<V> {
    entries: Vec<(Ipv4Prefix, V)>,
}

impl<V: Clone> LinearPrefixTable<V> {
    /// An empty table.
    pub fn new() -> LinearPrefixTable<V> {
        LinearPrefixTable {
            entries: Vec::new(),
        }
    }

    /// Append a prefix→value pair.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) {
        self.entries.push((prefix, value));
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scan all prefixes for the longest one containing `addr`.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&V> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_basics() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(192, 168, 17, 200), 16);
        assert_eq!(p.network(), Ipv4Addr::new(192, 168, 0, 0)); // host bits cleared
        assert_eq!(p.len(), 16);
        assert_eq!(p.size(), 65_536);
        assert!(p.contains(Ipv4Addr::new(192, 168, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 169, 0, 0)));
        assert_eq!(p.to_string(), "192.168.0.0/16");
    }

    #[test]
    fn prefix_parse() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p, Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8));
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("hello/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn default_route() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(p.size(), 1 << 32);
    }

    #[test]
    fn nth_addr_wraps() {
        let p: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
        assert_eq!(p.nth_addr(0), Ipv4Addr::new(198, 51, 100, 0));
        assert_eq!(p.nth_addr(255), Ipv4Addr::new(198, 51, 100, 255));
        assert_eq!(p.nth_addr(256), Ipv4Addr::new(198, 51, 100, 0));
        assert!(p.contains(p.nth_addr(1_000_003)));
    }

    #[test]
    fn covers() {
        let big: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Ipv4Prefix = "10.42.0.0/16".parse().unwrap();
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(big.covers(big));
    }

    #[test]
    fn lpm_longest_match_wins() {
        let mut t = LpmTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 1u32);
        t.insert("10.1.0.0/16".parse().unwrap(), 2);
        t.insert("10.1.2.0/24".parse().unwrap(), 3);
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(&3));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 99, 1)), Some(&2));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 200, 0, 1)), Some(&1));
        assert_eq!(t.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lpm_replace() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert("10.0.0.0/8".parse().unwrap(), 1u32), None);
        assert_eq!(t.insert("10.0.0.0/8".parse().unwrap(), 9), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get("10.0.0.0/8".parse().unwrap()), Some(&9));
    }

    #[test]
    fn lpm_default_route() {
        let mut t = LpmTable::new();
        t.insert("0.0.0.0/0".parse().unwrap(), 0u32);
        t.insert("192.0.2.0/24".parse().unwrap(), 7);
        assert_eq!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(&0));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 200)), Some(&7));
    }

    #[test]
    fn lpm_host_routes() {
        let mut t = LpmTable::new();
        t.insert("192.0.2.1/32".parse().unwrap(), 1u32);
        t.insert("192.0.2.0/24".parse().unwrap(), 2);
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 1)), Some(&1));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 2)), Some(&2));
    }

    #[test]
    fn linear_matches_trie() {
        let prefixes: Vec<(Ipv4Prefix, u32)> = vec![
            ("10.0.0.0/8".parse().unwrap(), 1),
            ("10.1.0.0/16".parse().unwrap(), 2),
            ("172.16.0.0/12".parse().unwrap(), 3),
            ("192.0.2.0/24".parse().unwrap(), 4),
            ("0.0.0.0/0".parse().unwrap(), 5),
        ];
        let mut trie = LpmTable::new();
        let mut linear = LinearPrefixTable::new();
        for (p, v) in &prefixes {
            trie.insert(*p, *v);
            linear.insert(*p, *v);
        }
        for addr in [
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 99, 0, 1),
            Ipv4Addr::new(172, 20, 1, 1),
            Ipv4Addr::new(192, 0, 2, 77),
            Ipv4Addr::new(203, 0, 113, 1),
        ] {
            assert_eq!(trie.lookup(addr), linear.lookup(addr), "mismatch at {addr}");
        }
    }
}
