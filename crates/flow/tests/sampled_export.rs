//! Router-style sampled export, end to end: the exporter thins flows with
//! raw counters and announces the interval via options templates; the
//! collector reads the announcement and renormalizes. The estimator must
//! be unbiased and the announcement must survive template refresh cycles
//! and mid-stream joins.

use lockdown_flow::netflow::options::SamplingInfo;
use lockdown_flow::prelude::*;
use lockdown_flow::time::Date;
use std::net::Ipv4Addr;

fn records(n: u32, t: Timestamp) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| {
            FlowRecord::builder(
                FlowKey {
                    src_addr: Ipv4Addr::from(0x0B00_0000 + i),
                    dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                    src_port: 20_000 + (i % 40_000) as u16,
                    dst_port: 443,
                    protocol: IpProtocol::Tcp,
                },
                t.add_secs(u64::from(i % 3_000)),
            )
            .end(t.add_secs(u64::from(i % 3_000) + 30))
            .bytes(10_000)
            .packets(12)
            .build()
        })
        .collect()
}

fn run(format: ExportFormat, rate: u32) -> (u64, u64, CollectorStats) {
    let boot = Date::new(2020, 3, 25).midnight();
    let now = boot.add_hours(6);
    let flows = records(20_000, now);
    let truth: u64 = flows.iter().map(|f| f.bytes).sum();

    let mut cfg = ExporterConfig::new(format, boot);
    cfg.sampling = Some(rate);
    cfg.batch_size = 60;
    cfg.template_refresh = 10;
    let mut exporter = Exporter::new(cfg);
    let pkts = exporter.export_all(&flows, boot.add_hours(7));

    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
    let estimate: u64 = collector.records().iter().map(|r| r.bytes).sum();
    (truth, estimate, collector.stats())
}

#[test]
fn ipfix_sampled_export_is_unbiased() {
    let (truth, estimate, stats) = run(ExportFormat::Ipfix, 16);
    let err = (estimate as f64 - truth as f64).abs() / truth as f64;
    assert!(err < 0.05, "estimate off by {err:.3}");
    assert_eq!(stats.renormalized, stats.records);
    // Roughly 1-in-16 of the records arrived.
    let kept = stats.records as f64 / 20_000.0;
    assert!((kept - 1.0 / 16.0).abs() < 0.02, "kept fraction {kept:.4}");
}

#[test]
fn v9_sampled_export_is_unbiased() {
    let (truth, estimate, stats) = run(ExportFormat::NetflowV9, 8);
    let err = (estimate as f64 - truth as f64).abs() / truth as f64;
    assert!(err < 0.05, "estimate off by {err:.3}");
    assert!(stats.renormalized > 0);
}

#[test]
fn unsampled_export_untouched() {
    let (truth, estimate, stats) = run(ExportFormat::Ipfix, 1);
    assert_eq!(truth, estimate);
    assert_eq!(stats.renormalized, 0);
    assert_eq!(stats.records, 20_000);
}

#[test]
fn mid_stream_join_picks_up_announcement_at_refresh() {
    let boot = Date::new(2020, 3, 25).midnight();
    let now = boot.add_hours(6);
    let flows = records(20_000, now);
    let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
    cfg.sampling = Some(8);
    cfg.batch_size = 60;
    cfg.template_refresh = 5;
    let mut exporter = Exporter::new(cfg);
    let pkts = exporter.export_all(&flows, boot.add_hours(7));
    assert!(pkts.len() > 12);

    // Join after the first announcement: drop packets 0..2.
    let mut collector = Collector::new();
    collector.ingest_all(pkts[2..].iter().map(|p| p.as_slice()));
    let stats = collector.stats();
    // Data packets before the next refresh are dropped (no data template);
    // once the refresh (with announcement) arrives, everything counts and
    // everything is renormalized.
    assert!(stats.missing_template > 0);
    assert!(stats.records > 0);
    assert_eq!(stats.renormalized, stats.records);
}

#[test]
fn sampling_info_exposed() {
    let boot = Date::new(2020, 3, 25).midnight();
    let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
    cfg.sampling = Some(100);
    let exporter = Exporter::new(cfg);
    assert_eq!(
        exporter.sampling_info(),
        Some(SamplingInfo {
            interval: 100,
            algorithm: 1
        })
    );
    let cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
    assert_eq!(Exporter::new(cfg).sampling_info(), None);
}

#[test]
#[should_panic(expected = "v5 has no in-band sampling announcement")]
fn v5_sampled_export_rejected() {
    let boot = Date::new(2020, 3, 25).midnight();
    let mut cfg = ExporterConfig::new(ExportFormat::NetflowV5, boot);
    cfg.sampling = Some(8);
    Exporter::new(cfg);
}
