//! Property-based tests for the wire codecs: arbitrary flow records must
//! survive an encode/decode round trip in every format, and the decoders
//! must never panic on arbitrary bytes.

use lockdown_flow::ipfix;
use lockdown_flow::netflow::v9::TemplateCache;
use lockdown_flow::netflow::{v5, v9, Template};
use lockdown_flow::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Strategy for a plausible flow record. Start/end stay within a window
/// preceding the export time so v5/v9 uptime-relative encoding is exact.
fn arb_record(export_unix: u64) -> impl Strategy<Value = FlowRecord> {
    (
        (
            any::<u32>(), // src addr
            any::<u32>(), // dst addr
            any::<u16>(), // src port
            any::<u16>(), // dst port
            prop_oneof![Just(6u8), Just(17u8), Just(47u8), Just(50u8), any::<u8>()],
            0u64..3_000,         // start offset back from export
            0u64..600,           // duration
            1u64..4_000_000_000, // bytes (u32-safe for v5)
            1u64..3_000_000,     // packets
        ),
        (
            any::<u8>(),  // tcp flags
            any::<u16>(), // input if
            any::<u16>(), // output if
            0u32..65_000, // src as (16-bit-safe for v5)
            0u32..65_000, // dst as
        ),
    )
        .prop_map(
            move |(
                (sa, da, sp, dp, proto, back, dur, bytes, pkts),
                (flags, inif, outif, sas, das),
            )| {
                let start = Timestamp::from_unix(export_unix - back - dur);
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(sa),
                        dst_addr: Ipv4Addr::from(da),
                        src_port: sp,
                        dst_port: dp,
                        protocol: IpProtocol::from_number(proto),
                    },
                    start,
                )
                .end(start.add_secs(dur))
                .bytes(bytes)
                .packets(pkts)
                .tcp_flags(TcpFlags(flags))
                .interfaces(inif, outif)
                .asns(sas, das)
                .direction(Direction::Egress)
                .build()
            },
        )
}

const EXPORT_UNIX: u64 = 1_585_000_000; // 2020-03-23, within the study window

proptest! {
    #[test]
    #[test]
    fn v5_roundtrip(records in prop::collection::vec(arb_record(EXPORT_UNIX), 0..=30)) {
        let export = Timestamp::from_unix(EXPORT_UNIX);
        let boot = Timestamp::from_unix(EXPORT_UNIX - 86_400);
        let pkt = v5::encode(&records, export, boot, 7);
        let (hdr, out) = v5::decode(&pkt).unwrap();
        prop_assert_eq!(hdr.count as usize, records.len());
        prop_assert_eq!(out.len(), records.len());
        for (a, b) in records.iter().zip(&out) {
            prop_assert_eq!(a.key, b.key);
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(a.packets, b.packets);
            prop_assert_eq!(a.tcp_flags, b.tcp_flags);
            prop_assert_eq!((a.src_as, a.dst_as), (b.src_as, b.dst_as));
        }
    }

    #[test]
    #[test]
    fn v9_roundtrip(records in prop::collection::vec(arb_record(EXPORT_UNIX), 0..80)) {
        let export = Timestamp::from_unix(EXPORT_UNIX);
        let boot = Timestamp::from_unix(EXPORT_UNIX - 86_400);
        let t = Template::standard_v9(300);
        let pkt = v9::encode(&records, Some(&t), &t, export, boot, 1, 2);
        let mut cache = TemplateCache::new();
        let (_, out) = v9::decode(&pkt, &mut cache).unwrap();
        // v9 standard template has no Direction::Unknown encoding ambiguity
        // for Egress, so full equality holds.
        prop_assert_eq!(out, records);
    }

    #[test]
    #[test]
    fn ipfix_roundtrip(records in prop::collection::vec(arb_record(EXPORT_UNIX), 0..80)) {
        let export = Timestamp::from_unix(EXPORT_UNIX);
        let t = Template::standard_ipfix(256);
        let msg = ipfix::encode(&records, Some(&t), &t, export, 1, 2);
        let mut cache = TemplateCache::new();
        let (hdr, out) = ipfix::decode(&msg, &mut cache).unwrap();
        prop_assert_eq!(hdr.length as usize, msg.len());
        prop_assert_eq!(out, records);
    }

    /// Fuzz: the decoders must return an error, never panic, on junk.
    #[test]
    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = v5::decode(&bytes);
        let mut cache = TemplateCache::new();
        let _ = v9::decode(&bytes, &mut cache);
        let mut cache = TemplateCache::new();
        let _ = ipfix::decode(&bytes, &mut cache);
    }

    /// Fuzz with a valid-looking v5 header prefix to reach deeper paths.
    #[test]
    #[test]
    fn v5_header_fuzz(mut bytes in prop::collection::vec(any::<u8>(), 24..1500)) {
        bytes[0] = 0;
        bytes[1] = 5;
        let _ = v5::decode(&bytes);
    }

    /// Fuzz with valid IPFIX version+length to exercise set walking.
    #[test]
    #[test]
    fn ipfix_set_fuzz(mut bytes in prop::collection::vec(any::<u8>(), 16..1500)) {
        bytes[0] = 0;
        bytes[1] = 10;
        let len = (bytes.len() as u16).to_be_bytes();
        bytes[2] = len[0];
        bytes[3] = len[1];
        let mut cache = TemplateCache::new();
        let _ = ipfix::decode(&bytes, &mut cache);
    }

    /// Anonymization is prefix-preserving for arbitrary address pairs.
    #[test]
    #[test]
    fn anonymizer_prefix_preserving(key in any::<u64>(), a in any::<u32>(), b in any::<u32>()) {
        let anon = Anonymizer::new(key);
        let (ia, ib) = (Ipv4Addr::from(a), Ipv4Addr::from(b));
        let shared = Anonymizer::common_prefix_len(ia, ib);
        let out = Anonymizer::common_prefix_len(anon.anonymize(ia), anon.anonymize(ib));
        prop_assert_eq!(shared, out);
    }

    /// Exporter/collector composition loses no records for any batch size.
    #[test]
    #[test]
    fn export_collect_identity(
        records in prop::collection::vec(arb_record(EXPORT_UNIX), 0..200),
        batch in 1usize..64,
        refresh in 1u32..8,
    ) {
        let boot = Timestamp::from_unix(EXPORT_UNIX - 86_400);
        let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg.batch_size = batch;
        cfg.template_refresh = refresh;
        let mut exporter = Exporter::new(cfg);
        let pkts = exporter.export_all(&records, Timestamp::from_unix(EXPORT_UNIX));
        let mut collector = Collector::new();
        let n = collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
        prop_assert_eq!(n, records.len());
        prop_assert_eq!(collector.records(), &records[..]);
    }
}

mod tracefile_props {
    use lockdown_flow::time::Timestamp;
    use lockdown_flow::tracefile::{TraceReader, TraceWriter};
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary datagram sequences round-trip through the container.
        #[test]
        #[test]
        fn tracefile_roundtrip(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2_000), 0..30),
            t0 in 1_500_000_000u64..1_700_000_000,
        ) {
            let mut w = TraceWriter::new();
            for (i, p) in payloads.iter().enumerate() {
                w.push(Timestamp::from_unix(t0 + i as u64), p).unwrap();
            }
            let bytes = w.finish();
            let reader = TraceReader::open(&bytes).unwrap();
            let back: Vec<Vec<u8>> = reader.map(|r| r.unwrap().payload.to_vec()).collect();
            prop_assert_eq!(back, payloads);
        }

        /// The reader never panics on arbitrary bytes.
        #[test]
        #[test]
        fn tracefile_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4_096)) {
            if let Ok(reader) = TraceReader::open(&bytes) {
                for record in reader {
                    if record.is_err() {
                        break;
                    }
                }
            }
        }

        /// Truncating a valid trace anywhere yields an error or a clean
        /// prefix — never junk records beyond the cut.
        #[test]
        #[test]
        fn tracefile_truncation_is_safe(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..100), 1..10),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut w = TraceWriter::new();
            for (i, p) in payloads.iter().enumerate() {
                w.push(Timestamp::from_unix(1_600_000_000 + i as u64), p).unwrap();
            }
            let bytes = w.finish();
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            if let Ok(reader) = TraceReader::open(&bytes[..cut]) {
                let mut recovered = 0usize;
                for record in reader {
                    match record {
                        Ok(r) => {
                            // Every recovered payload is a true prefix record.
                            prop_assert_eq!(r.payload, payloads[recovered].as_slice());
                            recovered += 1;
                        }
                        Err(_) => break,
                    }
                }
                prop_assert!(recovered <= payloads.len());
            }
        }
    }
}
