//! Flow collector: the receiving side of the export pipeline.
//!
//! Accepts raw datagrams in any of the three formats (the version is
//! sniffed from the first two bytes, as real collectors do), maintains
//! per-observation-domain template state for the templated formats, and
//! accumulates normalized [`FlowRecord`]s plus collection statistics.
//!
//! A collector that starts mid-stream will see v9/IPFIX data sets before
//! the next template refresh arrives; each such data set is counted in
//! [`CollectorStats::missing_template`] and skipped, while records from the
//! datagram's other, decodable sets are still accepted — matching deployed
//! collector behaviour.

use crate::ipfix;
use crate::netflow::v5;
use crate::netflow::v9;
use crate::record::FlowRecord;
use crate::wire::{Cursor, WireError};
use std::collections::HashMap;

/// Counters describing what a collector has seen.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CollectorStats {
    /// Structurally valid datagrams accepted (possibly with some data sets
    /// skipped for lack of a template).
    pub packets_ok: u64,
    /// Flow records extracted.
    pub records: u64,
    /// Data sets skipped because they referenced an unseen template, counted
    /// once per skipped set; the datagram's other sets still decode.
    pub missing_template: u64,
    /// Datagrams dropped as malformed.
    pub malformed: u64,
    /// Records whose counters were actually adjusted by an announced
    /// sampling interval (saturated no-op scalings are not counted).
    pub renormalized: u64,
    /// Records whose counters clipped at `u64::MAX` while renormalizing:
    /// downstream byte/packet totals are a lower bound for these.
    pub renorm_clipped: u64,
}

/// Per-datagram outcome of [`Collector::ingest_detailed`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Whether the datagram was structurally valid and counted as accepted.
    pub ok: bool,
    /// Records contributed by this datagram.
    pub records: usize,
    /// Data sets skipped because their template was unknown.
    pub missed_sets: u32,
    /// Header sequence number (all three formats carry one).
    pub sequence: Option<u32>,
    /// Observation domain / source id from the header (v9 and IPFIX only).
    pub domain: Option<u32>,
    /// Exporter boot epoch in Unix milliseconds, derived from the header's
    /// uptime base (v5 and v9 only); shifts indicate an exporter restart.
    pub boot_epoch_ms: Option<u64>,
}

/// Scale sampled counters by the exporter's announced interval, exactly in
/// u128 arithmetic clamped at `u64::MAX`. Returns `(adjusted, clipped)`:
/// how many records actually changed, and how many clipped at the clamp
/// (including already-saturated records whose scaling was a no-op) — the
/// clip count is what tells conservation audits the totals stopped being
/// exact, which a saturating multiply would hide.
fn renormalize(
    records: &mut [FlowRecord],
    sampling: Option<crate::netflow::options::SamplingInfo>,
) -> (u64, u64) {
    let Some(info) = sampling else { return (0, 0) };
    if info.interval <= 1 {
        return (0, 0);
    }
    let mut adjusted = 0;
    let mut clipped = 0;
    for r in records.iter_mut() {
        let before = (r.bytes, r.packets);
        clipped += u64::from(crate::sampling::scale_counters(r, info.interval));
        if (r.bytes, r.packets) != before {
            adjusted += 1;
        }
    }
    (adjusted, clipped)
}

/// A multi-format flow collector.
#[derive(Debug, Default)]
pub struct Collector {
    /// v9 template state per source id.
    v9_templates: HashMap<u32, v9::TemplateCache>,
    /// IPFIX template state per observation domain.
    ipfix_templates: HashMap<u32, v9::TemplateCache>,
    records: Vec<FlowRecord>,
    stats: CollectorStats,
}

impl Collector {
    /// An empty collector with no template state.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Ingest one datagram. Returns how many records it contributed.
    pub fn ingest(&mut self, datagram: &[u8]) -> usize {
        self.ingest_detailed(datagram).records
    }

    /// Ingest one datagram, reporting per-datagram detail (header sequence,
    /// observation domain, skipped sets) for sequence-tracking collectors.
    pub fn ingest_detailed(&mut self, datagram: &[u8]) -> IngestReport {
        let mut report = IngestReport::default();
        let mut c = Cursor::new(datagram);
        let version = match c.read_u16("version sniff") {
            Ok(v) => v,
            Err(_) => {
                self.stats.malformed += 1;
                return report;
            }
        };
        let result = match version {
            v5::VERSION => v5::decode(datagram).map(|(hdr, recs)| {
                report.sequence = Some(hdr.flow_sequence);
                report.boot_epoch_ms = Some(
                    (u64::from(hdr.unix_secs) * 1000).saturating_sub(u64::from(hdr.sys_uptime_ms)),
                );
                recs
            }),
            v9::VERSION => match v9::check(datagram) {
                Ok(hdr) => {
                    let cache = self.v9_templates.entry(hdr.source_id).or_default();
                    v9::decode_tolerant(datagram, cache)
                        .map(|(hdr, recs, skipped)| (hdr, recs, skipped, cache.sampling()))
                        .map(|(hdr, mut recs, skipped, sampling)| {
                            report.sequence = Some(hdr.sequence);
                            report.domain = Some(hdr.source_id);
                            report.boot_epoch_ms = Some(
                                (u64::from(hdr.unix_secs) * 1000)
                                    .saturating_sub(u64::from(hdr.sys_uptime_ms)),
                            );
                            report.missed_sets = skipped.count;
                            let (adjusted, clipped) = renormalize(&mut recs, sampling);
                            self.stats.renormalized += adjusted;
                            self.stats.renorm_clipped += clipped;
                            recs
                        })
                }
                Err(e) => Err(e),
            },
            ipfix::VERSION => match ipfix::check(datagram) {
                Ok(hdr) => {
                    let cache = self.ipfix_templates.entry(hdr.domain_id).or_default();
                    ipfix::decode_tolerant(datagram, cache)
                        .map(|(hdr, recs, skipped)| (hdr, recs, skipped, cache.sampling()))
                        .map(|(hdr, mut recs, skipped, sampling)| {
                            report.sequence = Some(hdr.sequence);
                            report.domain = Some(hdr.domain_id);
                            report.missed_sets = skipped.count;
                            let (adjusted, clipped) = renormalize(&mut recs, sampling);
                            self.stats.renormalized += adjusted;
                            self.stats.renorm_clipped += clipped;
                            recs
                        })
                }
                Err(e) => Err(e),
            },
            found => Err(WireError::BadVersion { expected: 0, found }),
        };
        match result {
            Ok(recs) => {
                report.ok = true;
                report.records = recs.len();
                self.stats.packets_ok += 1;
                self.stats.records += recs.len() as u64;
                self.stats.missing_template += u64::from(report.missed_sets);
                self.records.extend(recs);
            }
            Err(_) => {
                self.stats.malformed += 1;
            }
        }
        report
    }

    /// Forget all template and sampling state learned for one observation
    /// domain / source id, forcing a re-learn from the next template set.
    /// Sequence-tracking collectors call this when they detect an exporter
    /// restart (boot-epoch shift).
    pub fn forget_domain(&mut self, domain: u32) {
        self.v9_templates.remove(&domain);
        self.ipfix_templates.remove(&domain);
    }

    /// Ingest a batch of datagrams.
    pub fn ingest_all<'a>(&mut self, datagrams: impl IntoIterator<Item = &'a [u8]>) -> usize {
        datagrams.into_iter().map(|d| self.ingest(d)).sum()
    }

    /// Collected records so far.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Drain collected records, leaving template state intact.
    pub fn take_records(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.records)
    }

    /// Collection statistics so far.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exporter::{ExportFormat, Exporter, ExporterConfig};
    use crate::protocol::IpProtocol;
    use crate::record::{FlowKey, FlowRecord};
    use crate::time::{Date, Timestamp};
    use std::net::Ipv4Addr;

    fn records(n: u32, t: Timestamp) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0xC633_6400 | (i & 0xFF)),
                        dst_addr: Ipv4Addr::new(198, 51, 100, 1),
                        src_port: 10_000 + i as u16,
                        dst_port: 443,
                        protocol: IpProtocol::Udp,
                    },
                    t,
                )
                .end(t.add_secs(5))
                .bytes(500 + u64::from(i))
                .packets(3)
                .build()
            })
            .collect()
    }

    fn run_roundtrip(format: ExportFormat) {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(6);
        let recs = records(57, now);
        let mut exporter = Exporter::new(ExporterConfig::new(format, boot));
        let pkts = exporter.export_all(&recs, now.add_secs(30));
        let mut collector = Collector::new();
        let n = collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
        assert_eq!(n, 57);
        assert_eq!(collector.stats().records, 57);
        assert_eq!(collector.stats().malformed, 0);
        // Payload fields survive the trip for every format.
        for (a, b) in recs.iter().zip(collector.records()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.packets, b.packets);
        }
    }

    #[test]
    fn roundtrip_v5() {
        run_roundtrip(ExportFormat::NetflowV5);
    }

    #[test]
    fn roundtrip_v9() {
        run_roundtrip(ExportFormat::NetflowV9);
    }

    #[test]
    fn roundtrip_ipfix() {
        run_roundtrip(ExportFormat::Ipfix);
    }

    #[test]
    fn mid_stream_join_drops_until_template() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(6);
        let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg.batch_size = 10;
        cfg.template_refresh = 3;
        let mut exporter = Exporter::new(cfg);
        let pkts = exporter.export_all(&records(60, now), now.add_secs(1));
        assert_eq!(pkts.len(), 6);

        // Join after the first (template-bearing) packet.
        let mut collector = Collector::new();
        let n = collector.ingest_all(pkts[1..].iter().map(|p| p.as_slice()));
        // Packets 1, 2 each skip their data set (no template); 3 carries a
        // refresh; 3..6 decode. All five packets are structurally valid.
        assert_eq!(collector.stats().missing_template, 2);
        assert_eq!(collector.stats().packets_ok, 5);
        assert_eq!(n, 30);
    }

    #[test]
    fn partial_datagram_keeps_decodable_sets() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(6);
        // Two exporters share a domain but use different template ids; each
        // emits a template-bearing first packet and a data-only second one.
        let mk = |template_id: u16| {
            let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
            cfg.domain_id = 7;
            cfg.template_id = template_id;
            cfg.template_refresh = 0;
            Exporter::new(cfg)
        };
        let mut x = mk(256);
        let mut y = mk(300);
        let x1 = x.export_all(&records(3, now), now.add_secs(1));
        let x2 = x.export_all(&records(3, now), now.add_secs(2));
        let y2 = {
            let _ = y.export_all(&records(2, now), now.add_secs(1));
            y.export_all(&records(4, now), now.add_secs(2))
        };

        // Splice x2's and y2's sets into one message so one datagram carries
        // a decodable data set (template 256) and an unknown one (300).
        let mut spliced = x2[0].clone();
        spliced.extend_from_slice(&y2[0][super::ipfix::HEADER_LEN..]);
        let total = spliced.len() as u16;
        spliced[2..4].copy_from_slice(&total.to_be_bytes());

        let mut collector = Collector::new();
        collector.ingest_all(x1.iter().map(|p| p.as_slice()));
        let report = collector.ingest_detailed(&spliced);
        // The set with a known template still decodes; the unknown one is
        // counted once, and the datagram itself is accepted.
        assert!(report.ok);
        assert_eq!(report.records, 3);
        assert_eq!(report.missed_sets, 1);
        assert_eq!(collector.stats().missing_template, 1);
        assert_eq!(collector.stats().records, 6);
        assert_eq!(collector.stats().malformed, 0);
    }

    #[test]
    fn renormalize_counts_only_adjusted_records() {
        use crate::netflow::options::SamplingInfo;
        let t = Date::new(2020, 3, 18).midnight();
        let mut recs = records(1, t);
        // Saturated counters: scaling is a no-op, so the record must not be
        // reported as renormalized.
        let mut saturated = records(1, t).remove(0);
        saturated.bytes = u64::MAX;
        saturated.packets = u64::MAX;
        recs.push(saturated);
        // Zero counters scale to zero: also a no-op.
        let mut zero = records(1, t).remove(0);
        zero.bytes = 0;
        zero.packets = 0;
        recs.push(zero);

        let info = SamplingInfo {
            interval: 1000,
            algorithm: 1,
        };
        let (adjusted, clipped) = super::renormalize(&mut recs, Some(info));
        assert_eq!(adjusted, 1);
        // The saturated record's no-op scaling is no longer silent: it is
        // reported as clipped so conservation checks know totals drifted.
        assert_eq!(clipped, 1);
        assert_eq!(recs[0].bytes, 500_000);
        assert_eq!(recs[1].bytes, u64::MAX);
        assert_eq!(recs[2].bytes, 0);

        // interval <= 1 and absent sampling info adjust nothing.
        assert_eq!(super::renormalize(&mut recs, None), (0, 0));
        let unsampled = SamplingInfo {
            interval: 1,
            algorithm: 1,
        };
        assert_eq!(super::renormalize(&mut recs, Some(unsampled)), (0, 0));
    }

    #[test]
    fn renormalize_is_exact_in_wide_arithmetic() {
        use crate::netflow::options::SamplingInfo;
        let t = Date::new(2020, 3, 18).midnight();
        // bytes * interval overflows u64 but fits u128: the scaled value
        // must clamp (and be counted), not wrap or lose low bits.
        let mut recs = records(1, t);
        recs[0].bytes = u64::MAX / 2 + 1;
        recs[0].packets = 10;
        let info = SamplingInfo {
            interval: 4,
            algorithm: 1,
        };
        let (adjusted, clipped) = super::renormalize(&mut recs, Some(info));
        assert_eq!((adjusted, clipped), (1, 1));
        assert_eq!(recs[0].bytes, u64::MAX);
        assert_eq!(recs[0].packets, 40, "unclipped counter scales exactly");
    }

    #[test]
    fn malformed_and_unknown_versions_counted() {
        let mut collector = Collector::new();
        assert_eq!(collector.ingest(&[0x00]), 0);
        assert_eq!(collector.ingest(&[0x00, 0x07, 1, 2, 3]), 0);
        let stats = collector.stats();
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.packets_ok, 0);
    }

    #[test]
    fn per_domain_template_isolation() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(1);
        // Exporter A (domain 1) sends template+data; exporter B (domain 2)
        // sends data only. B's data must not decode against A's template.
        let mut cfg_a = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg_a.domain_id = 1;
        let mut a = Exporter::new(cfg_a);
        let mut cfg_b = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg_b.domain_id = 2;
        cfg_b.template_refresh = 0; // template only in the very first packet
        let mut b = Exporter::new(cfg_b);

        let pkts_a = a.export_all(&records(5, now), now.add_secs(1));
        let pkts_b = b.export_all(&records(5, now), now.add_secs(1));

        let mut collector = Collector::new();
        collector.ingest_all(pkts_a.iter().map(|p| p.as_slice()));
        // Drop B's first packet (which held its template): the rest has none.
        // With batch 100, B emits a single packet, so craft the scenario by
        // re-exporting data-only from B.
        let data_only = b.export_all(&records(5, now), now.add_secs(2));
        let before = collector.stats().missing_template;
        // b's second batch: template_refresh=0 means only packet 0 had it.
        collector.ingest_all(data_only.iter().map(|p| p.as_slice()));
        // Domain 2 never delivered its template to this collector.
        assert!(collector.stats().missing_template > before);
        // B's first batch (template + data) arrives late: decodes fine, but
        // the dropped data-only batch is gone for good.
        collector.ingest_all(pkts_b.iter().map(|p| p.as_slice()));
        assert_eq!(collector.stats().records, 10);
    }

    #[test]
    fn take_records_preserves_templates() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(1);
        let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg.template_refresh = 0;
        let mut exporter = Exporter::new(cfg);
        let p1 = exporter.export_all(&records(3, now), now.add_secs(1));
        let p2 = exporter.export_all(&records(3, now), now.add_secs(2));

        let mut collector = Collector::new();
        collector.ingest_all(p1.iter().map(|p| p.as_slice()));
        let drained = collector.take_records();
        assert_eq!(drained.len(), 3);
        assert!(collector.records().is_empty());
        // Template cache survives the drain; p2 (data-only) still decodes.
        collector.ingest_all(p2.iter().map(|p| p.as_slice()));
        assert_eq!(collector.records().len(), 3);
    }
}
