//! Flow collector: the receiving side of the export pipeline.
//!
//! Accepts raw datagrams in any of the three formats (the version is
//! sniffed from the first two bytes, as real collectors do), maintains
//! per-observation-domain template state for the templated formats, and
//! accumulates normalized [`FlowRecord`]s plus collection statistics.
//!
//! A collector that starts mid-stream will see v9/IPFIX data sets before
//! the next template refresh arrives; those packets are counted in
//! [`CollectorStats::missing_template`] and dropped, matching deployed
//! collector behaviour.

use crate::ipfix;
use crate::netflow::v5;
use crate::netflow::v9;
use crate::record::FlowRecord;
use crate::wire::{Cursor, WireError};
use std::collections::HashMap;

/// Counters describing what a collector has seen.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CollectorStats {
    /// Datagrams accepted and fully decoded.
    pub packets_ok: u64,
    /// Flow records extracted.
    pub records: u64,
    /// Datagrams dropped because a data set referenced an unseen template.
    pub missing_template: u64,
    /// Datagrams dropped as malformed.
    pub malformed: u64,
    /// Records whose counters were renormalized by an announced sampling
    /// interval.
    pub renormalized: u64,
}

/// Scale sampled counters by the exporter's announced interval; returns
/// how many records were adjusted.
fn renormalize(
    records: &mut [FlowRecord],
    sampling: Option<crate::netflow::options::SamplingInfo>,
) -> u64 {
    let Some(info) = sampling else { return 0 };
    if info.interval <= 1 {
        return 0;
    }
    for r in records.iter_mut() {
        r.bytes = r.bytes.saturating_mul(u64::from(info.interval));
        r.packets = r.packets.saturating_mul(u64::from(info.interval));
    }
    records.len() as u64
}

/// A multi-format flow collector.
#[derive(Debug, Default)]
pub struct Collector {
    /// v9 template state per source id.
    v9_templates: HashMap<u32, v9::TemplateCache>,
    /// IPFIX template state per observation domain.
    ipfix_templates: HashMap<u32, v9::TemplateCache>,
    records: Vec<FlowRecord>,
    stats: CollectorStats,
}

impl Collector {
    /// An empty collector with no template state.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Ingest one datagram. Returns how many records it contributed.
    pub fn ingest(&mut self, datagram: &[u8]) -> usize {
        let mut c = Cursor::new(datagram);
        let version = match c.read_u16("version sniff") {
            Ok(v) => v,
            Err(_) => {
                self.stats.malformed += 1;
                return 0;
            }
        };
        let result = match version {
            v5::VERSION => v5::decode(datagram).map(|(_, recs)| recs),
            v9::VERSION => match v9::check(datagram) {
                Ok(hdr) => {
                    let cache = self.v9_templates.entry(hdr.source_id).or_default();
                    v9::decode(datagram, cache)
                        .map(|(_, recs)| (recs, cache.sampling()))
                        .map(|(mut recs, sampling)| {
                            self.stats.renormalized += renormalize(&mut recs, sampling);
                            recs
                        })
                }
                Err(e) => Err(e),
            },
            ipfix::VERSION => match ipfix::check(datagram) {
                Ok(hdr) => {
                    let cache = self.ipfix_templates.entry(hdr.domain_id).or_default();
                    ipfix::decode(datagram, cache)
                        .map(|(_, recs)| (recs, cache.sampling()))
                        .map(|(mut recs, sampling)| {
                            self.stats.renormalized += renormalize(&mut recs, sampling);
                            recs
                        })
                }
                Err(e) => Err(e),
            },
            found => Err(WireError::BadVersion { expected: 0, found }),
        };
        match result {
            Ok(recs) => {
                let n = recs.len();
                self.stats.packets_ok += 1;
                self.stats.records += n as u64;
                self.records.extend(recs);
                n
            }
            Err(WireError::UnknownTemplate { .. }) => {
                self.stats.missing_template += 1;
                0
            }
            Err(_) => {
                self.stats.malformed += 1;
                0
            }
        }
    }

    /// Ingest a batch of datagrams.
    pub fn ingest_all<'a>(&mut self, datagrams: impl IntoIterator<Item = &'a [u8]>) -> usize {
        datagrams.into_iter().map(|d| self.ingest(d)).sum()
    }

    /// Collected records so far.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Drain collected records, leaving template state intact.
    pub fn take_records(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.records)
    }

    /// Collection statistics so far.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exporter::{ExportFormat, Exporter, ExporterConfig};
    use crate::protocol::IpProtocol;
    use crate::record::{FlowKey, FlowRecord};
    use crate::time::{Date, Timestamp};
    use std::net::Ipv4Addr;

    fn records(n: u32, t: Timestamp) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0xC633_6400 | (i & 0xFF)),
                        dst_addr: Ipv4Addr::new(198, 51, 100, 1),
                        src_port: 10_000 + i as u16,
                        dst_port: 443,
                        protocol: IpProtocol::Udp,
                    },
                    t,
                )
                .end(t.add_secs(5))
                .bytes(500 + u64::from(i))
                .packets(3)
                .build()
            })
            .collect()
    }

    fn run_roundtrip(format: ExportFormat) {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(6);
        let recs = records(57, now);
        let mut exporter = Exporter::new(ExporterConfig::new(format, boot));
        let pkts = exporter.export_all(&recs, now.add_secs(30));
        let mut collector = Collector::new();
        let n = collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
        assert_eq!(n, 57);
        assert_eq!(collector.stats().records, 57);
        assert_eq!(collector.stats().malformed, 0);
        // Payload fields survive the trip for every format.
        for (a, b) in recs.iter().zip(collector.records()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.packets, b.packets);
        }
    }

    #[test]
    fn roundtrip_v5() {
        run_roundtrip(ExportFormat::NetflowV5);
    }

    #[test]
    fn roundtrip_v9() {
        run_roundtrip(ExportFormat::NetflowV9);
    }

    #[test]
    fn roundtrip_ipfix() {
        run_roundtrip(ExportFormat::Ipfix);
    }

    #[test]
    fn mid_stream_join_drops_until_template() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(6);
        let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg.batch_size = 10;
        cfg.template_refresh = 3;
        let mut exporter = Exporter::new(cfg);
        let pkts = exporter.export_all(&records(60, now), now.add_secs(1));
        assert_eq!(pkts.len(), 6);

        // Join after the first (template-bearing) packet.
        let mut collector = Collector::new();
        let n = collector.ingest_all(pkts[1..].iter().map(|p| p.as_slice()));
        // Packets 1, 2 dropped (no template); 3 carries a refresh; 3..6 decode.
        assert_eq!(collector.stats().missing_template, 2);
        assert_eq!(n, 30);
    }

    #[test]
    fn malformed_and_unknown_versions_counted() {
        let mut collector = Collector::new();
        assert_eq!(collector.ingest(&[0x00]), 0);
        assert_eq!(collector.ingest(&[0x00, 0x07, 1, 2, 3]), 0);
        let stats = collector.stats();
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.packets_ok, 0);
    }

    #[test]
    fn per_domain_template_isolation() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(1);
        // Exporter A (domain 1) sends template+data; exporter B (domain 2)
        // sends data only. B's data must not decode against A's template.
        let mut cfg_a = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg_a.domain_id = 1;
        let mut a = Exporter::new(cfg_a);
        let mut cfg_b = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg_b.domain_id = 2;
        cfg_b.template_refresh = 0; // template only in the very first packet
        let mut b = Exporter::new(cfg_b);

        let pkts_a = a.export_all(&records(5, now), now.add_secs(1));
        let pkts_b = b.export_all(&records(5, now), now.add_secs(1));

        let mut collector = Collector::new();
        collector.ingest_all(pkts_a.iter().map(|p| p.as_slice()));
        // Drop B's first packet (which held its template): the rest has none.
        // With batch 100, B emits a single packet, so craft the scenario by
        // re-exporting data-only from B.
        let data_only = b.export_all(&records(5, now), now.add_secs(2));
        let before = collector.stats().missing_template;
        // b's second batch: template_refresh=0 means only packet 0 had it.
        collector.ingest_all(data_only.iter().map(|p| p.as_slice()));
        // Domain 2 never delivered its template to this collector.
        assert!(collector.stats().missing_template > before);
        // B's first batch (template + data) arrives late: decodes fine, but
        // the dropped data-only batch is gone for good.
        collector.ingest_all(pkts_b.iter().map(|p| p.as_slice()));
        assert_eq!(collector.stats().records, 10);
    }

    #[test]
    fn take_records_preserves_templates() {
        let boot = Date::new(2020, 3, 18).midnight();
        let now = boot.add_hours(1);
        let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg.template_refresh = 0;
        let mut exporter = Exporter::new(cfg);
        let p1 = exporter.export_all(&records(3, now), now.add_secs(1));
        let p2 = exporter.export_all(&records(3, now), now.add_secs(2));

        let mut collector = Collector::new();
        collector.ingest_all(p1.iter().map(|p| p.as_slice()));
        let drained = collector.take_records();
        assert_eq!(drained.len(), 3);
        assert!(collector.records().is_empty());
        // Template cache survives the drain; p2 (data-only) still decodes.
        collector.ingest_all(p2.iter().map(|p| p.as_slice()));
        assert_eq!(collector.records().len(), 3);
    }
}
