//! Flow exporter: turns streams of [`FlowRecord`]s into wire datagrams.
//!
//! Models what a router/IXP fabric exporter does: batch records into
//! packets, maintain sequence numbers, and (for templated formats) re-send
//! the template periodically so that a collector joining mid-stream can
//! synchronize — the behaviour the collector tests in this crate and the
//! integration tests exercise.

use crate::ipfix;
use crate::netflow::options::{OptionsTemplate, SamplingInfo};
use crate::netflow::v5;
use crate::netflow::v9;
use crate::netflow::Template;
use crate::record::FlowRecord;
use crate::sampling::FlowSampler;
use crate::time::Timestamp;

/// Wire format an [`Exporter`] speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// NetFlow v5 (fixed format; 16-bit ASNs).
    NetflowV5,
    /// NetFlow v9 (templated; uptime-relative timestamps).
    NetflowV9,
    /// IPFIX / RFC 7011 (templated; absolute timestamps).
    Ipfix,
}

/// Exporter configuration.
#[derive(Debug, Clone)]
pub struct ExporterConfig {
    /// Wire format to emit.
    pub format: ExportFormat,
    /// Records per emitted packet (clamped to 30 for v5).
    pub batch_size: usize,
    /// For templated formats: a template is included every
    /// `template_refresh` packets (and always in the first packet).
    pub template_refresh: u32,
    /// Router boot time; used by v5/v9 uptime-relative encoding.
    pub boot_time: Timestamp,
    /// Observation domain / source id stamped on packets.
    pub domain_id: u32,
    /// Template id for templated formats.
    pub template_id: u16,
    /// Router-style packet sampling: when set to N > 1, only 1-in-N flows
    /// are exported with *raw* counters and the sampling configuration is
    /// announced in-band via an options template (v9/IPFIX only; the
    /// collector renormalizes). `None`/1 exports everything.
    pub sampling: Option<u32>,
    /// Header sequence counter value of the first datagram. Long-lived
    /// exporters carry arbitrary counter positions — including ones about
    /// to wrap the u32 field — so collectors must never assume sessions
    /// start at zero.
    pub initial_sequence: u32,
}

impl ExporterConfig {
    /// A sensible default for the given format.
    pub fn new(format: ExportFormat, boot_time: Timestamp) -> ExporterConfig {
        ExporterConfig {
            format,
            batch_size: match format {
                ExportFormat::NetflowV5 => v5::MAX_RECORDS,
                _ => 100,
            },
            template_refresh: 20,
            boot_time,
            domain_id: 0,
            template_id: 256,
            sampling: None,
            initial_sequence: 0,
        }
    }
}

/// Stateful exporter. Feed it records; it yields datagrams.
#[derive(Debug)]
pub struct Exporter {
    config: ExporterConfig,
    template: Template,
    options_template: OptionsTemplate,
    sampler: Option<FlowSampler>,
    /// v5: flows exported; v9: packets emitted; IPFIX: data records emitted.
    /// Wraps at u32 like the wire field it feeds.
    sequence: u32,
    /// Unwrapped total of sequence units emitted since construction — the
    /// ground truth collectors are validated against (the wire counter
    /// above is this value mod 2^32, offset by `initial_sequence`).
    units_sent: u64,
    /// Flows offered but not selected by the sampler.
    sampled_out: u64,
    packets_emitted: u32,
    pending: Vec<FlowRecord>,
}

impl Exporter {
    /// Build an exporter from a configuration.
    pub fn new(config: ExporterConfig) -> Exporter {
        let template = match config.format {
            ExportFormat::NetflowV9 => Template::standard_v9(config.template_id),
            _ => Template::standard_ipfix(config.template_id),
        };
        let mut config = config;
        if config.format == ExportFormat::NetflowV5 {
            config.batch_size = config.batch_size.min(v5::MAX_RECORDS);
        }
        assert!(config.batch_size > 0, "batch size must be positive");
        let sampler = match config.sampling {
            Some(rate) if rate > 1 => {
                assert!(
                    config.format != ExportFormat::NetflowV5,
                    "v5 has no in-band sampling announcement; sample upstream instead"
                );
                Some(FlowSampler::new(rate, u64::from(config.domain_id) ^ 0x5A17))
            }
            _ => None,
        };
        let options_template = OptionsTemplate::sampling(config.template_id + 1);
        let sequence = config.initial_sequence;
        Exporter {
            config,
            template,
            options_template,
            sampler,
            sequence,
            units_sent: 0,
            sampled_out: 0,
            packets_emitted: 0,
            pending: Vec::new(),
        }
    }

    /// The sampling announcement this exporter sends, if sampling.
    pub fn sampling_info(&self) -> Option<SamplingInfo> {
        self.config
            .sampling
            .filter(|&r| r > 1)
            .map(|rate| SamplingInfo {
                interval: rate,
                algorithm: 1, // deterministic hash-based selection
            })
    }

    /// The template this exporter announces (templated formats).
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The exporter's configuration.
    pub fn config(&self) -> &ExporterConfig {
        &self.config
    }

    /// Current sequence counter: the value the *next* datagram's header will
    /// carry. This is the wire-width (wrapping u32) counter; for the total
    /// units actually sent, use [`Exporter::units_sent`].
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// The sequence value the *first* datagram carried (from the config).
    pub fn initial_sequence(&self) -> u32 {
        self.config.initial_sequence
    }

    /// Unwrapped total sequence units emitted so far (flows for v5,
    /// packets for v9, records for IPFIX). Unlike [`Exporter::sequence`],
    /// this never wraps and does not include `initial_sequence`.
    pub fn units_sent(&self) -> u64 {
        self.units_sent
    }

    /// Flows offered via [`Exporter::push`] that the in-band sampler
    /// rejected (and which therefore never reached the wire).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Simulate an exporter restart at `boot_time`: the uptime base resets
    /// and the next datagram re-announces the template (as a freshly booted
    /// device would). The sequence counter is preserved — restart-induced
    /// sequence resets are out of scope; collectors detect the restart from
    /// the boot-epoch shift instead. Buffered records survive the restart.
    pub fn restart(&mut self, boot_time: Timestamp) {
        self.config.boot_time = boot_time;
        self.packets_emitted = 0;
    }

    /// Queue a record; returns a datagram when a full batch is ready.
    /// Under sampled export, unselected flows are silently dropped with
    /// their counters *unscaled* — renormalization is the collector's job,
    /// guided by the in-band announcement.
    pub fn push(&mut self, record: FlowRecord, now: Timestamp) -> Option<Vec<u8>> {
        if let Some(sampler) = &self.sampler {
            if !sampler.selects(&record) {
                self.sampled_out += 1;
                return None;
            }
        }
        self.pending.push(record);
        if self.pending.len() >= self.config.batch_size {
            Some(self.emit(now))
        } else {
            None
        }
    }

    /// Flush any buffered records into a final (possibly short) datagram.
    pub fn flush(&mut self, now: Timestamp) -> Option<Vec<u8>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.emit(now))
        }
    }

    /// Export an entire batch of records as a sequence of datagrams.
    pub fn export_all(&mut self, records: &[FlowRecord], now: Timestamp) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for r in records {
            if let Some(pkt) = self.push(*r, now) {
                out.push(pkt);
            }
        }
        if let Some(pkt) = self.flush(now) {
            out.push(pkt);
        }
        out
    }

    fn template_due(&self) -> bool {
        self.packets_emitted == 0
            || (self.config.template_refresh > 0
                && self
                    .packets_emitted
                    .is_multiple_of(self.config.template_refresh))
    }

    fn emit(&mut self, now: Timestamp) -> Vec<u8> {
        let batch: Vec<FlowRecord> = self.pending.drain(..).collect();
        let pkt = match self.config.format {
            ExportFormat::NetflowV5 => {
                // v5 carries the observation domain in the engine bytes
                // (16 bits) — the only place the format has for it. Wider
                // domain ids would alias; exporter fleets keep ids small.
                let pkt = v5::encode_with_engine(
                    &batch,
                    now,
                    self.config.boot_time,
                    self.sequence,
                    self.config.domain_id as u16,
                );
                self.sequence = self.sequence.wrapping_add(batch.len() as u32);
                self.units_sent += batch.len() as u64;
                pkt
            }
            ExportFormat::NetflowV9 => {
                let due = self.template_due();
                let tmpl = due.then_some(&self.template);
                let sampling = if due {
                    self.sampling_info().map(|i| (&self.options_template, i))
                } else {
                    None
                };
                let pkt = v9::encode_full(
                    &batch,
                    tmpl,
                    sampling,
                    &self.template,
                    now,
                    self.config.boot_time,
                    self.sequence,
                    self.config.domain_id,
                );
                self.sequence = self.sequence.wrapping_add(1); // v9: per packet
                self.units_sent += 1;
                pkt
            }
            ExportFormat::Ipfix => {
                let due = self.template_due();
                let tmpl = due.then_some(&self.template);
                let sampling = if due {
                    self.sampling_info().map(|i| (&self.options_template, i))
                } else {
                    None
                };
                let pkt = ipfix::encode_full(
                    &batch,
                    tmpl,
                    sampling,
                    &self.template,
                    now,
                    self.sequence,
                    self.config.domain_id,
                );
                self.sequence = self.sequence.wrapping_add(batch.len() as u32);
                self.units_sent += batch.len() as u64;
                pkt
            }
        };
        self.packets_emitted = self.packets_emitted.wrapping_add(1);
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IpProtocol;
    use crate::record::FlowKey;
    use crate::time::Date;
    use std::net::Ipv4Addr;

    fn record(i: u32, t: Timestamp) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::from(0x0A00_0000 | i),
                dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                src_port: 1_024 + (i % 60_000) as u16,
                dst_port: 443,
                protocol: IpProtocol::Tcp,
            },
            t,
        )
        .end(t.add_secs(1))
        .bytes(1_000)
        .packets(2)
        .build()
    }

    fn mk(format: ExportFormat, batch: usize, refresh: u32) -> (Exporter, Timestamp) {
        let boot = Date::new(2020, 2, 1).midnight();
        let mut cfg = ExporterConfig::new(format, boot);
        cfg.batch_size = batch;
        cfg.template_refresh = refresh;
        (Exporter::new(cfg), boot.add_hours(24))
    }

    #[test]
    fn batches_and_flushes() {
        let (mut e, now) = mk(ExportFormat::Ipfix, 10, 20);
        let recs: Vec<_> = (0..25).map(|i| record(i, now)).collect();
        let pkts = e.export_all(&recs, now.add_secs(60));
        assert_eq!(pkts.len(), 3); // 10 + 10 + 5
    }

    #[test]
    fn v5_clamps_batch() {
        let boot = Date::new(2020, 2, 1).midnight();
        let mut cfg = ExporterConfig::new(ExportFormat::NetflowV5, boot);
        cfg.batch_size = 100;
        let e = Exporter::new(cfg);
        assert_eq!(e.config.batch_size, v5::MAX_RECORDS);
    }

    #[test]
    fn v5_sequence_counts_flows() {
        let (mut e, now) = mk(ExportFormat::NetflowV5, 5, 0);
        let recs: Vec<_> = (0..12).map(|i| record(i, now)).collect();
        let pkts = e.export_all(&recs, now.add_secs(1));
        assert_eq!(pkts.len(), 3);
        let (h0, _) = v5::decode(&pkts[0]).unwrap();
        let (h1, _) = v5::decode(&pkts[1]).unwrap();
        let (h2, _) = v5::decode(&pkts[2]).unwrap();
        assert_eq!(
            (h0.flow_sequence, h1.flow_sequence, h2.flow_sequence),
            (0, 5, 10)
        );
    }

    #[test]
    fn template_refresh_cycle() {
        let (mut e, now) = mk(ExportFormat::NetflowV9, 1, 3);
        let recs: Vec<_> = (0..7).map(|i| record(i, now)).collect();
        let pkts = e.export_all(&recs, now.add_secs(1));
        assert_eq!(pkts.len(), 7);
        // Packets 0, 3, 6 carry the template: decodable from scratch.
        for (i, pkt) in pkts.iter().enumerate() {
            let mut fresh = v9::TemplateCache::new();
            let has_template = v9::decode(pkt, &mut fresh).is_ok();
            assert_eq!(has_template, i % 3 == 0, "packet {i}");
        }
    }

    #[test]
    fn ipfix_sequence_counts_records() {
        let (mut e, now) = mk(ExportFormat::Ipfix, 4, 1);
        let recs: Vec<_> = (0..8).map(|i| record(i, now)).collect();
        let pkts = e.export_all(&recs, now.add_secs(1));
        let mut cache = v9::TemplateCache::new();
        let (h0, _) = ipfix::decode(&pkts[0], &mut cache).unwrap();
        let (h1, _) = ipfix::decode(&pkts[1], &mut cache).unwrap();
        assert_eq!((h0.sequence, h1.sequence), (0, 4));
    }

    #[test]
    fn flush_on_empty_is_none() {
        let (mut e, now) = mk(ExportFormat::Ipfix, 4, 1);
        assert!(e.flush(now).is_none());
    }

    #[test]
    fn initial_sequence_carries_and_wraps() {
        let boot = Date::new(2020, 2, 1).midnight();
        let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
        cfg.batch_size = 4;
        cfg.template_refresh = 1;
        cfg.initial_sequence = u32::MAX - 2;
        let mut e = Exporter::new(cfg);
        let now = boot.add_hours(24);
        let recs: Vec<_> = (0..8).map(|i| record(i, now)).collect();
        let pkts = e.export_all(&recs, now.add_secs(1));
        let mut cache = v9::TemplateCache::new();
        let (h0, _) = ipfix::decode(&pkts[0], &mut cache).unwrap();
        let (h1, _) = ipfix::decode(&pkts[1], &mut cache).unwrap();
        // The wire counter wraps at u32; the unwrapped tally does not.
        assert_eq!((h0.sequence, h1.sequence), (u32::MAX - 2, 1));
        assert_eq!(e.units_sent(), 8);
        assert_eq!(e.sequence(), 5);
    }
}
