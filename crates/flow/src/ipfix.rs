//! IPFIX (RFC 7011) — the IETF flow export protocol used by the IXP
//! vantage points in the paper ("At the IXPs we use IPFIX data", §2).
//!
//! Structurally IPFIX is NetFlow v9's successor: a 16-byte message header
//! (which, unlike v9, carries the *total message length* and an absolute
//! export time but no uptime) followed by Sets. Set id 2 carries templates,
//! id 3 options templates, ids ≥ 256 data records. The template machinery
//! and record field semantics are shared with the v9 module; the standard
//! IPFIX template uses absolute `flowStartSeconds`/`flowEndSeconds`
//! timestamps, so no uptime conversion is involved.

use crate::netflow::options::{parse_options_record, validate, OptionsTemplate, SamplingInfo};
use crate::netflow::v9::{decode_record, SkippedSets, TemplateCache, TimeAnchor};
use crate::netflow::{FieldSpec, Template};
use crate::record::FlowRecord;
use crate::time::Timestamp;
use crate::wire::{Cursor, PutBe, WireError, WireResult};

/// Protocol version constant.
pub const VERSION: u16 = 10;
/// Message header size.
pub const HEADER_LEN: usize = 16;
/// Set id carrying templates.
pub const TEMPLATE_SET_ID: u16 = 2;
/// Set id carrying options templates (skipped on decode).
pub const OPTIONS_TEMPLATE_SET_ID: u16 = 3;

/// Decoded IPFIX message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpfixHeader {
    /// Total message length in bytes, including this header.
    pub length: u16,
    /// Export time, Unix seconds.
    pub export_time: u32,
    /// Running count of exported data records.
    pub sequence: u32,
    /// Observation domain id.
    pub domain_id: u32,
}

/// Encode one IPFIX message: an optional template set plus a data set.
pub fn encode(
    records: &[FlowRecord],
    template: Option<&Template>,
    data_template: &Template,
    export_time: Timestamp,
    sequence: u32,
    domain_id: u32,
) -> Vec<u8> {
    encode_full(
        records,
        template,
        None,
        data_template,
        export_time,
        sequence,
        domain_id,
    )
}

/// [`encode`] plus an optional in-band sampling announcement (options
/// template set + one options record, RFC 7011 §3.4.2.2).
pub fn encode_full(
    records: &[FlowRecord],
    template: Option<&Template>,
    sampling: Option<(&OptionsTemplate, SamplingInfo)>,
    data_template: &Template,
    export_time: Timestamp,
    sequence: u32,
    domain_id: u32,
) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u16_be(VERSION);
    buf.put_u16_be(0); // length: patched below
    buf.put_u32_be(export_time.unix() as u32);
    buf.put_u32_be(sequence);
    buf.put_u32_be(domain_id);

    if let Some(t) = template {
        let set_len = 4 + 4 + t.fields.len() * 4;
        buf.put_u16_be(TEMPLATE_SET_ID);
        buf.put_u16_be(set_len as u16);
        buf.put_u16_be(t.id);
        buf.put_u16_be(t.fields.len() as u16);
        for f in &t.fields {
            buf.put_u16_be(f.field_type);
            buf.put_u16_be(f.length);
        }
    }

    if let Some((ot, info)) = sampling {
        // Options template set: field count includes scope fields; scope
        // fields come first (IPFIX counts fields, unlike v9's byte sizes).
        let total_fields = ot.scope_fields.len() + ot.option_fields.len();
        let set_len = 4 + 6 + total_fields * 4;
        buf.put_u16_be(OPTIONS_TEMPLATE_SET_ID);
        buf.put_u16_be(set_len as u16);
        buf.put_u16_be(ot.id);
        buf.put_u16_be(total_fields as u16);
        buf.put_u16_be(ot.scope_fields.len() as u16);
        for f in ot.scope_fields.iter().chain(&ot.option_fields) {
            buf.put_u16_be(f.field_type);
            buf.put_u16_be(f.length);
        }
        // One options data record in a set keyed by the options template.
        use crate::netflow::options::{SAMPLING_ALGORITHM, SAMPLING_INTERVAL, SCOPE_SYSTEM};
        let raw = 4 + ot.record_len();
        let padding = (4 - raw % 4) % 4;
        buf.put_u16_be(ot.id);
        buf.put_u16_be((raw + padding) as u16);
        for f in ot.scope_fields.iter().chain(&ot.option_fields) {
            let value: u64 = match f.field_type {
                SCOPE_SYSTEM => u64::from(domain_id),
                SAMPLING_INTERVAL => u64::from(info.interval),
                SAMPLING_ALGORITHM => u64::from(info.algorithm),
                _ => 0,
            };
            for i in (0..f.length).rev() {
                buf.put_u8_be((value >> (8 * i)) as u8);
            }
        }
        for _ in 0..padding {
            buf.put_u8_be(0);
        }
    }

    if !records.is_empty() {
        let raw = 4 + records.len() * data_template.record_len();
        let padding = (4 - raw % 4) % 4;
        buf.put_u16_be(data_template.id);
        buf.put_u16_be((raw + padding) as u16);
        for r in records {
            encode_data_record(&mut buf, r, data_template);
        }
        for _ in 0..padding {
            buf.put_u8_be(0);
        }
    }

    let total = buf.len() as u16;
    buf[2..4].copy_from_slice(&total.to_be_bytes());
    buf
}

/// Encode one record's fields per the template, reduced-size big-endian.
fn encode_data_record(buf: &mut Vec<u8>, r: &FlowRecord, template: &Template) {
    use crate::netflow::field::*;
    use crate::record::Direction;
    for f in &template.fields {
        let value: u64 = match f.field_type {
            IPV4_SRC_ADDR => u64::from(u32::from(r.key.src_addr)),
            IPV4_DST_ADDR => u64::from(u32::from(r.key.dst_addr)),
            L4_SRC_PORT => u64::from(r.key.src_port),
            L4_DST_PORT => u64::from(r.key.dst_port),
            PROTOCOL => u64::from(r.key.protocol.number()),
            TCP_FLAGS => u64::from(r.tcp_flags.0),
            INPUT_SNMP => u64::from(r.input_if),
            OUTPUT_SNMP => u64::from(r.output_if),
            IN_BYTES => r.bytes,
            IN_PKTS => r.packets,
            FLOW_START_SECONDS => r.start.unix(),
            FLOW_END_SECONDS => r.end.unix(),
            SRC_AS => u64::from(r.src_as),
            DST_AS => u64::from(r.dst_as),
            DIRECTION => match r.direction {
                Direction::Ingress => 0,
                Direction::Egress => 1,
                Direction::Unknown => 0xFF,
            },
            _ => 0,
        };
        for i in (0..f.length).rev() {
            buf.put_u8_be((value >> (8 * i)) as u8);
        }
    }
}

/// Structural validation of an IPFIX message header.
pub fn check(buf: &[u8]) -> WireResult<IpfixHeader> {
    let mut c = Cursor::new(buf);
    let version = c.read_u16("ipfix version")?;
    if version != VERSION {
        return Err(WireError::BadVersion {
            expected: VERSION,
            found: version,
        });
    }
    let length = c.read_u16("ipfix length")?;
    if (length as usize) < HEADER_LEN {
        return Err(WireError::BadLength {
            what: "ipfix message length",
            value: length as usize,
        });
    }
    if (length as usize) > buf.len() {
        return Err(WireError::Truncated {
            what: "ipfix message",
            needed: length as usize - buf.len(),
        });
    }
    let export_time = c.read_u32("ipfix export time")?;
    let sequence = c.read_u32("ipfix sequence")?;
    let domain_id = c.read_u32("ipfix domain")?;
    Ok(IpfixHeader {
        length,
        export_time,
        sequence,
        domain_id,
    })
}

/// Decode one IPFIX message, updating `cache` with any templates and
/// decoding data sets whose template is known.
///
/// Data sets referencing unknown templates fail the whole message with
/// [`WireError::UnknownTemplate`]; use [`decode_tolerant`] to keep the
/// records from the message's other sets.
pub fn decode(buf: &[u8], cache: &mut TemplateCache) -> WireResult<(IpfixHeader, Vec<FlowRecord>)> {
    let (header, records, skipped) = decode_tolerant(buf, cache)?;
    if let Some(id) = skipped.first_id {
        return Err(WireError::UnknownTemplate { id });
    }
    Ok((header, records))
}

/// Decode one IPFIX message, skipping (rather than failing on) data sets
/// whose template is unknown.
///
/// Templates learned from earlier sets in the same message apply to later
/// ones, so an unknown template only costs the sets that reference it.
/// Structural errors (truncation, bad lengths, reserved ids) still fail the
/// whole message.
pub fn decode_tolerant(
    buf: &[u8],
    cache: &mut TemplateCache,
) -> WireResult<(IpfixHeader, Vec<FlowRecord>, SkippedSets)> {
    let header = check(buf)?;
    // IPFIX has no uptime clock; the anchor carries the absolute export
    // time with a zero uptime base, so any (non-standard) uptime-relative
    // field a template might carry still resolves against the export time.
    let anchor = TimeAnchor {
        export_unix_ms: u64::from(header.export_time) * 1000,
        uptime_ms: 0,
    };
    let mut c = Cursor::new(&buf[HEADER_LEN..header.length as usize]);
    let mut records = Vec::new();
    let mut skipped = SkippedSets::default();
    while c.remaining() >= 4 {
        let set_id = c.read_u16("set id")?;
        let set_len = c.read_u16("set length")? as usize;
        if set_len < 4 {
            return Err(WireError::BadLength {
                what: "set length",
                value: set_len,
            });
        }
        let mut body = c.sub(set_len - 4, "set body")?;
        match set_id {
            TEMPLATE_SET_ID => {
                while body.remaining() >= 4 {
                    let id = body.read_u16("template id")?;
                    let n = body.read_u16("field count")? as usize;
                    let mut fields = Vec::with_capacity(n);
                    for _ in 0..n {
                        let field_type = body.read_u16("field type")?;
                        let length = body.read_u16("field length")?;
                        if length == 0 {
                            return Err(WireError::BadLength {
                                what: "template field length",
                                value: 0,
                            });
                        }
                        fields.push(FieldSpec { field_type, length });
                    }
                    cache.insert(Template::new(id, fields)?);
                }
            }
            OPTIONS_TEMPLATE_SET_ID => {
                while body.remaining() >= 6 {
                    let id = body.read_u16("options template id")?;
                    let total_fields = body.read_u16("options field count")? as usize;
                    let scope_count = body.read_u16("scope field count")? as usize;
                    if scope_count > total_fields {
                        return Err(WireError::BadLength {
                            what: "options scope field count",
                            value: scope_count,
                        });
                    }
                    let mut specs = Vec::with_capacity(total_fields);
                    for _ in 0..total_fields {
                        let field_type = body.read_u16("options field type")?;
                        let length = body.read_u16("options field length")?;
                        specs.push(FieldSpec { field_type, length });
                    }
                    let option_fields = specs.split_off(scope_count);
                    let t = OptionsTemplate {
                        id,
                        scope_fields: specs,
                        option_fields,
                    };
                    validate(&t)?;
                    cache.insert_options(t);
                }
            }
            id if id >= 256 => {
                if let Some(ot) = cache.get_options(id).cloned() {
                    let rec_len = ot.record_len();
                    while rec_len > 0 && body.remaining() >= rec_len {
                        if let Some(info) = parse_options_record(&mut body, &ot)? {
                            cache.set_sampling(info);
                        }
                    }
                    continue;
                }
                let Some(template) = cache.get(id).cloned() else {
                    skipped.note(id);
                    continue;
                };
                let rec_len = template.record_len();
                if rec_len == 0 {
                    return Err(WireError::BadLength {
                        what: "template record length",
                        value: 0,
                    });
                }
                while body.remaining() >= rec_len {
                    records.push(decode_record(&mut body, &template, anchor)?);
                }
            }
            _ => {
                return Err(WireError::BadField {
                    what: "reserved set id",
                })
            }
        }
    }
    Ok((header, records, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IpProtocol;
    use crate::record::{Direction, FlowKey};
    use crate::time::Date;
    use std::net::Ipv4Addr;

    fn sample(start: Timestamp) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(185, 1, 2, 3),
                dst_addr: Ipv4Addr::new(185, 4, 5, 6),
                src_port: 443,
                dst_port: 50_000,
                protocol: IpProtocol::Tcp,
            },
            start,
        )
        .end(start.add_secs(120))
        .bytes(5_000_000_000) // > u32: exercises 8-byte counters
        .packets(3_600_000)
        .asns(15_169, 3_320)
        .direction(Direction::Ingress)
        .build()
    }

    #[test]
    fn roundtrip() {
        let export = Date::new(2020, 4, 23).at_hour(12);
        let t = Template::standard_ipfix(500);
        let recs: Vec<_> = (0..3)
            .map(|i| {
                let mut r = sample(export.add_secs(i));
                r.end = r.start.add_secs(60);
                r
            })
            .collect();
        let msg = encode(&recs, Some(&t), &t, export, 42, 99);
        let mut cache = TemplateCache::new();
        let (hdr, out) = decode(&msg, &mut cache).unwrap();
        assert_eq!(hdr.domain_id, 99);
        assert_eq!(hdr.sequence, 42);
        assert_eq!(hdr.length as usize, msg.len());
        assert_eq!(out, recs);
        // 64-bit byte counter survived.
        assert_eq!(out[0].bytes, 5_000_000_000);
    }

    #[test]
    fn header_length_is_authoritative() {
        let export = Date::new(2020, 4, 23).at_hour(12);
        let t = Template::standard_ipfix(500);
        let msg = encode(&[sample(export)], Some(&t), &t, export, 0, 0);
        // Extra trailing junk beyond the declared length must be ignored.
        let mut extended = msg.clone();
        extended.extend_from_slice(&[0xFF; 16]);
        let mut cache = TemplateCache::new();
        let (_, out) = decode(&extended, &mut cache).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn truncated_message_rejected() {
        let export = Date::new(2020, 4, 23).at_hour(12);
        let t = Template::standard_ipfix(500);
        let msg = encode(&[sample(export)], Some(&t), &t, export, 0, 0);
        assert!(matches!(
            check(&msg[..msg.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_template_reported() {
        let export = Date::new(2020, 4, 23).at_hour(12);
        let t = Template::standard_ipfix(700);
        let msg = encode(&[sample(export)], None, &t, export, 0, 0);
        let mut cache = TemplateCache::new();
        assert!(matches!(
            decode(&msg, &mut cache),
            Err(WireError::UnknownTemplate { id: 700 })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let export = Date::new(2020, 4, 23).at_hour(12);
        let t = Template::standard_ipfix(500);
        let mut msg = encode(&[], Some(&t), &t, export, 0, 0);
        msg[1] = 9;
        assert!(matches!(check(&msg), Err(WireError::BadVersion { .. })));
    }

    #[test]
    fn empty_message() {
        let export = Date::new(2020, 4, 23).at_hour(0);
        let msg = encode(&[], None, &Template::standard_ipfix(500), export, 5, 6);
        assert_eq!(msg.len(), HEADER_LEN);
        let mut cache = TemplateCache::new();
        let (hdr, recs) = decode(&msg, &mut cache).unwrap();
        assert_eq!(hdr.sequence, 5);
        assert!(recs.is_empty());
    }
}
