//! Sampled flow export.
//!
//! Production flow telemetry is usually *sampled*: at multi-Tbps fabrics
//! (the paper's IXP-CE peaks above 8 Tbps) routers export 1-in-N sampled
//! NetFlow/IPFIX and analyses renormalize by the sampling rate. Sampling
//! is why the paper works in normalized volumes throughout — ratios are
//! unbiased under sampling while absolute counts are estimates.
//!
//! This module models flow-level sampling with byte renormalization: a
//! flow survives with probability `1/rate` and its counters are scaled by
//! `rate`, giving an unbiased estimator of total bytes. The integration
//! tests check the property the paper relies on: normalized time series
//! computed from sampled traces converge to the unsampled ones.

use crate::record::FlowRecord;

/// Scale a record's byte/packet counters by `factor`, exactly, in u128
/// arithmetic, clamping at `u64::MAX`. Returns `true` when either counter
/// clipped at the clamp — callers account clipped records explicitly so
/// volume conservation checks know the totals are a lower bound rather
/// than silently drifting.
pub fn scale_counters(record: &mut FlowRecord, factor: u32) -> bool {
    let cap = u128::from(u64::MAX);
    let bytes = u128::from(record.bytes) * u128::from(factor);
    let packets = u128::from(record.packets) * u128::from(factor);
    let clipped = bytes > cap || packets > cap;
    record.bytes = bytes.min(cap) as u64;
    record.packets = packets.min(cap) as u64;
    clipped
}

/// Deterministic per-flow hash over the key, start time and seed —
/// shared by both samplers so selection is batch-boundary independent.
fn flow_hash(seed: u64, record: &FlowRecord) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
    for part in [
        u64::from(u32::from(record.key.src_addr)),
        u64::from(u32::from(record.key.dst_addr)),
        u64::from(record.key.src_port) << 16 | u64::from(record.key.dst_port),
        u64::from(record.key.protocol.number()),
        record.start.unix(),
    ] {
        z ^= part.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = z.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    z ^ (z >> 31)
}

/// Deterministic 1-in-N flow sampler with counter renormalization.
#[derive(Debug, Clone, Copy)]
pub struct FlowSampler {
    rate: u32,
    seed: u64,
}

impl FlowSampler {
    /// Create a sampler keeping 1 in `rate` flows. `rate == 1` keeps
    /// everything (and renormalizes by 1, i.e. identity).
    pub fn new(rate: u32, seed: u64) -> FlowSampler {
        assert!(rate >= 1, "sampling rate must be >= 1");
        FlowSampler { rate, seed }
    }

    /// The sampling rate N (1 in N).
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Whether a flow is selected. Selection is a deterministic hash of
    /// the flow key and start time, so the same flow is consistently kept
    /// or dropped regardless of batch boundaries — the property that lets
    /// distributed collectors agree.
    pub fn selects(&self, record: &FlowRecord) -> bool {
        if self.rate == 1 {
            return true;
        }
        flow_hash(self.seed, record).is_multiple_of(u64::from(self.rate))
    }

    /// Sample one record: `None` if dropped; otherwise the record with
    /// byte/packet counters scaled by the rate, exactly in u128, clamped
    /// at `u64::MAX` (see [`scale_counters`]).
    pub fn sample(&self, record: &FlowRecord) -> Option<FlowRecord> {
        self.sample_counted(record).map(|(out, _)| out)
    }

    /// [`FlowSampler::sample`], also reporting whether a counter clipped
    /// at the `u64::MAX` clamp during renormalization.
    pub fn sample_counted(&self, record: &FlowRecord) -> Option<(FlowRecord, bool)> {
        if !self.selects(record) {
            return None;
        }
        let mut out = *record;
        let clipped = scale_counters(&mut out, self.rate);
        Some((out, clipped))
    }

    /// Sample a batch.
    pub fn sample_all(&self, records: &[FlowRecord]) -> Vec<FlowRecord> {
        records.iter().filter_map(|r| self.sample(r)).collect()
    }

    /// Sample a batch, also counting records whose counters clipped.
    pub fn sample_all_counted(&self, records: &[FlowRecord]) -> (Vec<FlowRecord>, u64) {
        let mut clipped = 0u64;
        let out = records
            .iter()
            .filter_map(|r| self.sample_counted(r))
            .map(|(r, c)| {
                clipped += u64::from(c);
                r
            })
            .collect();
        (out, clipped)
    }
}

/// Threshold ("smart") sampler: size-dependent flow sampling with
/// Horvitz–Thompson renormalization.
///
/// Uniform 1-in-N flow sampling is an all-or-nothing draw per record, so
/// its byte-volume variance grows with the *square* of flow size — on
/// heavy-tailed flow-size distributions a single dropped elephant swings
/// whole analysis buckets. The standard remedy in flow-export pipelines
/// is threshold sampling (Duffield et al.): a flow of `b` bytes is always
/// kept when `b >= z`, and otherwise survives with probability `b / z`
/// renormalized to exactly `z` bytes. The byte estimator stays unbiased
/// while any record's contribution to a volume sum is capped at
/// `max(b, z)` — elephants are never dropped, so per-flow variance is
/// bounded by `z·b` instead of `(N−1)·b²`.
///
/// Zero-byte records have survival probability zero and are never kept.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSampler {
    z: u64,
    seed: u64,
}

impl ThresholdSampler {
    /// Create a sampler with byte threshold `z >= 1`: flows at or above
    /// `z` bytes are always kept, smaller flows survive with probability
    /// `bytes / z`.
    pub fn new(z: u64, seed: u64) -> ThresholdSampler {
        assert!(z >= 1, "byte threshold must be >= 1");
        ThresholdSampler { z, seed }
    }

    /// The byte threshold `z`.
    pub fn threshold(&self) -> u64 {
        self.z
    }

    /// Sample one record. Selection is the same deterministic hash of the
    /// flow key and start time that [`FlowSampler`] uses, so it is
    /// batch-boundary independent. A kept below-threshold record reports
    /// exactly `z` bytes and its packet counter scaled by the same `z/b`
    /// inverse-probability factor (rounded, floored at 1).
    pub fn sample(&self, record: &FlowRecord) -> Option<FlowRecord> {
        if record.bytes >= self.z {
            return Some(*record);
        }
        if record.bytes == 0 {
            return None;
        }
        // Keep iff u < b/z for u uniform on [0,1): compare u·z < b·2^64
        // exactly in u128 (z and b both fit u64, no overflow).
        let u = flow_hash(self.seed ^ 0xD6E8_FEB8_6659_FD93, record);
        if u128::from(u) * u128::from(self.z) >= u128::from(record.bytes) << 64 {
            return None;
        }
        let mut out = *record;
        let scaled = (u128::from(record.packets) * u128::from(self.z)
            + u128::from(record.bytes) / 2)
            / u128::from(record.bytes);
        out.packets = scaled.min(u128::from(u64::MAX)).max(1) as u64;
        out.bytes = self.z;
        Some(out)
    }

    /// Sample a batch.
    pub fn sample_all(&self, records: &[FlowRecord]) -> Vec<FlowRecord> {
        records.iter().filter_map(|r| self.sample(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IpProtocol;
    use crate::record::FlowKey;
    use crate::time::Date;
    use std::net::Ipv4Addr;

    fn records(n: u32) -> Vec<FlowRecord> {
        let t = Date::new(2020, 3, 25).at_hour(12);
        (0..n)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0x0B00_0000 + i),
                        dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                        src_port: 40_000 + (i % 20_000) as u16,
                        dst_port: 443,
                        protocol: IpProtocol::Tcp,
                    },
                    t.add_secs(u64::from(i % 3_600)),
                )
                .end(t.add_secs(u64::from(i % 3_600) + 1))
                .bytes(1_000)
                .packets(2)
                .build()
            })
            .collect()
    }

    #[test]
    fn rate_one_is_identity() {
        let recs = records(100);
        let s = FlowSampler::new(1, 7);
        assert_eq!(s.sample_all(&recs), recs);
    }

    #[test]
    fn keeps_about_one_in_n() {
        let recs = records(40_000);
        for rate in [4u32, 16, 64] {
            let s = FlowSampler::new(rate, 7);
            let kept = s.sample_all(&recs).len() as f64;
            let expected = recs.len() as f64 / f64::from(rate);
            assert!(
                (kept - expected).abs() < 0.15 * expected,
                "rate {rate}: kept {kept}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn byte_estimator_is_unbiased() {
        let recs = records(40_000);
        let truth: u64 = recs.iter().map(|r| r.bytes).sum();
        let s = FlowSampler::new(16, 9);
        let estimate: u64 = s.sample_all(&recs).iter().map(|r| r.bytes).sum();
        let err = (estimate as f64 - truth as f64).abs() / truth as f64;
        assert!(err < 0.05, "estimator error {err:.3}");
    }

    #[test]
    fn selection_is_deterministic_and_batch_independent() {
        let recs = records(1_000);
        let s = FlowSampler::new(8, 3);
        let whole = s.sample_all(&recs);
        let mut split = s.sample_all(&recs[..500]);
        split.extend(s.sample_all(&recs[500..]));
        assert_eq!(whole, split);
    }

    #[test]
    fn different_seeds_select_differently() {
        let recs = records(1_000);
        let a = FlowSampler::new(8, 1).sample_all(&recs);
        let b = FlowSampler::new(8, 2).sample_all(&recs);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be >= 1")]
    fn zero_rate_rejected() {
        FlowSampler::new(0, 1);
    }

    #[test]
    fn scaling_is_exact_and_clips_are_counted() {
        let t = Date::new(2020, 3, 25).at_hour(12);
        let mut near_max = records(1)[0];
        near_max.start = t; // fixed key/start
        near_max.bytes = u64::MAX / 2;
        near_max.packets = 3;
        // A factor of 2 is exact; 3 clips bytes at the clamp.
        let mut a = near_max;
        assert!(!scale_counters(&mut a, 2));
        assert_eq!(a.bytes, (u64::MAX / 2) * 2);
        assert_eq!(a.packets, 6);
        let mut b = near_max;
        assert!(scale_counters(&mut b, 3));
        assert_eq!(b.bytes, u64::MAX, "clipped at the clamp, not wrapped");
        assert_eq!(b.packets, 9, "unclipped counter still scales exactly");
    }

    /// A heavy-tailed batch: many mice plus a few elephants that together
    /// dominate the byte total — the regime where uniform flow sampling's
    /// volume estimate falls apart.
    fn heavy_tailed(n: u32) -> Vec<FlowRecord> {
        let mut recs = records(n);
        for (i, r) in recs.iter_mut().enumerate() {
            r.bytes = if i % 100 == 0 { 50_000_000 } else { 10_000 };
            r.packets = r.bytes / 1_000;
        }
        recs
    }

    #[test]
    fn threshold_keeps_every_elephant() {
        let recs = heavy_tailed(10_000);
        let s = ThresholdSampler::new(1_000_000, 11);
        let kept = s.sample_all(&recs);
        // Above-threshold records pass through unchanged (50 MB); kept
        // mice are renormalized to exactly z (1 MB).
        let elephants_in = recs.iter().filter(|r| r.bytes > 1_000_000).count();
        let elephants_out = kept.iter().filter(|r| r.bytes > 1_000_000).count();
        assert_eq!(elephants_in, elephants_out, "no elephant may ever drop");
        // Mice kept at p = 10_000 / 1_000_000 = 1%.
        let mice = kept.len() - elephants_out;
        assert!((50..400).contains(&mice), "kept {mice} of 9900 mice at 1%");
    }

    #[test]
    fn threshold_byte_estimator_beats_uniform_on_heavy_tails() {
        let recs = heavy_tailed(40_000);
        let truth: u64 = recs.iter().map(|r| r.bytes).sum();
        let smart: u64 = ThresholdSampler::new(1_000_000, 9)
            .sample_all(&recs)
            .iter()
            .map(|r| r.bytes)
            .sum();
        let err = (smart as f64 - truth as f64).abs() / truth as f64;
        assert!(err < 0.02, "threshold estimator error {err:.4}");
    }

    #[test]
    fn threshold_renormalizes_kept_mice_to_z() {
        let recs = heavy_tailed(10_000);
        let s = ThresholdSampler::new(1_000_000, 11);
        for r in s.sample_all(&recs) {
            if r.bytes < 50_000_000 {
                assert_eq!(r.bytes, 1_000_000, "kept mouse reports exactly z");
                assert_eq!(r.packets, 1_000, "packets scaled by the same z/b");
            }
        }
    }

    #[test]
    fn threshold_selection_is_batch_independent_and_skips_zero_bytes() {
        let mut recs = records(1_000);
        recs[7].bytes = 0;
        let s = ThresholdSampler::new(10_000_000, 3);
        let whole = s.sample_all(&recs);
        let mut split = s.sample_all(&recs[..500]);
        split.extend(s.sample_all(&recs[500..]));
        assert_eq!(whole, split);
        assert!(whole.iter().all(|r| r.bytes > 0), "zero-byte flows dropped");
    }

    #[test]
    #[should_panic(expected = "threshold must be >= 1")]
    fn zero_threshold_rejected() {
        ThresholdSampler::new(0, 1);
    }

    #[test]
    fn sample_all_counted_reports_clips() {
        let mut recs = records(64);
        for r in &mut recs {
            r.bytes = u64::MAX / 4;
        }
        let s = FlowSampler::new(8, 3);
        let (kept, clipped) = s.sample_all_counted(&recs);
        assert!(!kept.is_empty());
        assert_eq!(clipped, kept.len() as u64, "every kept record clips at x8");
        assert!(kept.iter().all(|r| r.bytes == u64::MAX));
    }
}
