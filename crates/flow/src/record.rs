//! The flow record: the unit of data every analysis in the paper consumes.
//!
//! Both NetFlow and IPFIX reduce a unidirectional packet stream sharing a
//! 5-tuple to one summary record. [`FlowRecord`] is the normalized in-memory
//! form that the wire codecs decode into and the generator emits; it carries
//! exactly the fields the paper's pipeline uses (§2: "flow summaries based
//! on the packet header … no payload information").

use crate::protocol::{IpProtocol, TcpFlags};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Direction of a flow relative to the observing network's border.
///
/// The EDU analysis (§7) hinges on ingress/egress classification ("we
/// determine whether the connections are incoming or outgoing using the AS
/// numbers of each end-point, interfaces, and port pairs"); flows whose
/// direction cannot be established are `Unknown` (the paper reports 39% of
/// EDU flows in that state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Entering the observed network from outside.
    Ingress,
    /// Leaving the observed network.
    Egress,
    /// Direction could not be determined.
    Unknown,
}

/// The classic unidirectional 5-tuple flow key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_addr: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_addr: Ipv4Addr,
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// IP protocol.
    pub protocol: IpProtocol,
}

impl FlowKey {
    /// The key of the reverse flow.
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            src_addr: self.dst_addr,
            dst_addr: self.src_addr,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_addr, self.src_port, self.dst_addr, self.dst_port
        )
    }
}

/// One exported flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// First packet of the flow.
    pub start: Timestamp,
    /// Last packet of the flow.
    pub end: Timestamp,
    /// Total layer-3 bytes.
    pub bytes: u64,
    /// Total packets.
    pub packets: u64,
    /// Accumulated TCP flags (zero for non-TCP).
    pub tcp_flags: TcpFlags,
    /// SNMP input interface index on the exporting router.
    pub input_if: u16,
    /// SNMP output interface index on the exporting router.
    pub output_if: u16,
    /// Source autonomous system, as recorded by the exporter (0 if unknown).
    pub src_as: u32,
    /// Destination autonomous system (0 if unknown).
    pub dst_as: u32,
    /// Direction relative to the observing network.
    pub direction: Direction,
}

impl FlowRecord {
    /// A builder seeded with mandatory fields; optional fields default to
    /// zero/unknown, matching what a minimal NetFlow v5 record carries.
    pub fn builder(key: FlowKey, start: Timestamp) -> FlowRecordBuilder {
        FlowRecordBuilder {
            record: FlowRecord {
                key,
                start,
                end: start,
                bytes: 0,
                packets: 0,
                tcp_flags: TcpFlags::default(),
                input_if: 0,
                output_if: 0,
                src_as: 0,
                dst_as: 0,
                direction: Direction::Unknown,
            },
        }
    }

    /// Duration in seconds (zero for single-packet flows).
    pub fn duration_secs(&self) -> u64 {
        self.end.unix().saturating_sub(self.start.unix())
    }

    /// Mean packet size in bytes; zero-packet records yield 0.
    pub fn mean_packet_size(&self) -> u64 {
        self.bytes.checked_div(self.packets).unwrap_or(0)
    }

    /// Whether this record represents the start of a TCP connection
    /// (SYN observed). Used for connection counting in §7.
    pub fn is_connection_start(&self) -> bool {
        self.key.protocol == IpProtocol::Tcp && self.tcp_flags.has_syn()
    }
}

/// Builder for [`FlowRecord`]; keeps construction sites readable when only a
/// few optional fields are set.
#[derive(Debug, Clone)]
pub struct FlowRecordBuilder {
    record: FlowRecord,
}

impl FlowRecordBuilder {
    /// Set the flow end time.
    pub fn end(mut self, end: Timestamp) -> Self {
        self.record.end = end;
        self
    }

    /// Set the byte count.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.record.bytes = bytes;
        self
    }

    /// Set the packet count.
    pub fn packets(mut self, packets: u64) -> Self {
        self.record.packets = packets;
        self
    }

    /// Set accumulated TCP flags.
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        self.record.tcp_flags = flags;
        self
    }

    /// Set SNMP input/output interface indices.
    pub fn interfaces(mut self, input: u16, output: u16) -> Self {
        self.record.input_if = input;
        self.record.output_if = output;
        self
    }

    /// Set source/destination AS numbers.
    pub fn asns(mut self, src_as: u32, dst_as: u32) -> Self {
        self.record.src_as = src_as;
        self.record.dst_as = dst_as;
        self
    }

    /// Set the flow direction.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.record.direction = direction;
        self
    }

    /// Finalize the record.
    pub fn build(self) -> FlowRecord {
        let r = self.record;
        debug_assert!(r.end >= r.start, "flow ends before it starts");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    fn key() -> FlowKey {
        FlowKey {
            src_addr: Ipv4Addr::new(10, 1, 2, 3),
            dst_addr: Ipv4Addr::new(192, 0, 2, 9),
            src_port: 50_123,
            dst_port: 443,
            protocol: IpProtocol::Tcp,
        }
    }

    #[test]
    fn builder_defaults() {
        let t = Date::new(2020, 3, 1).at_hour(12);
        let r = FlowRecord::builder(key(), t).build();
        assert_eq!(r.bytes, 0);
        assert_eq!(r.direction, Direction::Unknown);
        assert_eq!(r.duration_secs(), 0);
    }

    #[test]
    fn builder_full() {
        let t = Date::new(2020, 3, 1).at_hour(12);
        let r = FlowRecord::builder(key(), t)
            .end(t.add_secs(30))
            .bytes(15_000)
            .packets(10)
            .tcp_flags(TcpFlags::complete_connection())
            .interfaces(4, 7)
            .asns(64_512, 15_169)
            .direction(Direction::Egress)
            .build();
        assert_eq!(r.duration_secs(), 30);
        assert_eq!(r.mean_packet_size(), 1_500);
        assert!(r.is_connection_start());
        assert_eq!(r.src_as, 64_512);
    }

    #[test]
    fn reversed_key() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src_addr, k.dst_addr);
        assert_eq!(r.dst_port, k.src_port);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn udp_flow_is_not_connection_start() {
        let mut k = key();
        k.protocol = IpProtocol::Udp;
        let t = Date::new(2020, 3, 1).at_hour(0);
        let r = FlowRecord::builder(k, t)
            .tcp_flags(TcpFlags(TcpFlags::SYN))
            .build();
        assert!(!r.is_connection_start());
    }

    #[test]
    fn display_key() {
        assert_eq!(key().to_string(), "TCP 10.1.2.3:50123 -> 192.0.2.9:443");
    }
}
