//! # lockdown-flow
//!
//! The flow-record substrate for the `lockdown` workspace — everything the
//! paper's vantage points use to *represent* traffic.
//!
//! "The Lockdown Effect" (Feldmann et al., IMC 2020) analyzes NetFlow and
//! IPFIX flow summaries: the ISP exports NetFlow at its border routers, the
//! three IXPs export IPFIX from their peering fabrics, and the educational
//! network provides anonymized NetFlow (§2). This crate implements that
//! data plane from the wire up:
//!
//! * [`record`] — the normalized [`record::FlowRecord`] all analyses consume;
//! * [`protocol`] — IP protocol numbers and TCP flags;
//! * [`time`] — a minimal civil-time substrate (the paper's analyses are
//!   organized by 2020 calendar weeks, workdays, and lockdown dates);
//! * [`wire`] — cursor-based, allocation-free big-endian parsing helpers
//!   following the `check`/`parse` idiom;
//! * [`netflow::v5`], [`netflow::v9`], [`ipfix`] — encoders and decoders for
//!   the three export formats, including v9/IPFIX template machinery;
//! * [`exporter`] / [`collector`] — the stateful endpoints that batch
//!   records into datagrams and reassemble them, with template refresh and
//!   mid-stream-join semantics;
//! * [`anon`] — prefix-preserving IP anonymization (the paper's §2.1 hashes
//!   addresses; prefix preservation keeps IP-to-AS attribution working).
//!
//! ## Example
//!
//! ```
//! use lockdown_flow::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! let boot = Date::new(2020, 3, 25).midnight();
//! let now = boot.add_hours(8);
//! let flow = FlowRecord::builder(
//!     FlowKey {
//!         src_addr: Ipv4Addr::new(100, 64, 0, 1),
//!         dst_addr: Ipv4Addr::new(192, 0, 2, 1),
//!         src_port: 54_321,
//!         dst_port: 443,
//!         protocol: IpProtocol::Tcp,
//!     },
//!     now,
//! )
//! .end(now.add_secs(42))
//! .bytes(1_000_000)
//! .packets(700)
//! .build();
//!
//! // Export as IPFIX, collect, and get the record back.
//! let mut exporter = Exporter::new(ExporterConfig::new(ExportFormat::Ipfix, boot));
//! let datagrams = exporter.export_all(&[flow], now.add_secs(60));
//! let mut collector = Collector::new();
//! collector.ingest_all(datagrams.iter().map(|d| d.as_slice()));
//! assert_eq!(collector.records()[0].bytes, 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anon;
pub mod collector;
pub mod exporter;
pub mod ipfix;
pub mod netflow;
pub mod protocol;
pub mod record;
pub mod sampling;
pub mod time;
pub mod tracefile;
pub mod wire;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::anon::Anonymizer;
    pub use crate::collector::{Collector, CollectorStats, IngestReport};
    pub use crate::exporter::{ExportFormat, Exporter, ExporterConfig};
    pub use crate::netflow::{FieldSpec, Template};
    pub use crate::protocol::{IpProtocol, TcpFlags};
    pub use crate::record::{Direction, FlowKey, FlowRecord};
    pub use crate::sampling::{FlowSampler, ThresholdSampler};
    pub use crate::time::{Date, Timestamp, Weekday};
    pub use crate::tracefile::{TraceReader, TraceRecord, TraceWriter};
    pub use crate::wire::{WireError, WireResult};
}
