//! NetFlow version 9 (RFC 3954) — the templated export format.
//!
//! A v9 packet carries a 20-byte header and a sequence of FlowSets. FlowSet
//! id 0 holds templates; ids ≥ 256 hold data records whose layout is defined
//! by the referenced template. Decoding therefore requires template state —
//! [`TemplateCache`] — which in practice is keyed by `(exporter, source id,
//! template id)`; here the exporter identity is the cache instance.

use super::options::{parse_options_record, validate, OptionsTemplate, SamplingInfo};
use super::{field, FieldSpec, Template};
use crate::protocol::{IpProtocol, TcpFlags};
use crate::record::{Direction, FlowKey, FlowRecord};
use crate::time::{uptime, Timestamp};
use crate::wire::{Cursor, PutBe, WireError, WireResult};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Export-time anchor for resolving uptime-relative timestamp fields.
///
/// Both values come from the packet header being decoded; wrapped
/// `FIRST_SWITCHED`/`LAST_SWITCHED` fields are resolved against them via
/// [`uptime::from_wire`], never against a reconstructed boot time (which
/// goes wrong once the u32 uptime clock wraps). Decoders for formats with
/// absolute timestamps (IPFIX) pass an anchor with `uptime_ms == 0`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimeAnchor {
    /// Export time from the header, in Unix milliseconds.
    pub export_unix_ms: u64,
    /// `SysUptime` from the header (wrapped u32 milliseconds).
    pub uptime_ms: u32,
}

/// Protocol version constant.
pub const VERSION: u16 = 9;
/// Packet header size.
pub const HEADER_LEN: usize = 20;
/// FlowSet id carrying templates.
pub const TEMPLATE_FLOWSET_ID: u16 = 0;
/// FlowSet id carrying options templates (parsed and skipped).
pub const OPTIONS_FLOWSET_ID: u16 = 1;

/// Decoded v9 packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V9Header {
    /// Total records (data + templates) in the packet.
    pub count: u16,
    /// Milliseconds since the exporter booted.
    pub sys_uptime_ms: u32,
    /// Export time, Unix seconds.
    pub unix_secs: u32,
    /// Packet-level sequence number (unlike v5's flow-level one).
    pub sequence: u32,
    /// Exporter observation domain ("source id").
    pub source_id: u32,
}

/// Per-exporter template state used when decoding data FlowSets.
#[derive(Debug, Default, Clone)]
pub struct TemplateCache {
    templates: HashMap<u16, Template>,
    options: HashMap<u16, OptionsTemplate>,
    sampling: Option<SamplingInfo>,
}

impl TemplateCache {
    /// An empty cache.
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// Insert or refresh a template (v9 semantics: latest definition wins).
    pub fn insert(&mut self, template: Template) {
        self.templates.insert(template.id, template);
    }

    /// Look up a template by id.
    pub fn get(&self, id: u16) -> Option<&Template> {
        self.templates.get(&id)
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the cache holds no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Insert or refresh an options template.
    pub fn insert_options(&mut self, template: OptionsTemplate) {
        self.options.insert(template.id, template);
    }

    /// Look up an options template by id.
    pub fn get_options(&self, id: u16) -> Option<&OptionsTemplate> {
        self.options.get(&id)
    }

    /// The exporter's announced sampling configuration, if any.
    pub fn sampling(&self) -> Option<SamplingInfo> {
        self.sampling
    }

    /// Record a sampling announcement.
    pub fn set_sampling(&mut self, info: SamplingInfo) {
        self.sampling = Some(info);
    }
}

/// Encode one v9 packet containing a template FlowSet (if `template` is
/// given) followed by a data FlowSet with `records`.
///
/// Real exporters resend templates periodically; [`crate::exporter::Exporter`]
/// models that refresh cycle and calls this with `template: Some(..)` when
/// due.
pub fn encode(
    records: &[FlowRecord],
    template: Option<&Template>,
    data_template: &Template,
    export_time: Timestamp,
    boot_time: Timestamp,
    sequence: u32,
    source_id: u32,
) -> Vec<u8> {
    encode_full(
        records,
        template,
        None,
        data_template,
        export_time,
        boot_time,
        sequence,
        source_id,
    )
}

/// [`encode`] plus an optional in-band sampling announcement: when
/// `sampling` is given, the packet carries an options template FlowSet and
/// one options data record scoped to this exporter (RFC 3954 §6.1).
#[allow(clippy::too_many_arguments)] // mirrors the packet layout
pub fn encode_full(
    records: &[FlowRecord],
    template: Option<&Template>,
    sampling: Option<(&OptionsTemplate, SamplingInfo)>,
    data_template: &Template,
    export_time: Timestamp,
    boot_time: Timestamp,
    sequence: u32,
    source_id: u32,
) -> Vec<u8> {
    assert!(export_time >= boot_time, "export before boot");
    // Modular uptime encoding: see `time::uptime` for the wrap semantics.
    let boot_ms = boot_time.unix() * 1000;
    let export_ms = export_time.unix() * 1000;
    let mut buf = Vec::new();
    let record_count =
        records.len() + usize::from(template.is_some()) + if sampling.is_some() { 2 } else { 0 };
    buf.put_u16_be(VERSION);
    buf.put_u16_be(record_count as u16);
    buf.put_u32_be(uptime::to_wire(export_ms, boot_ms));
    buf.put_u32_be(export_time.unix() as u32);
    buf.put_u32_be(sequence);
    buf.put_u32_be(source_id);

    if let Some(t) = template {
        encode_template_flowset(&mut buf, t);
    }
    if let Some((ot, info)) = sampling {
        encode_options_template_flowset(&mut buf, ot);
        encode_options_data_flowset(&mut buf, ot, info, source_id);
    }
    if !records.is_empty() {
        encode_data_flowset(&mut buf, records, data_template, boot_ms, export_ms);
    }
    buf
}

/// v9 options template FlowSet: scope/option sizes are in *bytes*.
fn encode_options_template_flowset(buf: &mut Vec<u8>, t: &OptionsTemplate) {
    let scope_len = t.scope_fields.len() * 4;
    let option_len = t.option_fields.len() * 4;
    let raw = 4 + 6 + scope_len + option_len;
    let padding = (4 - raw % 4) % 4;
    buf.put_u16_be(OPTIONS_FLOWSET_ID);
    buf.put_u16_be((raw + padding) as u16);
    buf.put_u16_be(t.id);
    buf.put_u16_be(scope_len as u16);
    buf.put_u16_be(option_len as u16);
    for f in t.scope_fields.iter().chain(&t.option_fields) {
        buf.put_u16_be(f.field_type);
        buf.put_u16_be(f.length);
    }
    for _ in 0..padding {
        buf.put_u8_be(0);
    }
}

/// One options data record (in a regular data FlowSet keyed by the
/// options template id) announcing the sampling configuration.
fn encode_options_data_flowset(
    buf: &mut Vec<u8>,
    t: &OptionsTemplate,
    info: SamplingInfo,
    source_id: u32,
) {
    use super::options::{SAMPLING_ALGORITHM, SAMPLING_INTERVAL, SCOPE_SYSTEM};
    let raw = 4 + t.record_len();
    let padding = (4 - raw % 4) % 4;
    buf.put_u16_be(t.id);
    buf.put_u16_be((raw + padding) as u16);
    for f in t.scope_fields.iter().chain(&t.option_fields) {
        let value: u64 = match f.field_type {
            SCOPE_SYSTEM => u64::from(source_id),
            SAMPLING_INTERVAL => u64::from(info.interval),
            SAMPLING_ALGORITHM => u64::from(info.algorithm),
            _ => 0,
        };
        for i in (0..f.length).rev() {
            buf.put_u8_be((value >> (8 * i)) as u8);
        }
    }
    for _ in 0..padding {
        buf.put_u8_be(0);
    }
}

fn encode_template_flowset(buf: &mut Vec<u8>, t: &Template) {
    let body_len = 4 + 4 + t.fields.len() * 4; // flowset hdr + tmpl hdr + fields
    buf.put_u16_be(TEMPLATE_FLOWSET_ID);
    buf.put_u16_be(body_len as u16);
    buf.put_u16_be(t.id);
    buf.put_u16_be(t.fields.len() as u16);
    for f in &t.fields {
        buf.put_u16_be(f.field_type);
        buf.put_u16_be(f.length);
    }
}

fn encode_data_flowset(
    buf: &mut Vec<u8>,
    records: &[FlowRecord],
    template: &Template,
    boot_ms: u64,
    export_ms: u64,
) {
    let raw_len = 4 + records.len() * template.record_len();
    let padding = (4 - raw_len % 4) % 4; // FlowSets are 32-bit aligned
    buf.put_u16_be(template.id);
    buf.put_u16_be((raw_len + padding) as u16);
    for r in records {
        for f in &template.fields {
            encode_field(buf, r, f, boot_ms, export_ms);
        }
    }
    for _ in 0..padding {
        buf.put_u8_be(0);
    }
}

/// Encode one field of one record according to its spec.
fn encode_field(buf: &mut Vec<u8>, r: &FlowRecord, spec: &FieldSpec, boot_ms: u64, export_ms: u64) {
    use field::*;
    let rel_ms = |t: Timestamp| -> u64 {
        u64::from(uptime::record_field(t.unix() * 1000, boot_ms, export_ms))
    };
    let value: u64 = match spec.field_type {
        IPV4_SRC_ADDR => u64::from(u32::from(r.key.src_addr)),
        IPV4_DST_ADDR => u64::from(u32::from(r.key.dst_addr)),
        L4_SRC_PORT => u64::from(r.key.src_port),
        L4_DST_PORT => u64::from(r.key.dst_port),
        PROTOCOL => u64::from(r.key.protocol.number()),
        TCP_FLAGS => u64::from(r.tcp_flags.0),
        INPUT_SNMP => u64::from(r.input_if),
        OUTPUT_SNMP => u64::from(r.output_if),
        IN_BYTES => r.bytes,
        IN_PKTS => r.packets,
        FIRST_SWITCHED => rel_ms(r.start),
        LAST_SWITCHED => rel_ms(r.end),
        FLOW_START_SECONDS => r.start.unix(),
        FLOW_END_SECONDS => r.end.unix(),
        SRC_AS => u64::from(r.src_as),
        DST_AS => u64::from(r.dst_as),
        DIRECTION => match r.direction {
            Direction::Ingress => 0,
            Direction::Egress => 1,
            Direction::Unknown => 0xFF,
        },
        _ => 0, // unknown field types encode as zero
    };
    // Big-endian, truncated to the spec'd length (reduced-size encoding).
    for i in (0..spec.length).rev() {
        buf.put_u8_be((value >> (8 * i)) as u8);
    }
}

/// Validate the packet header without touching FlowSets.
pub fn check(buf: &[u8]) -> WireResult<V9Header> {
    let mut c = Cursor::new(buf);
    let version = c.read_u16("v9 version")?;
    if version != VERSION {
        return Err(WireError::BadVersion {
            expected: VERSION,
            found: version,
        });
    }
    let count = c.read_u16("v9 count")?;
    let sys_uptime_ms = c.read_u32("v9 uptime")?;
    let unix_secs = c.read_u32("v9 unix secs")?;
    let sequence = c.read_u32("v9 sequence")?;
    let source_id = c.read_u32("v9 source id")?;
    Ok(V9Header {
        count,
        sys_uptime_ms,
        unix_secs,
        sequence,
        source_id,
    })
}

/// Data sets skipped during a tolerant decode because their template had not
/// been seen yet. Shared by the v9 and IPFIX decoders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkippedSets {
    /// Number of data sets skipped in this datagram.
    pub count: u32,
    /// Template id of the first skipped set, for error reporting.
    pub first_id: Option<u16>,
}

impl SkippedSets {
    /// Record one skipped data set referencing template `id`.
    pub fn note(&mut self, id: u16) {
        self.count += 1;
        self.first_id.get_or_insert(id);
    }
}

/// Decode a v9 packet, updating `cache` with any templates found and
/// decoding data FlowSets whose template is known.
///
/// Data FlowSets referencing unknown templates produce
/// [`WireError::UnknownTemplate`]; a tolerant collector should use
/// [`decode_tolerant`] instead to keep the records from the datagram's other
/// FlowSets (see [`crate::collector`]).
pub fn decode(buf: &[u8], cache: &mut TemplateCache) -> WireResult<(V9Header, Vec<FlowRecord>)> {
    let (header, records, skipped) = decode_tolerant(buf, cache)?;
    if let Some(id) = skipped.first_id {
        return Err(WireError::UnknownTemplate { id });
    }
    Ok((header, records))
}

/// Decode a v9 packet, skipping (rather than failing on) data FlowSets whose
/// template is unknown.
///
/// Templates learned from earlier FlowSets in the same datagram apply to
/// later ones, so an unknown template only costs the sets that reference it.
/// Structural errors (truncation, bad lengths, reserved ids) still fail the
/// whole datagram.
pub fn decode_tolerant(
    buf: &[u8],
    cache: &mut TemplateCache,
) -> WireResult<(V9Header, Vec<FlowRecord>, SkippedSets)> {
    let header = check(buf)?;
    let anchor = TimeAnchor {
        export_unix_ms: u64::from(header.unix_secs) * 1000,
        uptime_ms: header.sys_uptime_ms,
    };
    let mut c = Cursor::new(&buf[HEADER_LEN..]);
    let mut records = Vec::new();
    let mut skipped = SkippedSets::default();
    while c.remaining() >= 4 {
        let set_id = c.read_u16("flowset id")?;
        let set_len = c.read_u16("flowset length")? as usize;
        if set_len < 4 {
            return Err(WireError::BadLength {
                what: "flowset length",
                value: set_len,
            });
        }
        let mut body = c.sub(set_len - 4, "flowset body")?;
        match set_id {
            TEMPLATE_FLOWSET_ID => decode_template_flowset(&mut body, cache)?,
            OPTIONS_FLOWSET_ID => decode_options_template_flowset(&mut body, cache)?,
            id if id >= 256 => {
                if let Some(ot) = cache.get_options(id).cloned() {
                    // Options data: exporter metadata, not flows.
                    let rec_len = ot.record_len();
                    while rec_len > 0 && body.remaining() >= rec_len {
                        if let Some(info) = parse_options_record(&mut body, &ot)? {
                            cache.set_sampling(info);
                        }
                    }
                    continue;
                }
                let Some(template) = cache.get(id).cloned() else {
                    skipped.note(id);
                    continue;
                };
                decode_data_flowset(&mut body, &template, anchor, &mut records)?;
            }
            id => {
                return Err(WireError::BadField {
                    what: if id < 256 {
                        "reserved flowset id"
                    } else {
                        "flowset id"
                    },
                })
            }
        }
    }
    Ok((header, records, skipped))
}

fn decode_template_flowset(c: &mut Cursor<'_>, cache: &mut TemplateCache) -> WireResult<()> {
    // A template FlowSet may carry several templates back to back.
    while c.remaining() >= 4 {
        let id = c.read_u16("template id")?;
        let field_count = c.read_u16("template field count")? as usize;
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            let field_type = c.read_u16("field type")?;
            let length = c.read_u16("field length")?;
            if length == 0 {
                return Err(WireError::BadLength {
                    what: "template field length",
                    value: 0,
                });
            }
            fields.push(FieldSpec { field_type, length });
        }
        cache.insert(Template::new(id, fields)?);
    }
    Ok(())
}

/// Decode a v9 options template FlowSet (scope/option sizes in bytes).
fn decode_options_template_flowset(
    c: &mut Cursor<'_>,
    cache: &mut TemplateCache,
) -> WireResult<()> {
    while c.remaining() >= 6 {
        let id = c.read_u16("options template id")?;
        let scope_len = c.read_u16("option scope length")? as usize;
        let option_len = c.read_u16("option length")? as usize;
        if !scope_len.is_multiple_of(4) || !option_len.is_multiple_of(4) {
            return Err(WireError::BadLength {
                what: "options template field-spec length",
                value: scope_len + option_len,
            });
        }
        let read_specs = |n: usize, c: &mut Cursor<'_>| -> WireResult<Vec<FieldSpec>> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let field_type = c.read_u16("options field type")?;
                let length = c.read_u16("options field length")?;
                out.push(FieldSpec { field_type, length });
            }
            Ok(out)
        };
        let scope_fields = read_specs(scope_len / 4, c)?;
        let option_fields = read_specs(option_len / 4, c)?;
        let t = OptionsTemplate {
            id,
            scope_fields,
            option_fields,
        };
        validate(&t)?;
        cache.insert_options(t);
        // Remaining bytes < 6 are padding; the loop condition handles it.
    }
    Ok(())
}

fn decode_data_flowset(
    c: &mut Cursor<'_>,
    template: &Template,
    anchor: TimeAnchor,
    out: &mut Vec<FlowRecord>,
) -> WireResult<()> {
    let rec_len = template.record_len();
    if rec_len == 0 {
        return Err(WireError::BadLength {
            what: "template record length",
            value: 0,
        });
    }
    while c.remaining() >= rec_len {
        out.push(decode_record(c, template, anchor)?);
    }
    // Whatever is left (< rec_len) is alignment padding.
    Ok(())
}

/// Decode one data record against a template. Shared with the IPFIX decoder
/// (the field semantics are identical; only the timestamp elements differ,
/// and both are handled here).
pub(crate) fn decode_record(
    c: &mut Cursor<'_>,
    template: &Template,
    anchor: TimeAnchor,
) -> WireResult<FlowRecord> {
    use field::*;
    let mut src_addr = Ipv4Addr::UNSPECIFIED;
    let mut dst_addr = Ipv4Addr::UNSPECIFIED;
    let (mut src_port, mut dst_port) = (0u16, 0u16);
    let mut protocol = IpProtocol::Other(0);
    let mut tcp_flags = TcpFlags::default();
    let (mut input_if, mut output_if) = (0u16, 0u16);
    let (mut bytes, mut packets) = (0u64, 0u64);
    let (mut start, mut end) = (Timestamp(0), Timestamp(0));
    let (mut src_as, mut dst_as) = (0u32, 0u32);
    let mut direction = Direction::Unknown;

    for f in &template.fields {
        let v = c.read_uint(f.length as usize, "data field")?;
        match f.field_type {
            IPV4_SRC_ADDR => src_addr = Ipv4Addr::from(v as u32),
            IPV4_DST_ADDR => dst_addr = Ipv4Addr::from(v as u32),
            L4_SRC_PORT => src_port = v as u16,
            L4_DST_PORT => dst_port = v as u16,
            PROTOCOL => protocol = IpProtocol::from_number(v as u8),
            TCP_FLAGS => tcp_flags = TcpFlags(v as u8),
            INPUT_SNMP => input_if = v as u16,
            OUTPUT_SNMP => output_if = v as u16,
            IN_BYTES => bytes = v,
            IN_PKTS => packets = v,
            FIRST_SWITCHED => {
                start = Timestamp(
                    uptime::from_wire(v as u32, anchor.uptime_ms, anchor.export_unix_ms) / 1000,
                )
            }
            LAST_SWITCHED => {
                end = Timestamp(
                    uptime::from_wire(v as u32, anchor.uptime_ms, anchor.export_unix_ms) / 1000,
                )
            }
            FLOW_START_SECONDS => start = Timestamp(v),
            FLOW_END_SECONDS => end = Timestamp(v),
            SRC_AS => src_as = v as u32,
            DST_AS => dst_as = v as u32,
            DIRECTION => {
                direction = match v {
                    0 => Direction::Ingress,
                    1 => Direction::Egress,
                    _ => Direction::Unknown,
                }
            }
            _ => { /* unknown information element: ignore */ }
        }
    }
    if end < start {
        return Err(WireError::BadField {
            what: "flow ends before it starts",
        });
    }
    Ok(FlowRecord {
        key: FlowKey {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            protocol,
        },
        start,
        end,
        bytes,
        packets,
        tcp_flags,
        input_if,
        output_if,
        src_as,
        dst_as,
        direction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    fn sample(start: Timestamp, i: u16) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8),
                dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                src_port: 40_000 + i,
                dst_port: 443,
                protocol: IpProtocol::Udp,
            },
            start,
        )
        .end(start.add_secs(9))
        .bytes(1_234_567)
        .packets(890)
        .asns(6_805, 20_940)
        .direction(Direction::Egress)
        .build()
    }

    #[test]
    fn roundtrip_with_inline_template() {
        let boot = Date::new(2020, 2, 20).midnight();
        let export = boot.add_hours(3);
        let t = Template::standard_v9(300);
        let recs: Vec<_> = (0..5)
            .map(|i| {
                let mut r = sample(export, i);
                r.start = Timestamp(export.unix() - 60);
                r.end = Timestamp(export.unix() - 51);
                r
            })
            .collect();
        let pkt = encode(&recs, Some(&t), &t, export, boot, 9, 1);
        let mut cache = TemplateCache::new();
        let (hdr, out) = decode(&pkt, &mut cache).unwrap();
        assert_eq!(hdr.count, 6); // 5 data + 1 template
        assert_eq!(hdr.source_id, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(out.len(), 5);
        for (a, b) in recs.iter().zip(&out) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn data_without_template_fails_then_succeeds() {
        let boot = Date::new(2020, 2, 20).midnight();
        let export = boot.add_hours(1);
        let t = Template::standard_v9(400);
        let mut r = sample(export, 1);
        r.start = Timestamp(export.unix() - 10);
        r.end = Timestamp(export.unix() - 2);

        let data_only = encode(&[r], None, &t, export, boot, 1, 7);
        let mut cache = TemplateCache::new();
        assert!(matches!(
            decode(&data_only, &mut cache),
            Err(WireError::UnknownTemplate { id: 400 })
        ));

        // Template-only packet teaches the cache; data then decodes.
        let tmpl_only = encode(&[], Some(&t), &t, export, boot, 2, 7);
        let (_, none) = decode(&tmpl_only, &mut cache).unwrap();
        assert!(none.is_empty());
        let (_, recs) = decode(&data_only, &mut cache).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].bytes, 1_234_567);
        assert_eq!(recs[0].direction, Direction::Egress);
    }

    #[test]
    fn flowset_alignment_padding() {
        // standard template is 41 bytes -> one record needs 3 bytes padding.
        let boot = Date::new(2020, 2, 20).midnight();
        let export = boot.add_hours(1);
        let t = Template::standard_v9(300);
        let mut r = sample(export, 0);
        r.start = Timestamp(export.unix() - 10);
        r.end = Timestamp(export.unix() - 2);
        let pkt = encode(&[r], None, &t, export, boot, 0, 0);
        assert_eq!(
            (pkt.len() - HEADER_LEN) % 4,
            0,
            "flowset must be 32-bit aligned"
        );
        let mut cache = TemplateCache::new();
        cache.insert(t);
        let (_, recs) = decode(&pkt, &mut cache).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn wrong_version_rejected() {
        let boot = Date::new(2020, 2, 20).midnight();
        let t = Template::standard_v9(300);
        let mut pkt = encode(&[], Some(&t), &t, boot.add_hours(1), boot, 0, 0);
        pkt[1] = 10;
        assert!(matches!(
            check(&pkt),
            Err(WireError::BadVersion { found: 10, .. })
        ));
    }

    #[test]
    fn truncated_flowset_rejected() {
        let boot = Date::new(2020, 2, 20).midnight();
        let export = boot.add_hours(1);
        let t = Template::standard_v9(300);
        let mut r = sample(export, 0);
        r.start = Timestamp(export.unix() - 10);
        r.end = Timestamp(export.unix() - 2);
        let pkt = encode(&[r], Some(&t), &t, export, boot, 0, 0);
        let mut cache = TemplateCache::new();
        assert!(decode(&pkt[..pkt.len() - 5], &mut cache).is_err());
    }

    #[test]
    fn uptime_wrap_straddling_flow_roundtrips() {
        // The exporter has been up just past one u32-ms wrap: FIRST/LAST
        // SWITCHED fields straddling the wrap must decode monotonically
        // against the export-time anchor. The pre-fix decoder derived
        // boot = export - wrapped_uptime and rejected these records.
        let boot = Date::new(2020, 1, 1).midnight();
        let wrap_secs = uptime::WRAP_MS / 1000;
        let export = boot.add_secs(wrap_secs + 10);
        let t = Template::standard_v9(300);
        let mut r = sample(export, 1);
        r.start = Timestamp(export.unix() - 30); // before the wrap
        r.end = Timestamp(export.unix() - 5); // after the wrap
        let pkt = encode(&[r], Some(&t), &t, export, boot, 0, 1);
        let hdr = check(&pkt).unwrap();
        assert!(
            u64::from(hdr.sys_uptime_ms) < 20_000,
            "uptime field must have wrapped, got {}",
            hdr.sys_uptime_ms
        );
        let mut cache = TemplateCache::new();
        let (_, out) = decode(&pkt, &mut cache).unwrap();
        assert_eq!(out[0].start, r.start);
        assert_eq!(out[0].end, r.end);
    }

    #[test]
    fn template_refresh_overwrites() {
        let mut cache = TemplateCache::new();
        cache.insert(Template::standard_v9(300));
        let shorter = Template::new(
            300,
            vec![FieldSpec {
                field_type: field::IN_BYTES,
                length: 4,
            }],
        )
        .unwrap();
        cache.insert(shorter.clone());
        assert_eq!(cache.get(300), Some(&shorter));
    }
}
