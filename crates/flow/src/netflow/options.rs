//! Options templates: exporter metadata carried in-band (RFC 3954 §6.1,
//! RFC 7011 §3.4.2.2).
//!
//! Routers announce their packet-sampling configuration through options
//! records — `samplingInterval` (IE 34) and `samplingAlgorithm` (IE 35)
//! scoped to the exporting system. A collector that sees the announcement
//! renormalizes sampled counters by the interval; one that missed it
//! under-reports, which is precisely why the announcement is resent with
//! every template refresh.
//!
//! This module holds the format-independent pieces; the v9 and IPFIX
//! codecs encode/decode the surrounding sets (v9 separates scope and
//! option field counts by *byte length*, IPFIX by *field count* — both
//! are handled by the respective callers).

use super::FieldSpec;
use crate::wire::{Cursor, WireError, WireResult};
use serde::{Deserialize, Serialize};

/// Scope field type: System (the whole exporter).
pub const SCOPE_SYSTEM: u16 = 1;
/// Information element: samplingInterval (1-in-N).
pub const SAMPLING_INTERVAL: u16 = 34;
/// Information element: samplingAlgorithm (1 = deterministic, 2 = random).
pub const SAMPLING_ALGORITHM: u16 = 35;

/// A parsed options template: scope fields plus option fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptionsTemplate {
    /// Template id (shares the ≥256 space with data templates).
    pub id: u16,
    /// Scope field specifications.
    pub scope_fields: Vec<FieldSpec>,
    /// Option field specifications.
    pub option_fields: Vec<FieldSpec>,
}

impl OptionsTemplate {
    /// The standard sampling announcement used by this workspace's
    /// exporters: System scope + (interval, algorithm).
    pub fn sampling(id: u16) -> OptionsTemplate {
        OptionsTemplate {
            id,
            scope_fields: vec![FieldSpec {
                field_type: SCOPE_SYSTEM,
                length: 4,
            }],
            option_fields: vec![
                FieldSpec {
                    field_type: SAMPLING_INTERVAL,
                    length: 4,
                },
                FieldSpec {
                    field_type: SAMPLING_ALGORITHM,
                    length: 1,
                },
            ],
        }
    }

    /// Total encoded record length in bytes.
    pub fn record_len(&self) -> usize {
        self.scope_fields
            .iter()
            .chain(&self.option_fields)
            .map(|f| f.length as usize)
            .sum()
    }
}

/// Sampling state announced by an exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingInfo {
    /// 1-in-N sampling interval.
    pub interval: u32,
    /// Algorithm code (1 deterministic, 2 random).
    pub algorithm: u8,
}

impl SamplingInfo {
    /// Unsampled export.
    pub fn unsampled() -> SamplingInfo {
        SamplingInfo {
            interval: 1,
            algorithm: 1,
        }
    }
}

/// Parse one options data record against its template, extracting
/// sampling information if the template carries it.
pub fn parse_options_record(
    cursor: &mut Cursor<'_>,
    template: &OptionsTemplate,
) -> WireResult<Option<SamplingInfo>> {
    let mut interval: Option<u32> = None;
    let mut algorithm: Option<u8> = None;
    for f in template.scope_fields.iter().chain(&template.option_fields) {
        let v = cursor.read_uint(f.length as usize, "options field")?;
        match f.field_type {
            SAMPLING_INTERVAL => interval = Some(v as u32),
            SAMPLING_ALGORITHM => algorithm = Some(v as u8),
            _ => {}
        }
    }
    Ok(interval.map(|interval| {
        if interval == 0 {
            // A zero interval is nonsense; treat as unsampled rather than
            // dividing by zero downstream.
            return SamplingInfo::unsampled();
        }
        SamplingInfo {
            interval,
            algorithm: algorithm.unwrap_or(1),
        }
    }))
}

/// Validate an options template's structure.
pub fn validate(template: &OptionsTemplate) -> WireResult<()> {
    if template.id < 256 {
        return Err(WireError::BadField {
            what: "options template id must be >= 256",
        });
    }
    if template.scope_fields.is_empty() && template.option_fields.is_empty() {
        return Err(WireError::BadField {
            what: "options template must have fields",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_template_shape() {
        let t = OptionsTemplate::sampling(400);
        assert_eq!(t.record_len(), 4 + 4 + 1);
        assert!(validate(&t).is_ok());
    }

    #[test]
    fn invalid_templates_rejected() {
        let mut t = OptionsTemplate::sampling(100);
        assert!(validate(&t).is_err());
        t.id = 300;
        t.scope_fields.clear();
        t.option_fields.clear();
        assert!(validate(&t).is_err());
    }

    #[test]
    fn parse_extracts_sampling() {
        let t = OptionsTemplate::sampling(300);
        // scope system id (4) | interval = 1000 (4) | algorithm = 2 (1)
        let bytes = [0, 0, 0, 7, 0, 0, 0x03, 0xE8, 2];
        let mut c = Cursor::new(&bytes);
        let info = parse_options_record(&mut c, &t).unwrap().unwrap();
        assert_eq!(info.interval, 1_000);
        assert_eq!(info.algorithm, 2);
    }

    #[test]
    fn zero_interval_is_unsampled() {
        let t = OptionsTemplate::sampling(300);
        let bytes = [0, 0, 0, 7, 0, 0, 0, 0, 2];
        let mut c = Cursor::new(&bytes);
        let info = parse_options_record(&mut c, &t).unwrap().unwrap();
        assert_eq!(info, SamplingInfo::unsampled());
    }

    #[test]
    fn template_without_sampling_yields_none() {
        let t = OptionsTemplate {
            id: 300,
            scope_fields: vec![FieldSpec {
                field_type: SCOPE_SYSTEM,
                length: 4,
            }],
            option_fields: vec![FieldSpec {
                field_type: 99,
                length: 2,
            }],
        };
        let bytes = [0, 0, 0, 1, 0, 5];
        let mut c = Cursor::new(&bytes);
        assert!(parse_options_record(&mut c, &t).unwrap().is_none());
    }
}
