//! NetFlow export formats.
//!
//! * [`v5`] — the fixed-layout classic used by the ISP vantage point.
//! * [`v9`] — the templated format (RFC 3954) that IPFIX evolved from.
//!
//! Field-type numbers are shared between NetFlow v9 and IPFIX information
//! elements for the fields this pipeline uses, so the constants and the
//! [`Template`] machinery live here and are reused by [`crate::ipfix`].

pub mod options;
pub mod v5;
pub mod v9;

use crate::wire::{WireError, WireResult};
use serde::{Deserialize, Serialize};

/// Field-type / information-element numbers used by the templates in this
/// workspace (identical in NetFlow v9 and the IANA IPFIX registry).
#[allow(missing_docs)] // each constant is annotated with its IE name inline
pub mod field {
    pub const IN_BYTES: u16 = 1; // octetDeltaCount
    pub const IN_PKTS: u16 = 2; // packetDeltaCount
    pub const PROTOCOL: u16 = 4; // protocolIdentifier
    pub const TCP_FLAGS: u16 = 6; // tcpControlBits
    pub const L4_SRC_PORT: u16 = 7; // sourceTransportPort
    pub const IPV4_SRC_ADDR: u16 = 8; // sourceIPv4Address
    pub const INPUT_SNMP: u16 = 10; // ingressInterface
    pub const L4_DST_PORT: u16 = 11; // destinationTransportPort
    pub const IPV4_DST_ADDR: u16 = 12; // destinationIPv4Address
    pub const OUTPUT_SNMP: u16 = 14; // egressInterface
    pub const SRC_AS: u16 = 16; // bgpSourceAsNumber
    pub const DST_AS: u16 = 17; // bgpDestinationAsNumber
    pub const LAST_SWITCHED: u16 = 21; // v9: uptime ms of last packet
    pub const FIRST_SWITCHED: u16 = 22; // v9: uptime ms of first packet
    pub const DIRECTION: u16 = 61; // flowDirection (0 ingress, 1 egress)
    pub const FLOW_START_SECONDS: u16 = 150; // IPFIX absolute start
    pub const FLOW_END_SECONDS: u16 = 151; // IPFIX absolute end
}

/// One `(field type, encoded length)` pair inside a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field-type / information-element number.
    pub field_type: u16,
    /// Encoded length in bytes.
    pub length: u16,
}

/// A flow template: the schema a data set is decoded against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// Template id; data FlowSet/Set ids ≥ 256 reference this.
    pub id: u16,
    /// Ordered field specifications.
    pub fields: Vec<FieldSpec>,
}

impl Template {
    /// Create a template; ids below 256 are reserved for
    /// template/option sets in both v9 and IPFIX.
    pub fn new(id: u16, fields: Vec<FieldSpec>) -> WireResult<Template> {
        if id < 256 {
            return Err(WireError::BadField {
                what: "template id must be >= 256",
            });
        }
        if fields.is_empty() {
            return Err(WireError::BadField {
                what: "template must have at least one field",
            });
        }
        Ok(Template { id, fields })
    }

    /// Total encoded record length in bytes.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(|f| f.length as usize).sum()
    }

    /// The standard template this workspace's exporters use for
    /// [`crate::record::FlowRecord`], with v9-style relative timestamps.
    pub fn standard_v9(id: u16) -> Template {
        use field::*;
        Template::new(
            id,
            vec![
                FieldSpec {
                    field_type: IPV4_SRC_ADDR,
                    length: 4,
                },
                FieldSpec {
                    field_type: IPV4_DST_ADDR,
                    length: 4,
                },
                FieldSpec {
                    field_type: L4_SRC_PORT,
                    length: 2,
                },
                FieldSpec {
                    field_type: L4_DST_PORT,
                    length: 2,
                },
                FieldSpec {
                    field_type: PROTOCOL,
                    length: 1,
                },
                FieldSpec {
                    field_type: TCP_FLAGS,
                    length: 1,
                },
                FieldSpec {
                    field_type: INPUT_SNMP,
                    length: 2,
                },
                FieldSpec {
                    field_type: OUTPUT_SNMP,
                    length: 2,
                },
                FieldSpec {
                    field_type: IN_BYTES,
                    length: 8,
                },
                FieldSpec {
                    field_type: IN_PKTS,
                    length: 8,
                },
                FieldSpec {
                    field_type: FIRST_SWITCHED,
                    length: 4,
                },
                FieldSpec {
                    field_type: LAST_SWITCHED,
                    length: 4,
                },
                FieldSpec {
                    field_type: SRC_AS,
                    length: 4,
                },
                FieldSpec {
                    field_type: DST_AS,
                    length: 4,
                },
                FieldSpec {
                    field_type: DIRECTION,
                    length: 1,
                },
            ],
        )
        .expect("standard template is valid")
    }

    /// The standard IPFIX template: absolute second timestamps
    /// (`flowStartSeconds`/`flowEndSeconds`) instead of uptime offsets.
    pub fn standard_ipfix(id: u16) -> Template {
        use field::*;
        Template::new(
            id,
            vec![
                FieldSpec {
                    field_type: IPV4_SRC_ADDR,
                    length: 4,
                },
                FieldSpec {
                    field_type: IPV4_DST_ADDR,
                    length: 4,
                },
                FieldSpec {
                    field_type: L4_SRC_PORT,
                    length: 2,
                },
                FieldSpec {
                    field_type: L4_DST_PORT,
                    length: 2,
                },
                FieldSpec {
                    field_type: PROTOCOL,
                    length: 1,
                },
                FieldSpec {
                    field_type: TCP_FLAGS,
                    length: 1,
                },
                FieldSpec {
                    field_type: INPUT_SNMP,
                    length: 2,
                },
                FieldSpec {
                    field_type: OUTPUT_SNMP,
                    length: 2,
                },
                FieldSpec {
                    field_type: IN_BYTES,
                    length: 8,
                },
                FieldSpec {
                    field_type: IN_PKTS,
                    length: 8,
                },
                FieldSpec {
                    field_type: FLOW_START_SECONDS,
                    length: 4,
                },
                FieldSpec {
                    field_type: FLOW_END_SECONDS,
                    length: 4,
                },
                FieldSpec {
                    field_type: SRC_AS,
                    length: 4,
                },
                FieldSpec {
                    field_type: DST_AS,
                    length: 4,
                },
                FieldSpec {
                    field_type: DIRECTION,
                    length: 1,
                },
            ],
        )
        .expect("standard template is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_validation() {
        assert!(Template::new(
            255,
            vec![FieldSpec {
                field_type: 1,
                length: 4
            }]
        )
        .is_err());
        assert!(Template::new(256, vec![]).is_err());
        assert!(Template::new(
            256,
            vec![FieldSpec {
                field_type: 1,
                length: 4
            }]
        )
        .is_ok());
    }

    #[test]
    fn standard_template_lengths() {
        let t = Template::standard_v9(300);
        assert_eq!(
            t.record_len(),
            4 + 4 + 2 + 2 + 1 + 1 + 2 + 2 + 8 + 8 + 4 + 4 + 4 + 4 + 1
        );
        let t = Template::standard_ipfix(300);
        assert_eq!(t.record_len(), 51);
    }
}
