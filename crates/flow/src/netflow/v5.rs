//! NetFlow version 5 — the fixed-format classic.
//!
//! The L-ISP vantage point in the paper uses "NetFlow at all their border
//! routers" (§2); v5 is the lowest common denominator of router NetFlow and
//! the simplest of the three formats implemented here: a 24-byte header
//! followed by up to 30 fixed 48-byte records.
//!
//! v5 limitations faithfully reproduced: AS numbers are 16-bit (records with
//! 32-bit ASNs are clamped to `AS_TRANS` 23456, as real exporters do), and
//! flow timestamps are expressed in router uptime milliseconds relative to
//! the export time, so decoded timestamps have second granularity after the
//! uptime conversion.

use crate::protocol::{IpProtocol, TcpFlags};
use crate::record::{Direction, FlowKey, FlowRecord};
use crate::time::{uptime, Timestamp};
use crate::wire::{Cursor, PutBe, WireError, WireResult};
use std::net::Ipv4Addr;

/// Protocol version constant.
pub const VERSION: u16 = 5;
/// Header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Record size in bytes.
pub const RECORD_LEN: usize = 48;
/// Maximum records per packet (per Cisco's format definition).
pub const MAX_RECORDS: usize = 30;
/// RFC 6793 transition ASN substituted when a 32-bit ASN cannot be encoded.
pub const AS_TRANS: u16 = 23_456;

/// Decoded NetFlow v5 packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V5Header {
    /// Number of records in the packet.
    pub count: u16,
    /// Milliseconds since the exporting device booted.
    pub sys_uptime_ms: u32,
    /// Export time, Unix seconds.
    pub unix_secs: u32,
    /// Sequence number of the first flow in this packet.
    pub flow_sequence: u32,
    /// Exporter engine type / id.
    pub engine_type: u8,
    /// Exporter engine id.
    pub engine_id: u8,
    /// Sampling mode (2 bits) and interval (14 bits), packed.
    pub sampling: u16,
}

/// Encode a batch of flow records into one v5 packet.
///
/// `export_time` is the packet's export timestamp; flow start/end times are
/// encoded as uptime offsets relative to it, assuming the router booted at
/// Unix time `boot_time`. Panics if more than [`MAX_RECORDS`] records are
/// given (callers batch via [`crate::exporter::Exporter`]).
pub fn encode(
    records: &[FlowRecord],
    export_time: Timestamp,
    boot_time: Timestamp,
    flow_sequence: u32,
) -> Vec<u8> {
    encode_with_engine(records, export_time, boot_time, flow_sequence, 0)
}

/// [`encode`] with an explicit engine type/id pair.
///
/// v5 has no observation-domain field, so the 16-bit domain travels in the
/// engine bytes (type = high byte, id = low byte) — without it, datagrams
/// from different exporters arriving on one real socket are
/// indistinguishable and their interleaved sequence numbers read as
/// phantom loss. The in-process transport never hit this because it
/// carries the domain out of band next to the bytes.
pub fn encode_with_engine(
    records: &[FlowRecord],
    export_time: Timestamp,
    boot_time: Timestamp,
    flow_sequence: u32,
    engine: u16,
) -> Vec<u8> {
    assert!(
        records.len() <= MAX_RECORDS,
        "v5 packet limited to {MAX_RECORDS} records, got {}",
        records.len()
    );
    assert!(export_time >= boot_time, "export before boot");
    // The uptime clock is modular: routers stay up past the ~49.7-day u32
    // wrap, so all uptime fields are encoded mod 2^32 and decoded against
    // the export-time anchor (see `time::uptime`).
    let boot_ms = boot_time.unix() * 1000;
    let export_ms = export_time.unix() * 1000;
    let mut buf = Vec::with_capacity(HEADER_LEN + records.len() * RECORD_LEN);
    buf.put_u16_be(VERSION);
    buf.put_u16_be(records.len() as u16);
    buf.put_u32_be(uptime::to_wire(export_ms, boot_ms));
    buf.put_u32_be(export_time.unix() as u32);
    buf.put_u32_be(0); // unix nanoseconds: generator works at 1 s granularity
    buf.put_u32_be(flow_sequence);
    buf.put_u8_be((engine >> 8) as u8); // engine type: domain high byte
    buf.put_u8_be(engine as u8); // engine id: domain low byte
    buf.put_u16_be(0); // sampling: unsampled

    for r in records {
        // Clamp timestamps into [boot, export]: exporters can emit records
        // for flows still in progress, and collectors see clock skew.
        let first_ms = uptime::record_field(r.start.unix() * 1000, boot_ms, export_ms);
        let last_ms = uptime::record_field(r.end.unix() * 1000, boot_ms, export_ms);
        buf.put_u32_be(u32::from(r.key.src_addr));
        buf.put_u32_be(u32::from(r.key.dst_addr));
        buf.put_u32_be(0); // next hop: not modelled
        buf.put_u16_be(r.input_if);
        buf.put_u16_be(r.output_if);
        // v5 counters are 32-bit; saturate rather than wrap (exporters
        // split long flows before this matters, but the codec must not
        // corrupt counts silently).
        buf.put_u32_be(u32::try_from(r.packets).unwrap_or(u32::MAX));
        buf.put_u32_be(u32::try_from(r.bytes).unwrap_or(u32::MAX));
        buf.put_u32_be(first_ms);
        buf.put_u32_be(last_ms);
        buf.put_u16_be(r.key.src_port);
        buf.put_u16_be(r.key.dst_port);
        buf.put_u8_be(0); // pad1
        buf.put_u8_be(r.tcp_flags.0);
        buf.put_u8_be(r.key.protocol.number());
        buf.put_u8_be(0); // ToS
        buf.put_u16_be(clamp_asn(r.src_as));
        buf.put_u16_be(clamp_asn(r.dst_as));
        buf.put_u8_be(24); // src mask: nominal /24
        buf.put_u8_be(24); // dst mask
        buf.put_u16_be(0); // pad2
    }
    buf
}

/// Clamp a 32-bit ASN into the 16-bit field, substituting [`AS_TRANS`].
fn clamp_asn(asn: u32) -> u16 {
    u16::try_from(asn).unwrap_or(AS_TRANS)
}

/// Cheap structural validation: version, length arithmetic.
///
/// Separated from [`decode`] per the check/parse idiom so collectors can
/// reject garbage before committing to allocation.
pub fn check(buf: &[u8]) -> WireResult<V5Header> {
    let mut c = Cursor::new(buf);
    let version = c.read_u16("v5 version")?;
    if version != VERSION {
        return Err(WireError::BadVersion {
            expected: VERSION,
            found: version,
        });
    }
    let count = c.read_u16("v5 count")?;
    if count as usize > MAX_RECORDS {
        return Err(WireError::BadLength {
            what: "v5 record count",
            value: count as usize,
        });
    }
    let sys_uptime_ms = c.read_u32("v5 uptime")?;
    let unix_secs = c.read_u32("v5 unix secs")?;
    c.read_u32("v5 unix nsecs")?;
    let flow_sequence = c.read_u32("v5 sequence")?;
    let engine_type = c.read_u8("v5 engine type")?;
    let engine_id = c.read_u8("v5 engine id")?;
    let sampling = c.read_u16("v5 sampling")?;
    c.require(count as usize * RECORD_LEN, "v5 records")?;
    Ok(V5Header {
        count,
        sys_uptime_ms,
        unix_secs,
        flow_sequence,
        engine_type,
        engine_id,
        sampling,
    })
}

/// Decode a v5 packet into flow records.
pub fn decode(buf: &[u8]) -> WireResult<(V5Header, Vec<FlowRecord>)> {
    let header = check(buf)?;
    let mut c = Cursor::new(&buf[HEADER_LEN..]);
    // Never reconstruct a boot time by subtracting the (wrapped) uptime
    // from the export clock: it underflows for young exporters and lands
    // ~49.7 days off once the uptime clock has wrapped. Uptime fields are
    // resolved against the export-time anchor instead.
    let export_ms = u64::from(header.unix_secs) * 1000;
    let mut records = Vec::with_capacity(header.count as usize);
    for _ in 0..header.count {
        let src_addr = Ipv4Addr::from(c.read_u32("srcaddr")?);
        let dst_addr = Ipv4Addr::from(c.read_u32("dstaddr")?);
        c.skip(4, "nexthop")?;
        let input_if = c.read_u16("input")?;
        let output_if = c.read_u16("output")?;
        let packets = u64::from(c.read_u32("dPkts")?);
        let bytes = u64::from(c.read_u32("dOctets")?);
        let first_ms = c.read_u32("first")?;
        let last_ms = c.read_u32("last")?;
        let src_port = c.read_u16("srcport")?;
        let dst_port = c.read_u16("dstport")?;
        c.skip(1, "pad1")?;
        let tcp_flags = TcpFlags(c.read_u8("tcp flags")?);
        let protocol = IpProtocol::from_number(c.read_u8("prot")?);
        c.skip(1, "tos")?;
        let src_as = u32::from(c.read_u16("src_as")?);
        let dst_as = u32::from(c.read_u16("dst_as")?);
        c.skip(4, "masks+pad2")?;

        let start = Timestamp::from_unix(
            uptime::from_wire(first_ms, header.sys_uptime_ms, export_ms) / 1000,
        );
        let end = Timestamp::from_unix(
            uptime::from_wire(last_ms, header.sys_uptime_ms, export_ms) / 1000,
        );
        if end < start {
            return Err(WireError::BadField {
                what: "v5 record: flow ends before it starts",
            });
        }
        records.push(FlowRecord {
            key: FlowKey {
                src_addr,
                dst_addr,
                src_port,
                dst_port,
                protocol,
            },
            start,
            end,
            bytes,
            packets,
            tcp_flags,
            input_if,
            output_if,
            src_as,
            dst_as,
            direction: Direction::Unknown,
        });
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    fn sample_record(start: Timestamp) -> FlowRecord {
        FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(203, 0, 113, 7),
                dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                src_port: 55_000,
                dst_port: 443,
                protocol: IpProtocol::Tcp,
            },
            start,
        )
        .end(start.add_secs(12))
        .bytes(90_000)
        .packets(70)
        .tcp_flags(TcpFlags::complete_connection())
        .interfaces(3, 9)
        .asns(3_320, 15_169)
        .build()
    }

    #[test]
    fn roundtrip() {
        let boot = Date::new(2020, 3, 1).midnight();
        let export = boot.add_hours(5);
        let recs: Vec<_> = (0..7)
            .map(|i| {
                let mut r = sample_record(export);
                // Flows must start within router uptime and end before export.
                r.start = Timestamp(export.unix() - 100 + i);
                r.end = Timestamp(export.unix() - 88 + i);
                r
            })
            .collect();
        let pkt = encode(&recs, export, boot, 1_000);
        assert_eq!(pkt.len(), HEADER_LEN + 7 * RECORD_LEN);
        let (hdr, out) = decode(&pkt).unwrap();
        assert_eq!(hdr.count, 7);
        assert_eq!(hdr.flow_sequence, 1_000);
        assert_eq!(hdr.unix_secs as u64, export.unix());
        assert_eq!(out.len(), 7);
        for (a, b) in recs.iter().zip(&out) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.packets, b.packets);
            assert_eq!(a.tcp_flags, b.tcp_flags);
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!((a.src_as, a.dst_as), (b.src_as, b.dst_as));
        }
    }

    #[test]
    fn large_asn_becomes_as_trans() {
        let boot = Date::new(2020, 3, 1).midnight();
        let export = boot.add_hours(1);
        let mut r = sample_record(export);
        r.start = Timestamp(export.unix() - 5);
        r.end = Timestamp(export.unix() - 1);
        r.src_as = 397_143; // 32-bit only
        let pkt = encode(&[r], export, boot, 0);
        let (_, out) = decode(&pkt).unwrap();
        assert_eq!(out[0].src_as, u32::from(AS_TRANS));
        assert_eq!(out[0].dst_as, 15_169);
    }

    #[test]
    fn rejects_wrong_version() {
        let boot = Date::new(2020, 3, 1).midnight();
        let mut pkt = encode(&[], boot.add_hours(1), boot, 0);
        pkt[1] = 9;
        assert!(matches!(
            check(&pkt),
            Err(WireError::BadVersion { found: 9, .. })
        ));
    }

    #[test]
    fn rejects_truncated_records() {
        let boot = Date::new(2020, 3, 1).midnight();
        let export = boot.add_hours(1);
        let mut r = sample_record(export);
        r.start = Timestamp(export.unix() - 5);
        r.end = Timestamp(export.unix() - 1);
        let pkt = encode(&[r], export, boot, 0);
        assert!(matches!(
            check(&pkt[..pkt.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_excess_count() {
        let boot = Date::new(2020, 3, 1).midnight();
        let mut pkt = encode(&[], boot.add_hours(1), boot, 0);
        pkt[3] = 31; // count = 31 > MAX_RECORDS
        assert!(matches!(check(&pkt), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn flow_ending_after_export_is_clamped() {
        // A still-running flow (end beyond export time) must encode
        // without panicking; its timestamps clamp to the export instant.
        let boot = Date::new(2020, 3, 17).midnight();
        let export = boot.add_hours(24).add_secs(3_599);
        let mut r = sample_record(export);
        r.start = Timestamp(export.unix() - 10);
        r.end = Timestamp(export.unix() + 120); // crosses the export time
        let pkt = encode(&[r], export, boot, 0);
        let (_, out) = decode(&pkt).unwrap();
        assert_eq!(out[0].start, r.start);
        assert_eq!(out[0].end, export, "end clamps to export time");
    }

    #[test]
    fn empty_packet_roundtrip() {
        let boot = Date::new(2020, 3, 1).midnight();
        let pkt = encode(&[], boot.add_hours(2), boot, 77);
        let (hdr, recs) = decode(&pkt).unwrap();
        assert_eq!(hdr.count, 0);
        assert_eq!(hdr.flow_sequence, 77);
        assert!(recs.is_empty());
    }

    #[test]
    fn uptime_wrap_straddling_flow_roundtrips() {
        // Boot the router ~49.7 days before the export so the u32 uptime
        // clock wraps between the flow's start and the export instant. The
        // pre-fix decoder reconstructed boot = export - wrapped_uptime and
        // placed such starts ~49.7 days in the future, then rejected the
        // record as "ends before it starts".
        let boot = Date::new(2020, 1, 1).midnight();
        let wrap_secs = uptime::WRAP_MS / 1000; // 4_294_967 s
        let export = boot.add_secs(wrap_secs + 10); // uptime just wrapped
        let mut r = sample_record(export);
        r.start = Timestamp(export.unix() - 30); // before the wrap point
        r.end = Timestamp(export.unix() - 5); // after the wrap point
        let pkt = encode(&[r], export, boot, 0);
        let (hdr, out) = decode(&pkt).unwrap();
        assert!(
            u64::from(hdr.sys_uptime_ms) < 20_000,
            "uptime field must have wrapped, got {}",
            hdr.sys_uptime_ms
        );
        assert_eq!(out[0].start, r.start);
        assert_eq!(out[0].end, r.end);
    }

    #[test]
    fn multi_wrap_uptime_decodes_exactly() {
        // An exporter up for > 2 wrap periods: decode stays exact because
        // it is anchored to the export time, not a reconstructed boot.
        let boot = Date::new(2019, 6, 1).midnight();
        let wrap_secs = uptime::WRAP_MS / 1000;
        let export = boot.add_secs(2 * wrap_secs + 500_000);
        let mut r = sample_record(export);
        r.start = Timestamp(export.unix() - 120);
        r.end = Timestamp(export.unix() - 60);
        let pkt = encode(&[r], export, boot, 3);
        let (_, out) = decode(&pkt).unwrap();
        assert_eq!(out[0].start, r.start);
        assert_eq!(out[0].end, r.end);
    }
}
