//! On-disk container for exported flow datagrams.
//!
//! Collectors archive raw export packets for replay and offline analysis
//! (the paper's IRB setup kept all raw data on-premises and re-ran
//! analyses over stored flows). This is a minimal, self-describing,
//! length-prefixed container:
//!
//! ```text
//! magic "LKDN" | version u16 | flags u16          (8-byte header)
//! repeat: len u32 | recv_time u64 | payload [len]  (one record per datagram)
//! ```
//!
//! All integers big-endian, consistent with the flow protocols themselves.
//! The reader is incremental and validates structure without touching
//! payloads, so a trace can be replayed straight into a
//! [`crate::collector::Collector`].

use crate::time::Timestamp;
use crate::wire::{Cursor, WireError, WireResult};

/// File magic.
pub const MAGIC: [u8; 4] = *b"LKDN";
/// Current format version.
pub const VERSION: u16 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Append the workspace's shared 8-byte container header
/// (`magic | version u16 | flags u16`) used by every on-disk format —
/// trace files here and the columnar archive's segments and manifest in
/// `lockdown-store`.
pub fn write_container_header(buf: &mut Vec<u8>, magic: [u8; 4], version: u16, flags: u16) {
    buf.extend_from_slice(&magic);
    buf.extend_from_slice(&version.to_be_bytes());
    buf.extend_from_slice(&flags.to_be_bytes());
}

/// Validate the shared container header at the cursor, returning the flags
/// word. Rejects a foreign magic and any version other than `version`, so
/// every container format fails fast on the wrong file kind.
pub fn read_container_header(
    cursor: &mut Cursor<'_>,
    magic: [u8; 4],
    version: u16,
) -> WireResult<u16> {
    let found = cursor.read_bytes(4, "container magic")?;
    if found != magic {
        return Err(WireError::BadField {
            what: "container magic",
        });
    }
    let v = cursor.read_u16("container version")?;
    if v != version {
        return Err(WireError::BadVersion {
            expected: version,
            found: v,
        });
    }
    cursor.read_u16("container flags")
}
/// Per-record framing overhead.
pub const RECORD_OVERHEAD: usize = 12;
/// Sanity cap on datagram size (64 KiB, the UDP maximum).
pub const MAX_DATAGRAM: usize = 65_535;

/// Incremental trace writer over any `Vec<u8>`-like sink.
#[derive(Debug, Default)]
pub struct TraceWriter {
    buf: Vec<u8>,
    count: usize,
}

impl TraceWriter {
    /// Start a new trace.
    pub fn new() -> TraceWriter {
        let mut buf = Vec::with_capacity(4_096);
        write_container_header(&mut buf, MAGIC, VERSION, 0); // flags: reserved
        TraceWriter { buf, count: 0 }
    }

    /// Append one datagram received at `recv_time`.
    pub fn push(&mut self, recv_time: Timestamp, payload: &[u8]) -> WireResult<()> {
        if payload.len() > MAX_DATAGRAM {
            return Err(WireError::BadLength {
                what: "trace datagram",
                value: payload.len(),
            });
        }
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(&recv_time.unix().to_be_bytes());
        self.buf.extend_from_slice(payload);
        self.count += 1;
        Ok(())
    }

    /// Number of datagrams written.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finish and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// One replayed datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord<'a> {
    /// Receive timestamp.
    pub recv_time: Timestamp,
    /// Raw datagram bytes.
    pub payload: &'a [u8],
}

/// Zero-copy trace reader.
#[derive(Debug)]
pub struct TraceReader<'a> {
    cursor: Cursor<'a>,
}

impl<'a> TraceReader<'a> {
    /// Open a trace, validating the header.
    pub fn open(bytes: &'a [u8]) -> WireResult<TraceReader<'a>> {
        let mut cursor = Cursor::new(bytes);
        read_container_header(&mut cursor, MAGIC, VERSION)?;
        Ok(TraceReader { cursor })
    }

    /// Read the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> WireResult<Option<TraceRecord<'a>>> {
        if self.cursor.remaining() == 0 {
            return Ok(None);
        }
        let len = self.cursor.read_u32("record length")? as usize;
        if len > MAX_DATAGRAM {
            return Err(WireError::BadLength {
                what: "trace datagram",
                value: len,
            });
        }
        let recv_time = Timestamp::from_unix(self.cursor.read_u64("record time")?);
        let payload = self.cursor.read_bytes(len, "record payload")?;
        Ok(Some(TraceRecord { recv_time, payload }))
    }
}

impl<'a> Iterator for TraceReader<'a> {
    type Item = WireResult<TraceRecord<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Date;

    #[test]
    fn roundtrip() {
        let t0 = Date::new(2020, 3, 25).at_hour(12);
        let mut w = TraceWriter::new();
        w.push(t0, b"hello").unwrap();
        w.push(t0.add_secs(1), b"").unwrap();
        w.push(t0.add_secs(2), &[0xAB; 1_500]).unwrap();
        assert_eq!(w.len(), 3);
        let bytes = w.finish();

        let mut r = TraceReader::open(&bytes).unwrap();
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.recv_time, t0);
        assert_eq!(a.payload, b"hello");
        let b = r.next_record().unwrap().unwrap();
        assert!(b.payload.is_empty());
        let c = r.next_record().unwrap().unwrap();
        assert_eq!(c.payload.len(), 1_500);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn iterator_interface() {
        let t0 = Date::new(2020, 3, 25).at_hour(12);
        let mut w = TraceWriter::new();
        for i in 0..10u8 {
            w.push(t0.add_secs(u64::from(i)), &[i]).unwrap();
        }
        let bytes = w.finish();
        let r = TraceReader::open(&bytes).unwrap();
        let payloads: Vec<u8> = r.map(|rec| rec.unwrap().payload[0]).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOPE\x00\x01\x00\x00";
        assert!(matches!(
            TraceReader::open(bytes),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut w = TraceWriter::new().finish();
        w[5] = 9;
        assert!(matches!(
            TraceReader::open(&w),
            Err(WireError::BadVersion { .. })
        ));
    }

    #[test]
    fn truncation_detected_mid_record() {
        let t0 = Date::new(2020, 3, 25).at_hour(12);
        let mut w = TraceWriter::new();
        w.push(t0, &[7; 100]).unwrap();
        let bytes = w.finish();
        let mut r = TraceReader::open(&bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(r.next_record(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_datagram_rejected_on_write() {
        let t0 = Date::new(2020, 3, 25).at_hour(12);
        let mut w = TraceWriter::new();
        assert!(w.push(t0, &vec![0; MAX_DATAGRAM + 1]).is_err());
    }

    #[test]
    fn shared_header_helper_roundtrips_flags() {
        let mut buf = Vec::new();
        write_container_header(&mut buf, *b"TEST", 3, 0xBEEF);
        let mut c = Cursor::new(&buf);
        assert_eq!(read_container_header(&mut c, *b"TEST", 3).unwrap(), 0xBEEF);
        assert_eq!(c.remaining(), 0);
        // Foreign magic and wrong version are both rejected.
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            read_container_header(&mut c, *b"NOPE", 3),
            Err(WireError::BadField { .. })
        ));
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            read_container_header(&mut c, *b"TEST", 4),
            Err(WireError::BadVersion { .. })
        ));
    }

    #[test]
    fn empty_trace_is_valid() {
        let bytes = TraceWriter::new().finish();
        assert_eq!(bytes.len(), HEADER_LEN);
        let mut r = TraceReader::open(&bytes).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }
}
