//! Minimal civil-time substrate.
//!
//! Flow records carry Unix timestamps and the paper's analyses are organized
//! around civil dates in 2020 (ISO weeks, workdays vs. weekends, specific
//! lockdown dates). No external date crate is in the approved dependency
//! set, so this module implements the small amount of proleptic-Gregorian
//! calendar arithmetic the pipeline needs. The conversion algorithms are the
//! classic `days_from_civil`/`civil_from_days` routines (Howard Hinnant's
//! public-domain derivation), which are exact for the full `i64` day range.
//!
//! All times in this workspace are UTC; the paper's vantage points span time
//! zones but its plots are drawn in local time per vantage point, which the
//! scenario layer models by shifting demand curves, not by carrying zone
//! data in timestamps.

use serde::{Deserialize, Serialize};

/// Seconds in one minute.
pub const SECS_PER_MIN: u64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one civil day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A Unix timestamp (seconds since 1970-01-01T00:00:00Z).
///
/// Wrapped in a newtype so that flow timestamps, durations and bucket
/// indices cannot be mixed up silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Construct from raw Unix seconds.
    pub const fn from_unix(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Raw Unix seconds.
    pub const fn unix(self) -> u64 {
        self.0
    }

    /// The civil date (UTC) containing this instant.
    pub fn date(self) -> Date {
        Date::from_day_number((self.0 / SECS_PER_DAY) as i64)
    }

    /// Hour of day in `0..24`.
    pub fn hour(self) -> u8 {
        ((self.0 % SECS_PER_DAY) / SECS_PER_HOUR) as u8
    }

    /// Minute of hour in `0..60`.
    pub fn minute(self) -> u8 {
        ((self.0 % SECS_PER_HOUR) / SECS_PER_MIN) as u8
    }

    /// Seconds elapsed since midnight UTC.
    pub fn seconds_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// This instant truncated down to the start of its hour.
    pub fn floor_hour(self) -> Timestamp {
        Timestamp(self.0 - self.0 % SECS_PER_HOUR)
    }

    /// This instant truncated down to midnight UTC.
    pub fn floor_day(self) -> Timestamp {
        Timestamp(self.0 - self.0 % SECS_PER_DAY)
    }

    /// Add a whole number of seconds.
    pub const fn add_secs(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Add a whole number of hours.
    pub const fn add_hours(self, hours: u64) -> Timestamp {
        Timestamp(self.0 + hours * SECS_PER_HOUR)
    }
}

/// Day of the week. `Monday` is day 0 so that ISO week arithmetic is direct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the seven variants are self-describing
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// From an index where Monday = 0 … Sunday = 6.
    pub fn from_monday0(idx: u8) -> Weekday {
        use Weekday::*;
        match idx % 7 {
            0 => Monday,
            1 => Tuesday,
            2 => Wednesday,
            3 => Thursday,
            4 => Friday,
            5 => Saturday,
            _ => Sunday,
        }
    }

    /// Index where Monday = 0 … Sunday = 6.
    pub fn monday0(self) -> u8 {
        self as u8
    }

    /// Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// Three-letter English abbreviation, as used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        }
    }
}

/// A proleptic-Gregorian civil date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Gregorian year.
    pub year: i32,
    /// 1-based month.
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

impl Date {
    /// Construct a date; panics on an out-of-range month/day (this substrate
    /// is driven by literals and generated values, so invalid dates are
    /// programming errors, not runtime conditions).
    pub fn new(year: i32, month: u8, day: u8) -> Date {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month}-{day}"
        );
        Date { year, month, day }
    }

    /// Days since the Unix epoch (can be negative before 1970).
    pub fn day_number(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Inverse of [`Date::day_number`].
    pub fn from_day_number(z: i64) -> Date {
        let (year, month, day) = civil_from_days(z);
        Date { year, month, day }
    }

    /// Midnight UTC at the start of this date.
    ///
    /// Panics for dates before 1970 (the pipeline only handles 2015–2020).
    pub fn midnight(self) -> Timestamp {
        let z = self.day_number();
        assert!(z >= 0, "pre-epoch date has no Unix timestamp: {self:?}");
        Timestamp(z as u64 * SECS_PER_DAY)
    }

    /// Timestamp at `hour:00:00` UTC on this date.
    pub fn at_hour(self, hour: u8) -> Timestamp {
        assert!(hour < 24, "hour out of range: {hour}");
        self.midnight().add_hours(hour as u64)
    }

    /// Day of week.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday (= Monday-based index 3).
        let z = self.day_number();
        Weekday::from_monday0(((z + 3).rem_euclid(7)) as u8)
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn add_days(self, n: i64) -> Date {
        Date::from_day_number(self.day_number() + n)
    }

    /// Days from `self` to `other` (positive if `other` is later).
    pub fn days_until(self, other: Date) -> i64 {
        other.day_number() - self.day_number()
    }

    /// ISO-8601 week number (1–53) together with the ISO week-year.
    ///
    /// The paper indexes 2020 by calendar week ("normalized by 3rd week of
    /// Jan", "week 10", …); those references follow ISO numbering, where
    /// week 1 is the week containing the first Thursday of the year.
    pub fn iso_week(self) -> (i32, u8) {
        // Thursday of the current ISO week decides the ISO year.
        let z = self.day_number();
        let weekday = (z + 3).rem_euclid(7); // Monday = 0
        let thursday = z - weekday + 3;
        let (ty, _, _) = civil_from_days(thursday);
        let jan1 = days_from_civil(ty, 1, 1);
        let week = ((thursday - jan1) / 7 + 1) as u8;
        (ty, week)
    }

    /// `YYYY-MM-DD` rendering.
    pub fn iso(self) -> String {
        format!("{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }

    /// Iterate all dates in `[self, end]`.
    pub fn range_inclusive(self, end: Date) -> impl Iterator<Item = Date> {
        let start = self.day_number();
        let stop = end.day_number();
        (start..=stop).map(Date::from_day_number)
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in a month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range: {month}"),
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m as i32 + 9) % 12); // March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Wrap-aware arithmetic for the NetFlow `SysUptime` clock.
///
/// v5/v9 headers carry the exporter's uptime as u32 *milliseconds*, which
/// wraps every `2^32` ms — about 49.7 days. Routers routinely stay up far
/// longer, so encoders must treat the field as modular and decoders must
/// never reconstruct a "boot time" by subtracting the wrapped field from the
/// export clock: timestamps that straddle a wrap would land ~49.7 days in
/// the future (and flows spanning the wrap would appear to end before they
/// start). Instead, every decode resolves a field against the *export-time
/// anchor* carried in the same header, using serial-number (RFC 1982 style)
/// disambiguation within half a wrap period.
pub mod uptime {
    /// The uptime clock's period: `2^32` ms, about 49.7 days.
    pub const WRAP_MS: u64 = 1 << 32;
    /// Half the wrap period. Offsets within this window are unambiguous
    /// under serial-number comparison.
    pub const HALF_WRAP_MS: u64 = 1 << 31;

    /// Encode an absolute Unix-millisecond instant as the wrapped u32
    /// uptime of an exporter booted at `boot_unix_ms`. Pure modular
    /// arithmetic: instants before boot wrap backwards, which decodes
    /// correctly as long as they stay within half a wrap of the anchor.
    pub fn to_wire(unix_ms: u64, boot_unix_ms: u64) -> u32 {
        unix_ms.wrapping_sub(boot_unix_ms) as u32
    }

    /// Wire uptime for a record timestamp, clamped into `[boot, export]`
    /// before wrapping: exporters emit records for flows still in progress
    /// (clamped to the export instant) and may see pre-boot timestamps
    /// under clock skew (clamped to boot), and the encoding must stay
    /// within half a wrap of the export anchor to decode unambiguously.
    pub fn record_field(unix_ms: u64, boot_unix_ms: u64, export_unix_ms: u64) -> u32 {
        debug_assert!(boot_unix_ms <= export_unix_ms, "export before boot");
        to_wire(unix_ms.clamp(boot_unix_ms, export_unix_ms), boot_unix_ms)
    }

    /// Decode a wrapped uptime `field` back to absolute Unix milliseconds
    /// against the export-time anchor `(export_uptime_ms, export_unix_ms)`
    /// taken from the same packet header. Fields up to [`HALF_WRAP_MS`]
    /// behind the anchor resolve into the past — across any number of
    /// wraps — and fields ahead of it resolve (slightly) into the future,
    /// covering exporter clock skew.
    pub fn from_wire(field: u32, export_uptime_ms: u32, export_unix_ms: u64) -> u64 {
        let behind = u64::from(export_uptime_ms.wrapping_sub(field));
        if behind <= HALF_WRAP_MS {
            export_unix_ms.saturating_sub(behind)
        } else {
            export_unix_ms + u64::from(field.wrapping_sub(export_uptime_ms))
        }
    }

    /// Checked variant of [`from_wire`]: `None` when the resolved instant
    /// would precede the Unix epoch (only possible with a corrupt anchor).
    pub fn checked_from_wire(
        field: u32,
        export_uptime_ms: u32,
        export_unix_ms: u64,
    ) -> Option<u64> {
        let behind = u64::from(export_uptime_ms.wrapping_sub(field));
        if behind <= HALF_WRAP_MS {
            export_unix_ms.checked_sub(behind)
        } else {
            export_unix_ms.checked_add(u64::from(field.wrapping_sub(export_uptime_ms)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        let d = Date::new(1970, 1, 1);
        assert_eq!(d.day_number(), 0);
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_2020_weekdays() {
        // Dates named in the paper.
        assert_eq!(Date::new(2020, 2, 19).weekday(), Weekday::Wednesday);
        assert_eq!(Date::new(2020, 2, 22).weekday(), Weekday::Saturday);
        assert_eq!(Date::new(2020, 3, 25).weekday(), Weekday::Wednesday);
        assert_eq!(Date::new(2020, 3, 11).weekday(), Weekday::Wednesday);
        assert_eq!(Date::new(2020, 4, 12).weekday(), Weekday::Sunday); // Easter
        assert_eq!(Date::new(2020, 1, 1).weekday(), Weekday::Wednesday);
    }

    #[test]
    fn leap_year_2020() {
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(2019));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
    }

    #[test]
    fn roundtrip_day_numbers() {
        for z in [-1_000_000i64, -1, 0, 1, 18_262, 18_322, 20_000, 1_000_000] {
            let d = Date::from_day_number(z);
            assert_eq!(d.day_number(), z, "roundtrip failed at {z} ({d:?})");
        }
    }

    #[test]
    fn iso_week_2020() {
        // 2020-01-01 was a Wednesday, so it belongs to ISO week 1 of 2020.
        assert_eq!(Date::new(2020, 1, 1).iso_week(), (2020, 1));
        // The paper's "third calendar week of Jan" baseline: Jan 13–19.
        assert_eq!(Date::new(2020, 1, 15).iso_week(), (2020, 3));
        // Lockdown week (week 12 starts Mar 16).
        assert_eq!(Date::new(2020, 3, 16).iso_week(), (2020, 12));
        assert_eq!(Date::new(2020, 3, 22).iso_week(), (2020, 12));
        // Week 10 (first lockdowns "early March", week of Mar 2).
        assert_eq!(Date::new(2020, 3, 2).iso_week(), (2020, 10));
        // Year boundary: 2019-12-30 is ISO week 1 of 2020.
        assert_eq!(Date::new(2019, 12, 30).iso_week(), (2020, 1));
        // 2021-01-01 is ISO week 53 of 2020.
        assert_eq!(Date::new(2021, 1, 1).iso_week(), (2020, 53));
    }

    #[test]
    fn timestamp_fields() {
        let t = Date::new(2020, 3, 25).at_hour(13).add_secs(45 * 60 + 7);
        assert_eq!(t.date(), Date::new(2020, 3, 25));
        assert_eq!(t.hour(), 13);
        assert_eq!(t.minute(), 45);
        assert_eq!(t.floor_hour(), Date::new(2020, 3, 25).at_hour(13));
        assert_eq!(t.floor_day(), Date::new(2020, 3, 25).midnight());
    }

    #[test]
    fn date_arithmetic() {
        let d = Date::new(2020, 2, 27);
        assert_eq!(d.add_days(3), Date::new(2020, 3, 1)); // leap February
        assert_eq!(d.add_days(-27), Date::new(2020, 1, 31));
        assert_eq!(
            Date::new(2020, 1, 1).days_until(Date::new(2020, 5, 11)),
            131
        );
        let count = Date::new(2020, 2, 28)
            .range_inclusive(Date::new(2020, 5, 8))
            .count();
        assert_eq!(count, 71); // EDU capture window: "72 days" per the paper counts both endpoints loosely
    }

    #[test]
    fn iso_rendering() {
        assert_eq!(Date::new(2020, 3, 5).iso(), "2020-03-05");
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn invalid_date_panics() {
        Date::new(2019, 2, 29);
    }

    #[test]
    fn uptime_roundtrip_within_first_epoch() {
        let boot_ms = Date::new(2020, 2, 1).midnight().unix() * 1000;
        let export_ms = boot_ms + 5 * 3_600 * 1000;
        let export_field = uptime::to_wire(export_ms, boot_ms);
        for t in [boot_ms, boot_ms + 1, export_ms - 60_000, export_ms] {
            let field = uptime::to_wire(t, boot_ms);
            assert_eq!(uptime::from_wire(field, export_field, export_ms), t);
        }
    }

    #[test]
    fn uptime_roundtrip_across_the_wrap() {
        // Boot ~49.7 days before export so the uptime clock wraps between
        // a flow's start and the export instant.
        let boot_ms = Date::new(2020, 2, 1).midnight().unix() * 1000;
        let export_ms = boot_ms + uptime::WRAP_MS + 5_000; // just past the wrap
        let export_field = uptime::to_wire(export_ms, boot_ms);
        assert_eq!(u64::from(export_field), 5_000, "uptime field has wrapped");
        // A flow that started 1 s *before* the wrap decodes monotonically.
        let start_ms = boot_ms + uptime::WRAP_MS - 1_000;
        let field = uptime::to_wire(start_ms, boot_ms);
        assert_eq!(uptime::from_wire(field, export_field, export_ms), start_ms);
        // And one just after it.
        let after_ms = boot_ms + uptime::WRAP_MS + 1_000;
        let field = uptime::to_wire(after_ms, boot_ms);
        assert_eq!(uptime::from_wire(field, export_field, export_ms), after_ms);
    }

    #[test]
    fn uptime_resolves_multi_wrap_uptimes() {
        // An exporter up for several wrap periods: fields still resolve
        // exactly because decoding is anchor-relative, not boot-relative.
        let boot_ms = Date::new(2015, 1, 1).midnight().unix() * 1000;
        let export_ms = boot_ms + 3 * uptime::WRAP_MS + 123_456;
        let export_field = uptime::to_wire(export_ms, boot_ms);
        let t = export_ms - 3_599_000; // an hour-old flow
        let field = uptime::to_wire(t, boot_ms);
        assert_eq!(uptime::from_wire(field, export_field, export_ms), t);
    }

    #[test]
    fn uptime_record_field_clamps_into_window() {
        let boot_ms = 1_000_000;
        let export_ms = boot_ms + 10_000;
        // Before boot clamps to boot (field 0), after export to export.
        assert_eq!(uptime::record_field(0, boot_ms, export_ms), 0);
        assert_eq!(
            uptime::record_field(export_ms + 5_000, boot_ms, export_ms),
            uptime::to_wire(export_ms, boot_ms)
        );
    }

    #[test]
    fn uptime_future_skew_resolves_forward() {
        // A field slightly *ahead* of the export anchor (exporter clock
        // skew) resolves into the future instead of 49.7 days back.
        let export_ms = 1_700_000_000_000;
        let export_field = 50_000u32;
        let field = export_field + 2_000;
        assert_eq!(
            uptime::from_wire(field, export_field, export_ms),
            export_ms + 2_000
        );
        assert_eq!(
            uptime::checked_from_wire(field, export_field, export_ms),
            Some(export_ms + 2_000)
        );
    }
}
