//! Prefix-preserving IP address anonymization.
//!
//! The paper's ethics section (§2.1) states that "IP addresses are hashed to
//! prevent information leakage". For the pipeline to keep working after
//! anonymization, the hash must preserve *prefix structure* — otherwise
//! IP-to-AS attribution (longest-prefix match) and unique-IP counting per
//! prefix break. This module implements a Crypto-PAn-style prefix-preserving
//! scheme: bit *i* of the output is bit *i* of the input XORed with a keyed
//! pseudo-random function of bits `0..i`. Two addresses sharing a k-bit
//! prefix therefore map to outputs sharing exactly a k-bit prefix.
//!
//! The PRF is a splitmix64-based keyed mixer — deterministic, fast and
//! adequate for a research pipeline (this is an anonymization substrate for
//! a simulation, not a cryptographic product; the structure, not the cipher
//! strength, is what the reproduction needs).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// splitmix64 finalizer: a well-mixed 64->64 bijection.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A keyed prefix-preserving anonymizer for IPv4 addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anonymizer {
    key: u64,
}

impl Anonymizer {
    /// Create an anonymizer from a secret key. The same key always yields
    /// the same mapping (the deterministic property the pipeline relies on
    /// for joining flows across files).
    pub fn new(key: u64) -> Anonymizer {
        Anonymizer { key }
    }

    /// Anonymize one address, preserving prefix relationships.
    pub fn anonymize(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let a = u32::from(addr);
        let mut out = 0u32;
        for i in 0..32 {
            // The i high bits of the input, right-aligned, with a sentinel
            // length marker so "prefix 0 of length 2" differs from
            // "prefix 0 of length 3".
            let prefix = if i == 0 { 0 } else { (a >> (32 - i)) as u64 };
            let material = splitmix64(self.key ^ prefix.wrapping_mul(0x100).wrapping_add(i as u64));
            let flip = (material & 1) as u32;
            let bit = (a >> (31 - i)) & 1;
            out = (out << 1) | (bit ^ flip);
        }
        Ipv4Addr::from(out)
    }

    /// Length (in bits) of the longest common prefix of two addresses.
    pub fn common_prefix_len(a: Ipv4Addr, b: Ipv4Addr) -> u32 {
        (u32::from(a) ^ u32::from(b)).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let anon = Anonymizer::new(42);
        let a = Ipv4Addr::new(192, 0, 2, 55);
        assert_eq!(anon.anonymize(a), anon.anonymize(a));
    }

    #[test]
    fn different_keys_differ() {
        let a = Ipv4Addr::new(198, 51, 100, 7);
        assert_ne!(
            Anonymizer::new(1).anonymize(a),
            Anonymizer::new(2).anonymize(a)
        );
    }

    #[test]
    fn injective_on_sample() {
        // Prefix preservation implies injectivity; verify on a dense sample.
        let anon = Anonymizer::new(0xDEAD_BEEF);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u32 {
            let addr = Ipv4Addr::from(i * 1_048_573); // spread over the space
            assert!(seen.insert(anon.anonymize(addr)), "collision at {addr}");
        }
    }

    #[test]
    fn preserves_prefix_lengths_exactly() {
        let anon = Anonymizer::new(7);
        let base = Ipv4Addr::new(10, 20, 30, 40);
        for k in 0..32u32 {
            // Flip exactly bit k: common prefix is exactly k bits.
            let flipped = Ipv4Addr::from(u32::from(base) ^ (1 << (31 - k)));
            let (ea, eb) = (anon.anonymize(base), anon.anonymize(flipped));
            assert_eq!(
                Anonymizer::common_prefix_len(ea, eb),
                k,
                "prefix length not preserved at bit {k}"
            );
        }
    }

    #[test]
    fn common_prefix_len_basics() {
        let a = Ipv4Addr::new(192, 168, 0, 0);
        assert_eq!(Anonymizer::common_prefix_len(a, a), 32);
        assert_eq!(
            Anonymizer::common_prefix_len(a, Ipv4Addr::new(192, 168, 128, 0)),
            16
        );
        assert_eq!(
            Anonymizer::common_prefix_len(Ipv4Addr::new(0, 0, 0, 0), Ipv4Addr::new(128, 0, 0, 0)),
            0
        );
    }
}
