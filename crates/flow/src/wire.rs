//! Shared wire-format plumbing for the NetFlow/IPFIX codecs.
//!
//! Following the smoltcp/tokio-framing idiom, decoding is split into a cheap
//! `check`-style validation (enough bytes? sane lengths?) and the actual
//! field extraction, both operating on a borrowed byte slice through a
//! cursor — no allocation happens while walking packet bytes.

use std::fmt;

/// Errors that can arise while encoding or decoding flow export packets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // enum-internal fields are described per variant
pub enum WireError {
    /// The buffer ended before a complete structure was read.
    /// The buffer ended early.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes needed beyond what was available.
        needed: usize,
    },
    /// A version field did not match the expected protocol version.
    BadVersion { expected: u16, found: u16 },
    /// A length or count field is inconsistent with the packet contents.
    BadLength { what: &'static str, value: usize },
    /// A data set referenced a template that has not been seen.
    UnknownTemplate { id: u16 },
    /// A field value is semantically invalid.
    BadField { what: &'static str },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed } => {
                write!(f, "truncated {what}: {needed} more byte(s) needed")
            }
            WireError::BadVersion { expected, found } => {
                write!(f, "bad version: expected {expected}, found {found}")
            }
            WireError::BadLength { what, value } => write!(f, "bad length for {what}: {value}"),
            WireError::UnknownTemplate { id } => write!(f, "unknown template id {id}"),
            WireError::BadField { what } => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for codec operations.
pub type WireResult<T> = Result<T, WireError>;

/// A non-allocating big-endian read cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at offset 0 of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fail with a `Truncated` error unless `n` bytes remain.
    pub fn require(&self, n: usize, what: &'static str) -> WireResult<()> {
        if self.remaining() < n {
            Err(WireError::Truncated {
                what,
                needed: n - self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    pub fn read_u8(&mut self, what: &'static str) -> WireResult<u8> {
        self.require(1, what)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Read a big-endian `u16`.
    pub fn read_u16(&mut self, what: &'static str) -> WireResult<u16> {
        self.require(2, what)?;
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    /// Read a big-endian `u32`.
    pub fn read_u32(&mut self, what: &'static str) -> WireResult<u32> {
        self.require(4, what)?;
        let b = &self.buf[self.pos..self.pos + 4];
        self.pos += 4;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian `u64`.
    pub fn read_u64(&mut self, what: &'static str) -> WireResult<u64> {
        self.require(8, what)?;
        let b = &self.buf[self.pos..self.pos + 8];
        self.pos += 8;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an unsigned integer of 1, 2, 4 or 8 bytes (IPFIX reduced-size
    /// encoding permits shorter-than-natural field lengths).
    pub fn read_uint(&mut self, len: usize, what: &'static str) -> WireResult<u64> {
        self.require(len, what)?;
        if len == 0 || len > 8 {
            return Err(WireError::BadLength { what, value: len });
        }
        let mut v: u64 = 0;
        for _ in 0..len {
            v = (v << 8) | u64::from(self.buf[self.pos]);
            self.pos += 1;
        }
        Ok(v)
    }

    /// Borrow `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize, what: &'static str) -> WireResult<&'a [u8]> {
        self.require(n, what)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize, what: &'static str) -> WireResult<()> {
        self.require(n, what)?;
        self.pos += n;
        Ok(())
    }

    /// A sub-cursor over the next `n` bytes, advancing this cursor past them.
    pub fn sub(&mut self, n: usize, what: &'static str) -> WireResult<Cursor<'a>> {
        let bytes = self.read_bytes(n, what)?;
        Ok(Cursor::new(bytes))
    }
}

/// Big-endian append helpers over a `Vec<u8>` used by the encoders.
#[allow(missing_docs)] // four symmetric append methods
pub trait PutBe {
    fn put_u8_be(&mut self, v: u8);
    fn put_u16_be(&mut self, v: u16);
    fn put_u32_be(&mut self, v: u32);
    fn put_u64_be(&mut self, v: u64);
}

impl PutBe for Vec<u8> {
    fn put_u8_be(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_be(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32_be(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64_be(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads() {
        let buf = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let mut c = Cursor::new(&buf);
        assert_eq!(c.read_u8("a").unwrap(), 1);
        assert_eq!(c.read_u16("b").unwrap(), 0x0203);
        assert_eq!(c.read_u32("c").unwrap(), 0x0405_0607);
        assert_eq!(c.remaining(), 2);
        assert!(matches!(
            c.read_u32("d"),
            Err(WireError::Truncated { needed: 2, .. })
        ));
    }

    #[test]
    fn cursor_uint_reduced_size() {
        let buf = [0xAB, 0xCD, 0xEF];
        let mut c = Cursor::new(&buf);
        assert_eq!(c.read_uint(3, "x").unwrap(), 0x00AB_CDEF);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.read_uint(0, "x"),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn cursor_sub() {
        let buf = [1, 2, 3, 4, 5];
        let mut c = Cursor::new(&buf);
        let mut inner = c.sub(3, "set").unwrap();
        assert_eq!(inner.read_u16("f").unwrap(), 0x0102);
        assert_eq!(inner.remaining(), 1);
        assert_eq!(c.remaining(), 2);
        assert_eq!(c.read_u16("rest").unwrap(), 0x0405);
    }

    #[test]
    fn put_be_roundtrip() {
        let mut v = Vec::new();
        v.put_u8_be(7);
        v.put_u16_be(0x1234);
        v.put_u32_be(0xDEAD_BEEF);
        v.put_u64_be(42);
        let mut c = Cursor::new(&v);
        assert_eq!(c.read_u8("a").unwrap(), 7);
        assert_eq!(c.read_u16("b").unwrap(), 0x1234);
        assert_eq!(c.read_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.read_u64("d").unwrap(), 42);
    }

    #[test]
    fn error_display() {
        let e = WireError::UnknownTemplate { id: 300 };
        assert_eq!(e.to_string(), "unknown template id 300");
        let e = WireError::BadVersion {
            expected: 9,
            found: 5,
        };
        assert!(e.to_string().contains("expected 9"));
    }
}
