//! Transport/IP protocol numbers and TCP flags as they appear in flow records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// IP protocol numbers relevant to the paper's analyses.
///
/// The paper's port-level analysis (§4) and the EDU/VPN traffic classes
/// (§6, Appendix B) distinguish TCP, UDP, and the tunnelling protocols ESP
/// (IPsec payload) and GRE, which carry no ports. Everything else is folded
/// into [`IpProtocol::Other`] with its raw protocol number preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IpProtocol {
    /// ICMP (protocol 1).
    Icmp,
    /// TCP (protocol 6).
    Tcp,
    /// UDP (protocol 17).
    Udp,
    /// Generic Routing Encapsulation (protocol 47) — IPsec/VPN tunnels.
    Gre,
    /// IPsec Encapsulating Security Payload (protocol 50).
    Esp,
    /// Any other protocol, by IANA number.
    Other(u8),
}

impl IpProtocol {
    /// Parse from the IANA protocol number.
    pub fn from_number(n: u8) -> IpProtocol {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            47 => IpProtocol::Gre,
            50 => IpProtocol::Esp,
            other => IpProtocol::Other(other),
        }
    }

    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Gre => 47,
            IpProtocol::Esp => 50,
            IpProtocol::Other(n) => n,
        }
    }

    /// Whether this protocol carries transport-layer ports.
    pub fn has_ports(self) -> bool {
        matches!(self, IpProtocol::Tcp | IpProtocol::Udp)
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Gre => write!(f, "GRE"),
            IpProtocol::Esp => write!(f, "ESP"),
            IpProtocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// TCP control-bit flags, as accumulated over a flow by NetFlow/IPFIX
/// exporters (`tcpControlBits`, IE 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

#[allow(missing_docs)] // the six flag constants are self-describing
impl TcpFlags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
    pub const URG: u8 = 0x20;

    /// Flags typical of a complete connection (SYN + ACK + FIN).
    pub fn complete_connection() -> TcpFlags {
        TcpFlags(Self::SYN | Self::ACK | Self::FIN | Self::PSH)
    }

    /// Whether the SYN bit was observed — used to count *connections*
    /// (as opposed to volume) in the EDU analysis (§7).
    pub fn has_syn(self) -> bool {
        self.0 & Self::SYN != 0
    }

    pub fn has_fin(self) -> bool {
        self.0 & Self::FIN != 0
    }

    pub fn has_rst(self) -> bool {
        self.0 & Self::RST != 0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u8, char); 6] = [
            (TcpFlags::URG, 'U'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::SYN, 'S'),
            (TcpFlags::FIN, 'F'),
        ];
        for (bit, ch) in NAMES {
            if self.0 & bit != 0 {
                write!(f, "{ch}")?;
            } else {
                write!(f, ".")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(IpProtocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn named_protocols() {
        assert_eq!(IpProtocol::from_number(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from_number(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from_number(47), IpProtocol::Gre);
        assert_eq!(IpProtocol::from_number(50), IpProtocol::Esp);
        assert!(IpProtocol::Tcp.has_ports());
        assert!(IpProtocol::Udp.has_ports());
        assert!(!IpProtocol::Gre.has_ports());
        assert!(!IpProtocol::Esp.has_ports());
    }

    #[test]
    fn display() {
        assert_eq!(IpProtocol::Tcp.to_string(), "TCP");
        assert_eq!(IpProtocol::Other(132).to_string(), "proto132");
        assert_eq!(
            TcpFlags(TcpFlags::SYN | TcpFlags::ACK).to_string(),
            ".A..S."
        );
    }

    #[test]
    fn flags() {
        let f = TcpFlags::complete_connection();
        assert!(f.has_syn());
        assert!(f.has_fin());
        assert!(!f.has_rst());
    }
}
