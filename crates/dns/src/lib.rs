//! # lockdown-dns
//!
//! The DNS substrate behind §6's headline methodological claim: port-based
//! VPN identification "vastly undercounts actual VPN traffic", and
//! domain-based identification over TCP/443 recovers the missing share.
//!
//! * [`domain`] — domain names with public-suffix handling (the `*vpn*`
//!   label search scans labels *left of the public suffix*);
//! * [`corpus`] — a synthetic CT-log/forward-DNS/toplist corpus with
//!   VPN gateways, www-shared addresses, decoys, and the ground truth the
//!   generator and tests use;
//! * [`vpn`] — the paper's identification procedure verbatim, including
//!   the conservative `www.`-collision elimination step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod domain;
pub mod vpn;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::corpus::{synthesize, Corpus, DnsDb, DnsEntry, SourceSet, VpnGroundTruth};
    pub use crate::domain::DomainName;
    pub use crate::vpn::{identify_vpn_ips, VpnIdentification};
}
