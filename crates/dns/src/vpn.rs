//! §6's domain-based VPN endpoint identification, implemented verbatim.
//!
//! The procedure, quoting the paper:
//!
//! 1. "identify potential VPN domains by searching for `*vpn*` in any
//!    domain label left of the public suffix" across CT-log, forward-DNS
//!    and toplist names (but "not … www.");
//! 2. "resolve all matching domains to … candidate IP addresses";
//! 3. "we then also resolve the domains from the same public suffix
//!    prepended with www … If the returned addresses of the `*vpn*` domain
//!    and the www domain match, we eliminate them from our candidates" —
//!    the conservative step that avoids misclassifying Web traffic;
//! 4. classify TCP/443 traffic to the surviving addresses as VPN traffic.
//!
//! The output feeds `lockdown-analysis`'s Fig. 10 reproduction.

use crate::corpus::DnsDb;
use crate::domain::DomainName;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Result of the identification procedure.
#[derive(Debug, Clone, Default)]
pub struct VpnIdentification {
    /// `*vpn*` domains found (step 1).
    pub candidate_domains: Vec<DomainName>,
    /// Candidate IPs before elimination (step 2).
    pub raw_candidate_ips: BTreeSet<Ipv4Addr>,
    /// IPs removed because the `www.` sibling shares them (step 3).
    pub eliminated_ips: BTreeSet<Ipv4Addr>,
    /// Final candidate VPN IPs (step 4's classification set).
    pub vpn_ips: BTreeSet<Ipv4Addr>,
}

impl VpnIdentification {
    /// Whether an address is classified as a VPN endpoint.
    pub fn is_vpn_ip(&self, ip: Ipv4Addr) -> bool {
        self.vpn_ips.contains(&ip)
    }
}

/// Run the §6 procedure over a DNS database.
pub fn identify_vpn_ips(db: &DnsDb) -> VpnIdentification {
    let mut out = VpnIdentification::default();

    // Step 1: *vpn* label left of the public suffix, not a www host.
    for (name, entry) in db.iter() {
        if name.has_vpn_label() && !name.is_www() {
            out.candidate_domains.push(name.clone());
            out.raw_candidate_ips.extend(entry.addrs.iter().copied());
        }
    }

    // Steps 2–3: per candidate domain, resolve the www sibling and
    // eliminate shared addresses.
    let mut eliminated = BTreeSet::new();
    for name in &out.candidate_domains {
        let Some(www) = name.www_sibling() else {
            continue;
        };
        let candidate_addrs: BTreeSet<Ipv4Addr> = db.resolve(name).iter().copied().collect();
        let www_addrs: BTreeSet<Ipv4Addr> = db.resolve(&www).iter().copied().collect();
        eliminated.extend(candidate_addrs.intersection(&www_addrs).copied());
    }

    out.vpn_ips = out
        .raw_candidate_ips
        .difference(&eliminated)
        .copied()
        .collect();
    out.eliminated_ips = eliminated;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{synthesize, SourceSet};
    use lockdown_topology::registry::Registry;

    fn setup() -> (crate::corpus::Corpus, VpnIdentification) {
        let corpus = synthesize(&Registry::synthesize(), 42);
        let id = identify_vpn_ips(&corpus.db);
        (corpus, id)
    }

    #[test]
    fn finds_all_discoverable_gateways() {
        let (corpus, id) = setup();
        for ip in corpus.truth.discoverable() {
            assert!(id.is_vpn_ip(ip), "missed gateway {ip}");
        }
    }

    #[test]
    fn eliminates_www_shared_gateways() {
        let (corpus, id) = setup();
        assert!(
            !corpus.truth.shared_with_www.is_empty(),
            "corpus must contain shared gateways"
        );
        for ip in &corpus.truth.shared_with_www {
            assert!(
                !id.is_vpn_ip(*ip),
                "www-shared address {ip} must be eliminated (conservative estimate)"
            );
            assert!(id.eliminated_ips.contains(ip));
        }
    }

    #[test]
    fn no_plain_web_servers_classified() {
        let (corpus, id) = setup();
        // Any IP in the final set must be a true gateway: the synthetic
        // corpus gives VPN names dedicated addresses, so precision is 1.0.
        for ip in &id.vpn_ips {
            assert!(
                corpus.truth.gateways.contains_key(ip),
                "false positive: {ip}"
            );
        }
    }

    #[test]
    fn candidates_include_paper_example_shape() {
        let (_, id) = setup();
        assert!(
            id.candidate_domains
                .iter()
                .any(|d| d.to_string().starts_with("companyvpn3.")),
            "corpus should produce companyvpn3.* candidates like the paper's example"
        );
    }

    #[test]
    fn elimination_step_is_load_bearing() {
        let (corpus, id) = setup();
        // Without step 3, the www-shared addresses would have been counted.
        let would_be = id.raw_candidate_ips.len();
        let kept = id.vpn_ips.len();
        assert!(kept < would_be, "elimination removed nothing");
        assert_eq!(would_be - kept, id.eliminated_ips.len());
        assert!(corpus
            .truth
            .shared_with_www
            .iter()
            .all(|ip| id.eliminated_ips.contains(ip)));
    }

    #[test]
    fn handcrafted_example() {
        // The paper's example verbatim: companyvpn3.example.com and
        // www.example.com sharing an address → eliminated.
        let mut db = DnsDb::new();
        let s = SourceSet {
            ct_logs: true,
            fdns: false,
            toplist: false,
        };
        let shared: std::net::Ipv4Addr = "192.0.2.1".parse().unwrap();
        let dedicated: std::net::Ipv4Addr = "192.0.2.2".parse().unwrap();
        db.insert("companyvpn3.example.com".parse().unwrap(), shared, s);
        db.insert("www.example.com".parse().unwrap(), shared, s);
        db.insert("vpn.other.org".parse().unwrap(), dedicated, s);
        db.insert(
            "www.other.org".parse().unwrap(),
            "192.0.2.3".parse().unwrap(),
            s,
        );

        let id = identify_vpn_ips(&db);
        assert!(!id.is_vpn_ip(shared), "shared IP must be eliminated");
        assert!(id.is_vpn_ip(dedicated));
        assert_eq!(id.candidate_domains.len(), 2);
    }

    #[test]
    fn www_vpn_domains_are_skipped() {
        // A literal www.vpn-host.example.com is excluded by the "not www"
        // rule even though a non-www label contains vpn.
        let mut db = DnsDb::new();
        let s = SourceSet::default();
        db.insert(
            "www.vpnportal.example.com".parse().unwrap(),
            "192.0.2.9".parse().unwrap(),
            s,
        );
        let id = identify_vpn_ips(&db);
        assert!(id.candidate_domains.is_empty());
        assert!(id.vpn_ips.is_empty());
    }
}
