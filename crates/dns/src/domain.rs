//! Domain names and public-suffix handling.
//!
//! §6 of the paper identifies VPN gateways by "searching for `*vpn*` in any
//! domain label left of the public suffix (e.g.
//! `companyvpn3.example.com`)". That requires a public-suffix notion; the
//! real pipeline uses Mozilla's Public Suffix List, and this substrate
//! embeds the subset of rules the synthetic corpus uses (including
//! two-level rules like `co.uk`, exercising the same matching logic).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A fully-qualified domain name, stored as lower-case labels in
/// left-to-right order (`www.example.com` → `["www", "example", "com"]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainName {
    labels: Vec<String>,
}

/// Error parsing a domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDomainError(pub String);

impl fmt::Display for ParseDomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid domain name: {}", self.0)
    }
}

impl std::error::Error for ParseDomainError {}

impl DomainName {
    /// Construct from labels (left to right). Labels are lower-cased.
    pub fn from_labels<I, S>(labels: I) -> Result<DomainName, ParseDomainError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let labels: Vec<String> = labels
            .into_iter()
            .map(|l| l.as_ref().to_ascii_lowercase())
            .collect();
        if labels.is_empty() {
            return Err(ParseDomainError(String::new()));
        }
        for l in &labels {
            if l.is_empty()
                || l.len() > 63
                || !l
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ParseDomainError(labels.join(".")));
            }
        }
        Ok(DomainName { labels })
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Length (in labels) of this domain's public suffix.
    ///
    /// Two-level rules (`co.uk`, `ac.uk`, `com.es`) are checked before
    /// one-level TLDs; unknown TLDs default to a one-label suffix, the same
    /// fallback the PSL prescribes.
    pub fn public_suffix_len(&self) -> usize {
        const TWO_LEVEL: [[&str; 2]; 6] = [
            ["co", "uk"],
            ["ac", "uk"],
            ["com", "es"],
            ["org", "es"],
            ["edu", "es"],
            ["com", "br"],
        ];
        let n = self.labels.len();
        if n >= 2 {
            let last2 = [self.labels[n - 2].as_str(), self.labels[n - 1].as_str()];
            if TWO_LEVEL.contains(&last2) {
                return 2;
            }
        }
        1
    }

    /// Labels left of the public suffix (the part §6's `*vpn*` search
    /// scans). Empty for a bare public suffix.
    pub fn labels_left_of_suffix(&self) -> &[String] {
        let ps = self.public_suffix_len();
        &self.labels[..self.labels.len().saturating_sub(ps)]
    }

    /// The registrable domain (public suffix plus one label), if any.
    pub fn registrable(&self) -> Option<DomainName> {
        let ps = self.public_suffix_len();
        if self.labels.len() <= ps {
            return None;
        }
        Some(DomainName {
            labels: self.labels[self.labels.len() - ps - 1..].to_vec(),
        })
    }

    /// Whether any label left of the public suffix contains `vpn`
    /// (§6's candidate condition).
    pub fn has_vpn_label(&self) -> bool {
        self.labels_left_of_suffix()
            .iter()
            .any(|l| l.contains("vpn"))
    }

    /// Whether the leftmost label is exactly `www` (§6 excludes domains
    /// "labeled … as www.").
    pub fn is_www(&self) -> bool {
        self.labels.first().map(String::as_str) == Some("www")
    }

    /// The `www.` name on the same registrable domain
    /// (`companyvpn3.example.com` → `www.example.com`), used by §6's
    /// shared-IP elimination step.
    pub fn www_sibling(&self) -> Option<DomainName> {
        let reg = self.registrable()?;
        let mut labels = Vec::with_capacity(reg.labels.len() + 1);
        labels.push("www".to_string());
        labels.extend(reg.labels.iter().cloned());
        Some(DomainName { labels })
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.labels.join("."))
    }
}

impl FromStr for DomainName {
    type Err = ParseDomainError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        DomainName::from_labels(trimmed.split('.'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(d("WWW.Example.COM").to_string(), "www.example.com");
        assert_eq!(d("example.com.").label_count(), 2);
        assert!("".parse::<DomainName>().is_err());
        assert!("foo..bar".parse::<DomainName>().is_err());
        assert!("exa mple.com".parse::<DomainName>().is_err());
    }

    #[test]
    fn public_suffixes() {
        assert_eq!(d("example.com").public_suffix_len(), 1);
        assert_eq!(d("example.co.uk").public_suffix_len(), 2);
        assert_eq!(d("uni.edu.es").public_suffix_len(), 2);
        assert_eq!(d("example.de").public_suffix_len(), 1);
    }

    #[test]
    fn registrable_domain() {
        assert_eq!(d("a.b.example.com").registrable(), Some(d("example.com")));
        assert_eq!(d("vpn.firm.co.uk").registrable(), Some(d("firm.co.uk")));
        assert_eq!(d("com").registrable(), None);
        assert_eq!(d("co.uk").registrable(), None);
    }

    #[test]
    fn vpn_label_matching() {
        // The paper's example.
        assert!(d("companyvpn3.example.com").has_vpn_label());
        assert!(d("vpn.example.de").has_vpn_label());
        assert!(d("my-openvpn-gw.firm.co.uk").has_vpn_label());
        // vpn only in the registrable label still counts (left of suffix).
        assert!(d("host.vpnprovider.com").has_vpn_label());
        // No match: vpn in the public suffix can't happen; vps ≠ vpn.
        assert!(!d("vps1.example.com").has_vpn_label());
        assert!(!d("www.example.com").has_vpn_label());
    }

    #[test]
    fn www_detection_and_sibling() {
        assert!(d("www.example.com").is_www());
        assert!(!d("wwwvpn.example.com").is_www());
        assert_eq!(
            d("companyvpn3.example.com").www_sibling(),
            Some(d("www.example.com"))
        );
        assert_eq!(
            d("gw-vpn.firm.co.uk").www_sibling(),
            Some(d("www.firm.co.uk"))
        );
        assert_eq!(d("com").www_sibling(), None);
    }

    #[test]
    fn labels_left_of_suffix() {
        assert_eq!(
            d("a.b.example.co.uk").labels_left_of_suffix(),
            &["a".to_string(), "b".to_string(), "example".to_string()][..]
        );
        assert!(d("co.uk").labels_left_of_suffix().is_empty());
    }
}
