//! Synthetic DNS corpus: the stand-in for CT logs, Rapid7 forward DNS,
//! and the Cisco Umbrella toplist.
//!
//! §6 of the paper mines 2.7B domains from CT logs, 1.9B from Rapid7 FDNS
//! and 8M from the Umbrella toplist to find `*vpn*` hosts. Those datasets
//! cannot ship here, so this module synthesizes a corpus with the same
//! *decision structure*:
//!
//! * enterprises/universities publish `www.`/`mail.` hosts plus — for most
//!   of them — one or more VPN gateways with `*vpn*` labels;
//! * a fraction of VPN gateways share their IP with the `www.` host
//!   (CDN-fronted or colocated), the case §6's elimination step exists
//!   for: those are deliberately dropped to keep the estimate
//!   conservative;
//! * chaff: plenty of non-VPN hostnames, including near-miss decoys
//!   (`vps1.…`) that must not match;
//! * commercial VPN providers with `vpn` inside the registrable label.
//!
//! The synthesizer also returns the *ground truth* (which IPs really are
//! VPN endpoints), which only tests and the traffic generator see — the
//! analysis pipeline works from the corpus alone, exactly like the paper.

use crate::domain::DomainName;
use lockdown_topology::asn::{AsCategory, Asn, Region};
use lockdown_topology::registry::Registry;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Which §6 source datasets a domain was observed in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSet {
    /// TLS certificates from Certificate Transparency logs (2015–2020).
    pub ct_logs: bool,
    /// Rapid7 forward-DNS dataset.
    pub fdns: bool,
    /// Cisco Umbrella toplist.
    pub toplist: bool,
}

/// One DNS name with its resolved addresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsEntry {
    /// Resolved IPv4 addresses.
    pub addrs: Vec<Ipv4Addr>,
    /// Observation sources.
    pub sources: SourceSet,
}

/// The synthetic forward-DNS database.
#[derive(Debug, Clone, Default)]
pub struct DnsDb {
    records: BTreeMap<DomainName, DnsEntry>,
}

impl DnsDb {
    /// An empty database.
    pub fn new() -> DnsDb {
        DnsDb::default()
    }

    /// Insert (or extend) a record.
    pub fn insert(&mut self, name: DomainName, addr: Ipv4Addr, sources: SourceSet) {
        let e = self.records.entry(name).or_insert_with(|| DnsEntry {
            addrs: Vec::new(),
            sources: SourceSet::default(),
        });
        if !e.addrs.contains(&addr) {
            e.addrs.push(addr);
        }
        e.sources.ct_logs |= sources.ct_logs;
        e.sources.fdns |= sources.fdns;
        e.sources.toplist |= sources.toplist;
    }

    /// Resolve a name.
    pub fn resolve(&self, name: &DomainName) -> &[Ipv4Addr] {
        self.records
            .get(name)
            .map(|e| e.addrs.as_slice())
            .unwrap_or(&[])
    }

    /// All `(name, entry)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, &DnsEntry)> {
        self.records.iter()
    }

    /// Number of names.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Ground truth about VPN endpoints, for the generator and for tests.
#[derive(Debug, Clone, Default)]
pub struct VpnGroundTruth {
    /// All real VPN gateway IPs, with the AS that operates each.
    pub gateways: BTreeMap<Ipv4Addr, Asn>,
    /// The subset of gateway IPs that are shared with a `www.` host and
    /// will therefore (correctly, per the paper's conservative procedure)
    /// be eliminated from the candidate set.
    pub shared_with_www: BTreeSet<Ipv4Addr>,
}

impl VpnGroundTruth {
    /// Gateways that a perfect §6 run should discover (not www-shared).
    pub fn discoverable(&self) -> BTreeSet<Ipv4Addr> {
        self.gateways
            .keys()
            .filter(|ip| !self.shared_with_www.contains(ip))
            .copied()
            .collect()
    }
}

/// The synthesized corpus: database plus ground truth.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The forward-DNS view the analysis is allowed to see.
    pub db: DnsDb,
    /// What is actually true (generator/tests only).
    pub truth: VpnGroundTruth,
}

/// TLD for an organization, by region.
fn tld_for(region: Region, rng: &mut StdRng) -> &'static str {
    match region {
        Region::CentralEurope => ["de", "eu", "com"].choose(rng).expect("non-empty"),
        Region::SouthernEurope => ["es", "com.es", "com"].choose(rng).expect("non-empty"),
        Region::UsEast => ["com", "net", "org"].choose(rng).expect("non-empty"),
    }
}

/// Slug from an AS name ("Enterprise-17" → "enterprise-17").
fn slug(name: &str) -> String {
    name.to_ascii_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Synthesize the corpus for a registry.
///
/// Deterministic per seed. Roughly: every enterprise/cloud/educational AS
/// gets a web presence; ~75% get VPN gateways; ~20% of gateways share the
/// `www.` address.
pub fn synthesize(registry: &Registry, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD05);
    let mut db = DnsDb::new();
    let mut truth = VpnGroundTruth::default();

    const VPN_LABELS: [&str; 6] = [
        "vpn",
        "companyvpn3",
        "vpn-gw",
        "remote-vpn",
        "sslvpn2",
        "myvpn",
    ];
    const CHAFF_LABELS: [&str; 6] = ["portal", "git", "shop", "vps1", "mail2", "intranet"];

    let all = SourceSet {
        ct_logs: true,
        fdns: true,
        toplist: false,
    };
    let ct_only = SourceSet {
        ct_logs: true,
        fdns: false,
        toplist: false,
    };
    let fdns_only = SourceSet {
        ct_logs: false,
        fdns: true,
        toplist: false,
    };

    let orgs: Vec<_> = registry
        .ases()
        .iter()
        .filter(|a| {
            matches!(
                a.category,
                AsCategory::Enterprise | AsCategory::CloudProvider | AsCategory::Educational
            )
        })
        .cloned()
        .collect();

    for org in &orgs {
        let tld = tld_for(org.region, &mut rng);
        let base = slug(&org.name);
        let reg_dom = format!("{base}.{tld}");
        let www: DomainName = format!("www.{reg_dom}").parse().expect("valid domain");
        let www_ip = registry.host_addr(org.asn, 0).expect("org has prefixes");
        db.insert(www.clone(), www_ip, all);
        // Apex often shares the www address.
        db.insert(reg_dom.parse().expect("valid"), www_ip, fdns_only);
        let mail_ip = registry.host_addr(org.asn, 1).expect("org has prefixes");
        db.insert(
            format!("mail.{reg_dom}").parse().expect("valid"),
            mail_ip,
            all,
        );

        // Chaff hosts, including the vps decoy.
        for label in CHAFF_LABELS {
            if !rng.gen_bool(0.5) {
                continue;
            }
            let ip = registry
                .host_addr(org.asn, rng.gen_range(2..50))
                .expect("org has prefixes");
            db.insert(
                format!("{label}.{reg_dom}").parse().expect("valid"),
                ip,
                ct_only,
            );
        }

        // VPN gateways for most organizations.
        if rng.gen_bool(0.75) {
            let n_gw = rng.gen_range(1..=2);
            for g in 0..n_gw {
                let label = VPN_LABELS[rng.gen_range(0..VPN_LABELS.len())];
                let name: DomainName = if g == 0 {
                    format!("{label}.{reg_dom}").parse().expect("valid")
                } else {
                    format!("{label}{g}.{reg_dom}").parse().expect("valid")
                };
                let shared = rng.gen_bool(0.2);
                let ip = if shared {
                    www_ip
                } else {
                    registry
                        .host_addr(org.asn, 100 + g as u64)
                        .expect("org has prefixes")
                };
                db.insert(name, ip, ct_only);
                truth.gateways.insert(ip, org.asn);
                if shared {
                    truth.shared_with_www.insert(ip);
                }
            }
        }
    }

    // Commercial VPN providers hosted at hosting ASes: vpn inside the
    // registrable label, many point-of-presence hostnames.
    let hosters: Vec<_> = registry
        .ases()
        .iter()
        .filter(|a| a.category == AsCategory::Hosting)
        .cloned()
        .collect();
    for (i, h) in hosters.iter().take(3).enumerate() {
        let reg_dom = format!("fast-vpn-{i}.com");
        for pop in 0..10u64 {
            let name: DomainName = format!("us{pop}.{reg_dom}").parse().expect("valid");
            let ip = registry
                .host_addr(h.asn, 200 + pop)
                .expect("hoster has prefixes");
            db.insert(name, ip, fdns_only);
            truth.gateways.insert(ip, h.asn);
        }
        // The provider's website shares nothing with the PoPs.
        let www_ip = registry.host_addr(h.asn, 7).expect("hoster has prefixes");
        db.insert(
            format!("www.{reg_dom}").parse().expect("valid"),
            www_ip,
            all,
        );
    }

    // Popular unrelated domains (toplist flavour).
    for (i, name) in [
        "search-hub",
        "video-tube",
        "news-wire",
        "social-hive",
        "wiki-market",
    ]
    .iter()
    .enumerate()
    {
        let hg = &registry.ases()[i % 15]; // hypergiants lead the registry
        let ip = registry
            .host_addr(hg.asn, 3 + i as u64)
            .expect("hg has prefixes");
        db.insert(
            format!("www.{name}.com").parse().expect("valid"),
            ip,
            SourceSet {
                ct_logs: true,
                fdns: true,
                toplist: true,
            },
        );
    }

    Corpus { db, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        synthesize(&Registry::synthesize(), 7)
    }

    #[test]
    fn corpus_is_populated() {
        let c = corpus();
        assert!(c.db.len() > 200, "corpus too small: {}", c.db.len());
        assert!(c.truth.gateways.len() > 40, "too few gateways");
        assert!(
            !c.truth.shared_with_www.is_empty(),
            "need www-shared gateways to exercise the elimination step"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let r = Registry::synthesize();
        let a = synthesize(&r, 9);
        let b = synthesize(&r, 9);
        assert_eq!(a.db.len(), b.db.len());
        assert_eq!(a.truth.gateways, b.truth.gateways);
        let c = synthesize(&r, 10);
        assert_ne!(a.truth.gateways, c.truth.gateways);
    }

    #[test]
    fn gateways_resolve_in_db() {
        let c = corpus();
        // Every non-shared gateway IP appears under some *vpn* name.
        let vpn_ips: BTreeSet<Ipv4Addr> =
            c.db.iter()
                .filter(|(d, _)| d.has_vpn_label())
                .flat_map(|(_, e)| e.addrs.iter().copied())
                .collect();
        for ip in c.truth.discoverable() {
            assert!(vpn_ips.contains(&ip), "gateway {ip} unlisted");
        }
    }

    #[test]
    fn gateways_belong_to_their_as() {
        let c = corpus();
        let r = Registry::synthesize();
        for (ip, asn) in &c.truth.gateways {
            assert_eq!(r.lookup(*ip), Some(*asn), "gateway {ip} misattributed");
        }
    }

    #[test]
    fn www_hosts_never_carry_vpn_labels() {
        let c = corpus();
        for (d, _) in c.db.iter() {
            if d.is_www() {
                assert!(
                    !d.labels()[1..d.labels().len() - d.public_suffix_len()]
                        .iter()
                        .any(|l| l.contains("vpn"))
                        || d.to_string().contains("fast-vpn"),
                    "unexpected vpn label under www: {d}"
                );
            }
        }
    }

    #[test]
    fn resolve_unknown_is_empty() {
        let c = corpus();
        let missing: DomainName = "definitely.not.there.example".parse().unwrap();
        assert!(c.db.resolve(&missing).is_empty());
    }
}
