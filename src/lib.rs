//! Umbrella crate re-exporting the whole `lockdown` workspace, plus the
//! HTTP application ([`app`]) shared by `lockdown serve` and the tests.
pub mod app;

pub use lockdown_analysis as analysis;
pub use lockdown_chaos as chaos;
pub use lockdown_collect as collect;
pub use lockdown_core as core;
pub use lockdown_dns as dns;
pub use lockdown_flow as flow;
pub use lockdown_query as query;
pub use lockdown_scenario as scenario;
pub use lockdown_shard as shard;
pub use lockdown_store as store;
pub use lockdown_topology as topology;
pub use lockdown_traffic as traffic;
pub use lockdown_wirechaos as wirechaos;
