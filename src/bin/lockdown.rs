//! `lockdown` — command-line front end to the reproduction.
//!
//! ```text
//! lockdown figures [--fidelity test|standard|high] [--scenario FILE] [--wire] [--audit] [--loss P] [--reorder P] [--dup P] [--restart N] [NAME...]
//! lockdown collect [--fidelity test|standard|high] [--scenario FILE] [--audit] [--loss P] [--reorder P] [--dup P] [--restart N]
//! lockdown scenarios list|show FILE|--matrix FILE... [--out DIR]
//! lockdown registry
//! lockdown capture --vantage IXP-CE --date 2020-03-25 --out day.lkdn [--format ipfix|v9|v5] [--sample N]
//! lockdown analyze --trace day.lkdn
//! lockdown chaosproxy --upstream HOST:PORT [--listen HOST:PORT] [--chaos SPEC] [--udp]
//! lockdown serve --archive DIR [--addr HOST:PORT] [--connections N] [--cache-mb MB]
//! lockdown query --archive DIR [--from T] [--to T] [--vantage VP] [--class C] [--as N] [--port P] [--direction D]
//! lockdown loadgen --target URL [--clients N] [--duration S] [--seed N] [--expect FILE]
//! lockdown vpn-scan
//! lockdown help
//! ```
//!
//! Argument parsing is hand-rolled (the dependency set is deliberately
//! small); every subcommand prints human-oriented tables.

use lockdown::analysis::prelude::*;
use lockdown::chaos::ChaosConfig;
use lockdown::collect::soak::{self, SoakConfig};
use lockdown::collect::{
    export, CollectMetrics, Collectd, CollectdConfig, ExportConfig, FaultProfile, WireConfig,
};
use lockdown::core::experiments::{
    fig1, fig10, fig11_12, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sec3_4, sec9, suite,
    tables,
};
use lockdown::core::serve::suite_plan_hash;
use lockdown::core::{run_matrix, Context, Fidelity, MatrixOptions, MatrixScenario};
use lockdown::dns::vpn::identify_vpn_ips;
use lockdown::flow::prelude::*;
use lockdown::query::{loadgen, LoadConfig, QueryEngine, QueryPlan, Server};
use lockdown::scenario::measures::ScenarioSpec;
use lockdown::shard::coord::{self, CoordOptions};
use lockdown::shard::worker::serve_worker;
use lockdown::store::{gc_dir, ArchiveReader, StoreMetrics};
use lockdown::topology::vantage::VantagePoint;
use lockdown::wirechaos;
use lockdown_flow::time::Date;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Documented exit code for a serve or collectd startup that could not
/// bind a socket (already in use, bad host): distinguishable from
/// archive or flag errors so process managers can tell "port conflict"
/// apart.
const EXIT_BIND: u8 = 2;

/// Documented exit code for a degraded (quarantined-cells) suite pass:
/// the run completed and rendered every figure, but from partial data.
const EXIT_DEGRADED: u8 = 3;

/// Documented exit code for a load-generator verification failure: the
/// server answered, but at least one served figure was not byte-identical
/// to the expected engine output.
const EXIT_MISMATCH: u8 = 4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "figures" => cmd_figures(rest),
        "coordinate" => cmd_coordinate(rest),
        "worker" => cmd_worker(rest),
        "chaosproxy" => cmd_chaosproxy(rest),
        "collect" => cmd_collect(rest),
        "collectd" => cmd_collectd(rest),
        "export" => cmd_export(rest),
        "scenarios" => cmd_scenarios(rest).map(|()| ExitCode::SUCCESS),
        "store" => cmd_store(rest).map(|()| ExitCode::SUCCESS),
        "registry" => cmd_registry().map(|()| ExitCode::SUCCESS),
        "capture" => cmd_capture(rest).map(|()| ExitCode::SUCCESS),
        "analyze" => cmd_analyze(rest).map(|()| ExitCode::SUCCESS),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest).map(|()| ExitCode::SUCCESS),
        "loadgen" => cmd_loadgen(rest),
        "vpn-scan" => cmd_vpn_scan().map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
lockdown — reproduce 'The Lockdown Effect' (IMC 2020) from synthetic flows

USAGE:
  lockdown figures [--fidelity test|standard|high] [NAME...]
                   [--scenario FILE] [--wire] [--audit] [--archive DIR]
                   [--chaos SPEC]
                   [--loss P] [--reorder P] [--dup P] [--restart N]
      Render figures/tables (default: all). Names: fig1 fig2 fig3 fig4
      fig5 fig6 fig7 fig8 fig9 fig10 edu sec3.4 sec9 table1 table2
      --scenario FILE interprets the given scenario measure file (TOML)
      instead of the built-in COVID spring-2020 calibration; see
      'lockdown scenarios' and scenarios/*.toml.
      --wire routes the full suite through the export -> faulty transport
      -> collect plane (zero faults keep output byte-identical) and prints
      the metrics snapshot to stderr. P are probabilities in [0,1); N is
      an exporter restart cadence in datagrams. --audit (requires --wire)
      threads a conservation ledger through every stage, prints the audit
      report to stderr and fails the run on any violated identity.
      --archive DIR runs the full suite against a columnar cell archive:
      cold (generate + spill segments) when DIR has no covering manifest
      for this seed/scenario, warm (replay, zero generation) when it does.
      Figure output is byte-identical either way; the store metrics
      snapshot goes to stderr.
      --chaos SPEC supervises the pass: worker panics, torn/failed
      segment writes and exporter stalls are caught and retried with
      seeded backoff; cells whose attempt budget runs out are quarantined
      and the suite completes degraded (exit code 3) with a report naming
      every missing cell. SPEC is comma-separated key=value pairs:
      seed=N panic=P torn=P enospc=P stall=P attempts=N backoff=MS
      cap=MS (all optional; probabilities in [0,1]). 'seed=0' alone
      supervises without injecting faults — with --archive that enables
      checkpoint/resume of a killed pass.
  lockdown coordinate (--workers N | --attach ADDR,ADDR,...)
                      [--fidelity test|standard|high] [--scenario FILE]
                      [--archive DIR] [--chaos SPEC]
                      [--chunks N] [--timeout-ms MS]
      Run the full figure suite sharded across worker processes and
      merge their streamed consumer state: stdout is byte-identical to
      'lockdown figures' under the same seed/scenario, whatever the
      worker count. --workers N spawns N local 'lockdown worker'
      processes on ephemeral ports (passing --fidelity/--scenario/
      --archive/--chaos through); --attach connects to pre-started
      workers instead — they must have been started with the same
      flags (the identity handshake rejects a mismatch). With
      --archive DIR workers spill segments into the shared directory
      and the coordinator adopts them into ONE manifest, so a warm
      re-run (any worker count) regenerates zero cells. --chaos adds
      wkill=P / wstall=P: seeded worker kills and heartbeat stalls,
      decided per (range, attempt) so the schedule survives
      reassignment. A dead worker's range is retried on a live worker;
      a range that outlives the attempt budget is quarantined and the
      suite completes degraded (exit 3). --chunks sets work-queue
      ranges per worker (default 4); --timeout-ms the heartbeat
      timeout (default 2000).
  lockdown worker [--listen HOST:PORT] [--fidelity test|standard|high]
                  [--scenario FILE] [--archive DIR] [--chaos SPEC]
      Run one shard worker: print 'listening on HOST:PORT' (first
      stdout line), serve one coordinator connection, run assigned
      cell ranges sequentially and stream serialized consumer state
      back. Exits 0 when the coordinator shuts it down or hangs up;
      exit 2 if the listen address cannot be bound. The wire is treated
      as hostile: every frame carries a CRC-32, reads run under a
      whole-frame deadline, and finished slices are retained across
      connection loss — a coordinator that redials resumes them
      byte-identically instead of recomputing.
  lockdown chaosproxy --upstream HOST:PORT [--listen HOST:PORT]
                      [--chaos SPEC] [--udp]
      Interpose a seeded hostile wire between two lockdown processes:
      accept on --listen (default 127.0.0.1:0; bound address is the
      first stdout line, exit 2 on bind failure), relay byte-for-byte
      to --upstream, and inject the faults named in --chaos on a
      deterministic splitmix64 schedule — same seed, same faults,
      every run. Runs until stdin reaches EOF, then prints the
      wirechaos_* metrics snapshot to stderr. SPEC keys (comma-
      separated key=value; probabilities in [0,1]): seed=N corrupt=P
      trunc=P split=P delay=P delay-ms=MS reset=P stall=P drop=P
      dup=P min-len=BYTES (spare chunks smaller than BYTES from
      corrupt/trunc — e.g. 512 mangles bulk payloads but not control
      frames) cut-payload=BYTES (one-shot: sever the first upstream->
      client chunk of at least BYTES halfway through — a deterministic
      mid-frame reset). --udp proxies datagrams instead (drop/dup/
      corrupt/delay apply; replies relay to the last client unfaulted).
      Insert between coordinate and workers (--attach through the
      proxy), between export and collectd (--udp), or between loadgen
      and serve.
  lockdown store inspect|verify|gc --archive DIR [--dry-run]
      inspect: print the manifest key and per-segment zone maps.
      verify:  re-read and CRC-check every segment; non-zero on failure.
      gc:      delete segment files neither the manifest nor the resume
               journal references; works on manifest-less (killed)
               archives. --dry-run lists orphans without deleting.
  lockdown scenarios list [--dir DIR]
      List the scenario measure files under DIR (default: scenarios/)
      with name, regions, events and behavioural fingerprint.
  lockdown scenarios show FILE
      Parse and validate FILE, then print its normalized rendering
      (the exact form 'parse -> render' round-trips).
  lockdown scenarios --matrix FILE... [--fidelity test|standard|high]
                     [--archive DIR] [--out DIR]
      Sweep N scenario files through the full figure suite in ONE
      engine pass: the shared cell set is enumerated once and each
      cell is materialized per scenario lane — vs. running the suite N
      times. Per-scenario output goes to OUT/NN-label.txt (--out) or
      stdout under '=== scenario:' headers; the matrix summary and a
      per-scenario diff report vs. the first file go to stderr. With
      --archive DIR each lane replays from / spills to its own
      subdirectory of DIR.
  lockdown collect [--fidelity test|standard|high] [--audit]
                   [--scenario FILE]
                   [--loss P] [--reorder P] [--dup P] [--restart N]
                   [--chaos SPEC]
      Run the full suite in wire mode and print the Prometheus-style
      metrics snapshot of the collection plane to stdout. --audit appends
      the conservation report to stderr and fails on violations. --chaos
      supervises the pass as in figures (degraded runs exit 3).
      --scenario swaps the calibration as in figures.

  lockdown collectd [--format ipfix|v9|v5] [--listen HOST:PORT]
                    [--sockets N] [--shards N] [--queue N]
                    [--rcvbuf BYTES]
      Run the real-socket collection daemon: bind N UDP sockets (exit 2
      if any bind fails), decode NetFlow v5/v9 and IPFIX datagrams and
      fan them out to collector shards through bounded queues. The bound
      addresses are the first stdout lines ('listening on HOST:PORT',
      one per socket). With --listen PORT != 0, socket i binds PORT+i.
      The daemon runs until stdin reaches EOF, then drains the queues,
      prints an ingest summary to stdout and the metrics snapshot to
      stderr, and exits 0. Backpressure is explicit: datagrams dropped
      at the kernel, at a full shard queue or by receive-buffer
      truncation are counted separately (never silently). --rcvbuf asks
      the kernel for BYTES of SO_RCVBUF per socket (clamped to
      net.core.rmem_max; the grant lands in the socket_rcvbuf_bytes
      gauge) — headroom against kernel drops under bursty senders.
  lockdown collectd --soak [--cells N] [--records N] [--batch N]
                    [--format ipfix|v9|v5] [--sockets N] [--shards N]
                    [--queue N] [--rcvbuf BYTES]
      Localhost soak: export N records per cell through the daemon's
      real UDP path with the conservation audit threaded through, and
      print the JSON outcome (flows/sec, drop decomposition,
      audit_clean). Non-clean audits exit 1. At a generous --rcvbuf the
      kernel_dropped counter settles at 0.
  lockdown export --target HOST:PORT[,HOST:PORT...]
                  [--format ipfix|v9|v5] [--cells N] [--records N]
                  [--batch N] [--exporters N]
      Feed a running collectd from this (separate) process: encode N
      synthetic flow records per cell through a real exporter fleet and
      send the datagrams over UDP, domain d to target d % targets (the
      daemon's 'listening on' lines, in order, so per-domain ordering
      holds). Prints a one-line summary ('export: R records in D
      datagrams ...') whose tallies reconcile against the daemon's
      drain summary — conservation across a process boundary.

  lockdown serve --archive DIR [--addr HOST:PORT] [--connections N]
                 [--cache-mb MB] [--fidelity F] [--scenario FILE]
      Serve the archive over HTTP/1.1: GET /figures (catalog),
      /figures/<name> (one figure, byte-identical to the suite's
      stdout section), /query?key=value&... (predicate-pushdown scan),
      /metrics (query_* + store_* Prometheus families). --addr defaults
      to 127.0.0.1:0; the bound address is the first stdout line
      ('serving on HOST:PORT'). The server runs until stdin reaches
      EOF, then drains in-flight requests and exits 0. --fidelity and
      --scenario must describe the context the archive was built under
      (checked against the manifest key at startup). --connections
      bounds concurrent connections (default 2048, excess answered
      503); --cache-mb budgets the decoded-segment cache (default 256).
  lockdown query --archive DIR [--from T] [--to T] [--vantage VP]
                 [--class C] [--as N] [--port P] [--direction D]
                 [--cache-mb MB]
      Run one predicate-pushdown query locally (no server) and print
      the JSON result. T is unix seconds or YYYY-MM-DD; VP is a
      vantage label, 'isp-transit' or 'edu-directional'; C is one of
      webconf vod gaming social messaging email educational collab
      cdn; D is ingress|egress|unknown.
  lockdown loadgen --target HOST:PORT [--clients N] [--duration S]
                   [--seed N] [--expect FILE]
      Drive concurrent keep-alive clients (default 1000) at a running
      serve instance with a seeded query mix for S seconds (default 5)
      and print a JSON report (rps, p50/p99/p999 latency). --expect
      FILE additionally fetches every served figure first and
      byte-compares the reassembled catalog against FILE (the suite
      stdout); any mismatch exits 4.

EXIT CODES:
  0  success      1  error (incl. unknown flag/command, a scenario
                            file that fails to parse or validate, or a
                            non-clean collectd --soak audit)
                  2  serve/collectd could not bind a socket
                  3  degraded (quarantined cells; figures rendered from
                               partial data)
                  4  loadgen served-vs-expected figure mismatch
  lockdown registry
      Print the synthetic AS registry summary.
  lockdown capture --vantage <VP> --date YYYY-MM-DD --out FILE
                   [--format ipfix|v9|v5] [--sample N]
      Generate one day of traffic, export it on the wire, store a trace.
      Vantage points: ISP-CE IXP-CE IXP-SE IXP-US EDU MOBILE-CE IPX
  lockdown analyze --trace FILE
      Replay a stored trace through the collector and summarize it.
  lockdown vpn-scan
      Run the §6 *vpn* domain identification over the synthetic corpus.";

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

/// Flags that consume the following argument as their value; everything
/// else starting with `--` is boolean.
const VALUE_FLAGS: &[&str] = &[
    "--fidelity",
    "--loss",
    "--reorder",
    "--dup",
    "--restart",
    "--archive",
    "--chaos",
    "--scenario",
    "--dir",
    "--out",
    "--addr",
    "--connections",
    "--cache-mb",
    "--from",
    "--to",
    "--vantage",
    "--class",
    "--as",
    "--port",
    "--direction",
    "--target",
    "--clients",
    "--duration",
    "--seed",
    "--expect",
    "--format",
    "--listen",
    "--sockets",
    "--shards",
    "--queue",
    "--cells",
    "--records",
    "--batch",
    "--rcvbuf",
    "--exporters",
    "--workers",
    "--attach",
    "--chunks",
    "--timeout-ms",
    "--upstream",
];

/// Reject any `--flag` the subcommand does not define: a typo must fail
/// loudly (with the usage text) instead of silently doing the default.
fn check_flags(rest: &[String], value: &[&str], boolean: &[&str]) -> Result<(), String> {
    let mut skip_value = false;
    for a in rest {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a.starts_with("--") {
            if value.contains(&a.as_str()) {
                skip_value = true;
            } else if !boolean.contains(&a.as_str()) {
                return Err(format!("unknown flag: {a}\n\n{USAGE}"));
            }
        }
    }
    Ok(())
}

/// Positional (non-flag) arguments: skips `--` flags and the value token
/// following each value-taking flag.
fn positionals(rest: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for a in rest {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a.starts_with("--") {
            skip_value = VALUE_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

fn parse_fidelity(rest: &[String]) -> Result<Fidelity, String> {
    match flag(rest, "--fidelity").as_deref() {
        None | Some("standard") => Ok(Fidelity::Standard),
        Some("test") => Ok(Fidelity::Test),
        Some("high") => Ok(Fidelity::High),
        Some(other) => Err(format!("unknown fidelity: {other}")),
    }
}

fn parse_prob(rest: &[String], name: &str) -> Result<f64, String> {
    match flag(rest, name) {
        None => Ok(0.0),
        Some(s) => {
            let p: f64 = s.parse().map_err(|_| format!("bad {name}: {s}"))?;
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1): {s}"));
            }
            Ok(p)
        }
    }
}

/// The fault profile described by `--loss/--reorder/--dup/--restart`.
fn parse_faults(rest: &[String]) -> Result<FaultProfile, String> {
    let mut faults = FaultProfile::zero();
    faults.loss = parse_prob(rest, "--loss")?;
    faults.reorder = parse_prob(rest, "--reorder")?;
    faults.duplicate = parse_prob(rest, "--dup")?;
    if let Some(s) = flag(rest, "--restart") {
        faults.restart_every = s.parse().map_err(|_| format!("bad --restart: {s}"))?;
    }
    Ok(faults)
}

fn parse_date(s: &str) -> Result<Date, String> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(format!("bad date (want YYYY-MM-DD): {s}"));
    }
    let y: i32 = parts[0].parse().map_err(|_| format!("bad year: {s}"))?;
    let m: u8 = parts[1].parse().map_err(|_| format!("bad month: {s}"))?;
    let d: u8 = parts[2].parse().map_err(|_| format!("bad day: {s}"))?;
    if !(1..=12).contains(&m) {
        return Err(format!("bad month: {s}"));
    }
    if d < 1 || d > lockdown_flow::time::days_in_month(y, m) {
        return Err(format!("bad day of month: {s}"));
    }
    Ok(Date::new(y, m, d))
}

fn parse_vantage(s: &str) -> Result<VantagePoint, String> {
    VantagePoint::ALL
        .into_iter()
        .find(|v| v.label().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown vantage point: {s}"))
}

/// Load and validate one scenario measure file; errors carry the path
/// and (for spec errors) the offending line.
fn load_scenario(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    ScenarioSpec::parse_toml(&text).map_err(|e| format!("{path}: {e}"))
}

/// The context described by `--fidelity` and (optionally) `--scenario`;
/// without the latter, the built-in COVID spring-2020 calibration.
fn parse_context(rest: &[String]) -> Result<Context, String> {
    let fidelity = parse_fidelity(rest)?;
    Ok(match flag(rest, "--scenario") {
        None => Context::new(fidelity),
        Some(path) => Context::with_scenario(fidelity, 0x10CD_2020, load_scenario(&path)?),
    })
}

/// The supervisor/chaos configuration described by `--chaos SPEC`.
fn parse_chaos(rest: &[String]) -> Result<Option<ChaosConfig>, String> {
    match flag(rest, "--chaos") {
        None => Ok(None),
        Some(spec) => ChaosConfig::parse(&spec)
            .map(Some)
            .map_err(|e| format!("bad --chaos spec: {e}")),
    }
}

/// Print a degraded pass's report and supervisor metrics (stderr) and map
/// it to the documented exit code; clean supervised passes exit 0.
fn degraded_exit(suite: &suite::Suite) -> ExitCode {
    if let Some(metrics) = &suite.supervisor_metrics {
        eprint!("{}", metrics.render());
    }
    match &suite.degraded {
        Some(report) => {
            eprint!("{}", report.render());
            ExitCode::from(EXIT_DEGRADED)
        }
        None => ExitCode::SUCCESS,
    }
}

fn cmd_figures(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--fidelity",
            "--loss",
            "--reorder",
            "--dup",
            "--restart",
            "--archive",
            "--chaos",
            "--scenario",
        ],
        &["--wire", "--audit"],
    )?;
    let faults = parse_faults(rest)?;
    let audit = rest.iter().any(|a| a == "--audit");
    let wire = if rest.iter().any(|a| a == "--wire") {
        Some(WireConfig::new().with_faults(faults).with_audit(audit))
    } else {
        if !faults.is_zero() {
            return Err("fault flags (--loss/--reorder/--dup/--restart) require --wire".into());
        }
        if audit {
            return Err("--audit requires --wire".into());
        }
        None
    };
    let archive = flag(rest, "--archive");
    let chaos = parse_chaos(rest)?;
    let names = positionals(rest);
    let all = names.is_empty();
    let want = |n: &str| all || names.iter().any(|x| x.as_str() == n);
    if wire.is_some() && !all {
        return Err("--wire applies to the full suite; drop the figure names".into());
    }
    if archive.is_some() && !all {
        return Err("--archive applies to the full suite; drop the figure names".into());
    }
    if chaos.is_some() && !all {
        return Err("--chaos applies to the full suite; drop the figure names".into());
    }

    let ctx = parse_context(rest)?;
    if all {
        // The full suite goes through ONE engine pass: every overlapping
        // (stream, date, hour) cell is generated exactly once and fanned
        // out to all consumers. In wire mode every cell additionally
        // crosses the export -> transport -> collect plane first; stdout
        // stays byte-identical at zero faults, and the plane's metrics
        // snapshot goes to stderr. With --archive the cells come from (or
        // go to) the columnar store — stdout is byte-identical cold vs.
        // warm, which is why the engine summary and every metrics
        // snapshot go to stderr. With --chaos the pass is supervised:
        // quarantined cells degrade (not abort) the run, and the degraded
        // report plus supervisor metrics also go to stderr.
        let suite = suite::run_all_opts(
            &ctx,
            suite::SuiteOptions {
                wire,
                archive: archive.as_ref().map(|d| Path::new(d).to_path_buf()),
                chaos,
            },
        )
        .map_err(|e| e.to_string())?;
        for section in suite.renders() {
            println!("{section}");
        }
        eprintln!("{}", suite.stats.summary());
        if let Some(metrics) = &suite.store_metrics {
            eprint!("{}", metrics.render());
        }
        if let Some(metrics) = &suite.wire_metrics {
            eprint!("{}", metrics.render());
        }
        check_audit(&suite)?;
        return Ok(degraded_exit(&suite));
    }
    if want("table2") {
        println!("{}", tables::table2());
    }
    if want("table1") {
        println!("{}", tables::table1(&ctx).render());
    }
    if want("fig1") {
        println!("{}", fig1::run(&ctx).render());
    }
    if want("fig2") {
        println!("{}", fig2::run_2a(&ctx).render());
        println!("{}", fig2::run_2bc(&ctx, VantagePoint::IspCe).render());
        println!("{}", fig2::run_2bc(&ctx, VantagePoint::IxpCe).render());
    }
    if want("fig3") {
        println!("{}", fig3::run_3a(&ctx).render());
        println!("{}", fig3::run_3b(&ctx).render());
    }
    if want("fig4") {
        println!("{}", fig4::run(&ctx).render());
    }
    if want("fig5") {
        println!("{}", fig5::run(&ctx).render());
    }
    if want("fig6") {
        println!("{}", fig6::run(&ctx).render());
    }
    if want("sec3.4") {
        println!("{}", sec3_4::run(&ctx).render());
    }
    if want("fig7") {
        println!("{}", fig7::run(&ctx, VantagePoint::IspCe).render());
        println!("{}", fig7::run(&ctx, VantagePoint::IxpCe).render());
    }
    if want("fig8") {
        println!("{}", fig8::run(&ctx).render());
    }
    if want("fig9") {
        for vp in VantagePoint::CORE_FOUR {
            println!("{}", fig9::run(&ctx, vp).render());
        }
    }
    if want("fig10") {
        println!("{}", fig10::run(&ctx).render());
    }
    if want("edu") {
        println!("{}", fig11_12::run(&ctx).render());
    }
    if want("sec9") {
        println!("{}", sec9::run(&ctx).render());
    }
    Ok(ExitCode::SUCCESS)
}

/// `coordinate`: the sharded full-suite pass. Stdout carries exactly
/// what `figures` would print; scheduling and engine summaries go to
/// stderr, and a degraded pass exits 3 like any supervised run.
fn cmd_coordinate(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--workers",
            "--attach",
            "--fidelity",
            "--scenario",
            "--archive",
            "--chaos",
            "--chunks",
            "--timeout-ms",
        ],
        &[],
    )?;
    let ctx = parse_context(rest)?;
    let mut opts = CoordOptions::default();
    opts.suite = suite::ShardSuiteOptions {
        archive: flag(rest, "--archive").map(|d| Path::new(&d).to_path_buf()),
        chaos: parse_chaos(rest)?,
    };
    opts.chunks_per_worker = parse_count(rest, "--chunks", opts.chunks_per_worker)?;
    if let Some(ms) = flag(rest, "--timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --timeout-ms: {ms}"))
            .and_then(|n: u64| {
                if n > 0 {
                    Ok(n)
                } else {
                    Err("bad --timeout-ms: 0".to_string())
                }
            })?;
        opts.heartbeat_timeout = Duration::from_millis(ms);
    }
    let links = match (flag(rest, "--workers"), flag(rest, "--attach")) {
        (Some(_), Some(_)) => {
            return Err("--workers and --attach are mutually exclusive".into());
        }
        (None, None) => {
            return Err("coordinate needs --workers N or --attach ADDR,...".into());
        }
        (Some(_), None) => {
            let n = parse_count(rest, "--workers", 0)?;
            let exe = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
            // Spawned workers must see the world exactly as the
            // coordinator does; pass the context flags through.
            let mut args = Vec::new();
            for name in ["--fidelity", "--scenario", "--archive", "--chaos"] {
                if let Some(v) = flag(rest, name) {
                    args.push(name.to_string());
                    args.push(v);
                }
            }
            coord::spawn_workers(&exe, &args, n).map_err(|e| e.to_string())?
        }
        (None, Some(list)) => {
            let addrs: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if addrs.is_empty() {
                return Err("--attach needs at least one HOST:PORT".into());
            }
            coord::attach_workers(&addrs).map_err(|e| e.to_string())?
        }
    };
    let out = coord::coordinate(&ctx, &opts, links).map_err(|e| e.to_string())?;
    for section in out.renders() {
        println!("{section}");
    }
    if let Some(suite) = &out.suite {
        eprintln!("{}", suite.stats.summary());
    }
    eprintln!("{}", out.stats.summary());
    let Some(suite) = &out.suite else {
        // Quarantine holes too large for the figures to assemble at
        // all: the deepest degraded outcome, same exit contract.
        eprintln!(
            "DEGRADED: suite assembly impossible after {} quarantined range(s)",
            out.stats.quarantined_ranges
        );
        return Ok(ExitCode::from(EXIT_DEGRADED));
    };
    if let Some(metrics) = &suite.store_metrics {
        eprint!("{}", metrics.render());
    }
    Ok(degraded_exit(suite))
}

/// `worker`: one shard worker process. Stdout carries only the
/// `listening on HOST:PORT` contract line; the coordinator owns the
/// figures.
fn cmd_worker(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--listen",
            "--fidelity",
            "--scenario",
            "--archive",
            "--chaos",
        ],
        &[],
    )?;
    let ctx = parse_context(rest)?;
    let opts = suite::ShardSuiteOptions {
        archive: flag(rest, "--archive").map(|d| Path::new(&d).to_path_buf()),
        chaos: parse_chaos(rest)?,
    };
    let addr = flag(rest, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    // Bind before anything else: a port conflict must be diagnosable
    // (exit 2, as for serve and collectd).
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return Ok(ExitCode::from(EXIT_BIND));
        }
    };
    println!(
        "listening on {}",
        listener.local_addr().map_err(|e| e.to_string())?
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let exit = serve_worker(&ctx, &opts, listener).map_err(|e| e.to_string())?;
    eprintln!("worker: {exit:?}");
    Ok(ExitCode::SUCCESS)
}

/// `chaosproxy`: a seeded hostile wire between any two lockdown
/// processes. Sits on --listen, relays to --upstream, and injects the
/// faults named in --chaos on a deterministic splitmix64 schedule —
/// same seed, same faults, every run.
fn cmd_chaosproxy(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(rest, &["--listen", "--upstream", "--chaos"], &["--udp"])?;
    let upstream = flag(rest, "--upstream").ok_or("chaosproxy needs --upstream HOST:PORT")?;
    let upstream: std::net::SocketAddr = upstream
        .parse()
        .map_err(|_| format!("bad --upstream (want HOST:PORT): {upstream}"))?;
    let listen = flag(rest, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let cfg = match flag(rest, "--chaos") {
        None => wirechaos::WireChaosConfig::zero(),
        Some(spec) => {
            wirechaos::WireChaosConfig::parse(&spec).map_err(|e| format!("bad --chaos: {e}"))?
        }
    };
    let udp = rest.iter().any(|a| a == "--udp");

    // Bind before anything else: exit 2 on a port conflict, as for
    // serve, collectd and worker.
    let (addr, metrics, mut tcp, mut udp_proxy) = if udp {
        match wirechaos::UdpProxy::start(listen.as_str(), upstream, cfg) {
            Ok(p) => (p.addr(), p.metrics(), None, Some(p)),
            Err(e) => {
                eprintln!("error: binding {listen}: {e}");
                return Ok(ExitCode::from(EXIT_BIND));
            }
        }
    } else {
        match wirechaos::TcpProxy::start(listen.as_str(), upstream, cfg) {
            Ok(p) => (p.addr(), p.metrics(), Some(p), None),
            Err(e) => {
                eprintln!("error: binding {listen}: {e}");
                return Ok(ExitCode::from(EXIT_BIND));
            }
        }
    };
    // The bound address is the first stdout line so a parent pipeline
    // can scrape the ephemeral port.
    println!("listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    // Run until stdin reaches EOF — the same portable shutdown signal
    // every other lockdown daemon honours.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    if let Some(p) = tcp.as_mut() {
        p.shutdown();
    }
    if let Some(p) = udp_proxy.as_mut() {
        p.shutdown();
    }
    eprint!("{}", metrics.render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_collect(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--fidelity",
            "--loss",
            "--reorder",
            "--dup",
            "--restart",
            "--chaos",
            "--scenario",
        ],
        &["--audit"],
    )?;
    let faults = parse_faults(rest)?;
    let audit = rest.iter().any(|a| a == "--audit");
    let chaos = parse_chaos(rest)?;
    let ctx = parse_context(rest)?;
    let cfg = WireConfig::new().with_faults(faults).with_audit(audit);
    let suite = suite::run_all_opts(
        &ctx,
        suite::SuiteOptions {
            wire: Some(cfg),
            archive: None,
            chaos,
        },
    )
    .map_err(|e| e.to_string())?;
    let metrics = suite
        .wire_metrics
        .as_ref()
        .expect("wire mode always carries metrics");
    print!("{}", metrics.render());
    check_audit(&suite)?;
    Ok(degraded_exit(&suite))
}

/// Parse an optional positive-integer flag with a default.
fn parse_count(rest: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(rest, name) {
        None => Ok(default),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!("bad {name} (want a positive integer): {s}")),
        },
    }
}

fn parse_format(rest: &[String]) -> Result<ExportFormat, String> {
    match flag(rest, "--format").as_deref() {
        None | Some("ipfix") => Ok(ExportFormat::Ipfix),
        Some("v9") => Ok(ExportFormat::NetflowV9),
        Some("v5") => Ok(ExportFormat::NetflowV5),
        Some(other) => Err(format!("unknown format: {other}")),
    }
}

fn cmd_collectd(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--format",
            "--listen",
            "--sockets",
            "--shards",
            "--queue",
            "--cells",
            "--records",
            "--batch",
            "--rcvbuf",
        ],
        &["--soak"],
    )?;
    let format = parse_format(rest)?;
    let sockets = parse_count(rest, "--sockets", 2)?;
    let shards = parse_count(rest, "--shards", 4)?;
    let queue_capacity = parse_count(rest, "--queue", 1_024)?;
    let rcvbuf = match flag(rest, "--rcvbuf") {
        None => None,
        Some(_) => Some(parse_count(rest, "--rcvbuf", 0)?),
    };

    if rest.iter().any(|a| a == "--soak") {
        if flag(rest, "--listen").is_some() {
            return Err("--listen does not apply to --soak (always localhost)".into());
        }
        let mut cfg = SoakConfig::new();
        cfg.format = format;
        cfg.sockets = sockets;
        cfg.shards = shards;
        cfg.queue_capacity = queue_capacity;
        cfg.cells = parse_count(rest, "--cells", cfg.cells)?;
        cfg.records_per_cell = parse_count(rest, "--records", cfg.records_per_cell)?;
        cfg.batch_size = parse_count(rest, "--batch", cfg.batch_size)?;
        cfg.rcvbuf = rcvbuf;
        let out = match soak::run(&cfg) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("error: binding soak sockets: {e}");
                return Ok(ExitCode::from(EXIT_BIND));
            }
        };
        println!("{}", out.render_json());
        if !out.audit_clean {
            return Err("soak conservation audit did not close".into());
        }
        return Ok(ExitCode::SUCCESS);
    }

    for soak_only in ["--cells", "--records", "--batch"] {
        if flag(rest, soak_only).is_some() {
            return Err(format!("{soak_only} only applies to --soak"));
        }
    }
    let mut dcfg = CollectdConfig::new(format);
    dcfg.sockets = sockets;
    dcfg.shards = shards;
    dcfg.queue_capacity = queue_capacity;
    dcfg.rcvbuf = rcvbuf;
    if let Some(addr) = flag(rest, "--listen") {
        dcfg.listen = addr
            .parse()
            .map_err(|_| format!("bad --listen (want HOST:PORT): {addr}"))?;
    }
    let metrics = CollectMetrics::new();
    // Bind before anything else: a port conflict must be diagnosable
    // (exit 2, as for serve) independently of everything downstream.
    let mut daemon = match Collectd::bind(&dcfg, Arc::clone(&metrics)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: binding {}: {e}", dcfg.listen);
            return Ok(ExitCode::from(EXIT_BIND));
        }
    };
    // The bound addresses are the first stdout lines so a parent
    // pipeline can scrape the ephemeral ports.
    for addr in daemon.addrs() {
        println!("listening on {addr}");
    }
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    // Run until stdin reaches EOF — the portable shutdown signal for a
    // daemon whose lifetime a parent pipeline manages.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    // Graceful drain: the cycle barrier flushes every queued datagram
    // through its shard before the workers hand their state back.
    let cycle = daemon.close_cycle();
    daemon.shutdown();
    let t = cycle.shards.totals();
    println!(
        "collectd: {} datagrams received ({} truncated), {} decoded, \
         {} records accepted, {} malformed, {} queue-dropped",
        cycle.socket_received,
        cycle.truncated_datagrams,
        t.datagrams,
        t.records_accepted,
        t.malformed,
        cycle.queue_dropped,
    );
    eprint!("{}", metrics.render());
    Ok(ExitCode::SUCCESS)
}

/// `export`: the exporter half of a two-process wire run. Encodes
/// synthetic flows and pushes them at a running collectd; the printed
/// tallies are the sender's side of the cross-process conservation diff.
fn cmd_export(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--target",
            "--format",
            "--cells",
            "--records",
            "--batch",
            "--exporters",
        ],
        &[],
    )?;
    let targets = flag(rest, "--target")
        .ok_or("export needs --target HOST:PORT[,HOST:PORT...]")?
        .split(',')
        .map(|a| {
            a.trim()
                .parse()
                .map_err(|_| format!("bad --target address: {a}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut cfg = ExportConfig::new(parse_format(rest)?, targets);
    cfg.cells = parse_count(rest, "--cells", cfg.cells)?;
    cfg.records_per_cell = parse_count(rest, "--records", cfg.records_per_cell)?;
    cfg.batch_size = parse_count(rest, "--batch", cfg.batch_size)?;
    cfg.exporters = parse_count(rest, "--exporters", cfg.exporters)?;
    let out = export::run(&cfg).map_err(|e| e.to_string())?;
    println!("{}", out.render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_scenarios(rest: &[String]) -> Result<(), String> {
    check_flags(
        rest,
        &["--fidelity", "--archive", "--dir", "--out"],
        &["--matrix"],
    )?;
    if rest.iter().any(|a| a == "--matrix") {
        return cmd_scenarios_matrix(rest);
    }
    let pos = positionals(rest);
    match pos.split_first().map(|(a, files)| (a.as_str(), files)) {
        Some(("list", [])) => {
            let dir = flag(rest, "--dir").unwrap_or_else(|| "scenarios".to_string());
            let mut files: Vec<_> = std::fs::read_dir(&dir)
                .map_err(|e| format!("reading {dir}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "toml"))
                .collect();
            files.sort();
            if files.is_empty() {
                println!("no scenario files (*.toml) in {dir}");
                return Ok(());
            }
            for path in files {
                let shown = path.display().to_string();
                match load_scenario(&shown) {
                    Ok(spec) => println!(
                        "{shown}\n  {} ({:#018x}): {} regions, {} events — {}",
                        spec.name,
                        spec.fingerprint(),
                        spec.regions.len(),
                        spec.events.len(),
                        spec.description,
                    ),
                    Err(e) => println!("{shown}\n  INVALID: {e}"),
                }
            }
            Ok(())
        }
        Some(("show", [file])) => {
            let spec = load_scenario(file)?;
            print!("{}", spec.to_toml());
            eprintln!(
                "scenario {}: fingerprint {:#018x}, {} regions, {} events",
                spec.name,
                spec.fingerprint(),
                spec.regions.len(),
                spec.events.len(),
            );
            Ok(())
        }
        _ => Err(format!(
            "scenarios needs an action: list | show FILE | --matrix FILE...\n\n{USAGE}"
        )),
    }
}

/// `scenarios --matrix`: run N scenario files through one shared engine
/// pass and emit per-scenario figure suites plus a diff report.
fn cmd_scenarios_matrix(rest: &[String]) -> Result<(), String> {
    let files = positionals(rest);
    if files.is_empty() {
        return Err("scenarios --matrix needs at least one scenario file".into());
    }
    let mut scenarios = Vec::with_capacity(files.len());
    for file in &files {
        let spec = load_scenario(file)?;
        let label = Path::new(file.as_str())
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| spec.name.clone());
        scenarios.push(MatrixScenario { label, spec });
    }
    let ctx = Context::new(parse_fidelity(rest)?);
    let opts = MatrixOptions {
        archive: flag(rest, "--archive").map(|d| Path::new(&d).to_path_buf()),
        workers: 0,
    };
    let run = run_matrix(&ctx, scenarios, opts).map_err(|e| e.to_string())?;

    // Per-scenario output: files under --out (each byte-identical to a
    // plain single-scenario `figures` run of that spec), or stdout under
    // scenario headers. Summaries and the diff report go to stderr.
    match flag(rest, "--out") {
        Some(out_dir) => {
            std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
            for (i, sr) in run.runs.iter().enumerate() {
                let path = Path::new(&out_dir).join(format!("{i:02}-{}.txt", sr.label));
                let mut text = String::new();
                for section in sr.suite.renders() {
                    text.push_str(&section);
                    text.push('\n');
                }
                std::fs::write(&path, text)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                eprintln!("wrote {} ({})", path.display(), sr.suite.stats.summary());
            }
        }
        None => {
            for sr in &run.runs {
                println!("=== scenario: {} ({:#018x}) ===", sr.label, sr.fingerprint);
                for section in sr.suite.renders() {
                    println!("{section}");
                }
                eprintln!("{}: {}", sr.label, sr.suite.stats.summary());
            }
        }
    }
    eprintln!("{}", run.stats.summary());
    if run.runs.len() > 1 {
        eprint!("{}", run.diff_report());
    }
    Ok(())
}

fn cmd_store(rest: &[String]) -> Result<(), String> {
    check_flags(rest, &["--archive"], &["--dry-run"])?;
    let actions = positionals(rest);
    let action = match actions.as_slice() {
        [one] => one.as_str(),
        _ => return Err("store needs exactly one action: inspect | verify | gc".into()),
    };
    let dir = flag(rest, "--archive").ok_or("--archive DIR required")?;
    if action == "gc" {
        // gc must work on a manifest-less archive (a killed pass leaves
        // only a journal, or neither index), so it does not open a reader.
        let dry_run = rest.iter().any(|a| a == "--dry-run");
        let report = gc_dir(Path::new(&dir), dry_run).map_err(|e| e.to_string())?;
        let verb = if report.dry_run {
            "would remove"
        } else {
            "removed"
        };
        println!(
            "gc {}: {verb} {} orphan files, kept {} live segments",
            dir,
            report.removed.len(),
            report.kept
        );
        for name in &report.removed {
            println!("  {name}");
        }
        return Ok(());
    }
    if rest.iter().any(|a| a == "--dry-run") {
        return Err("--dry-run only applies to gc".into());
    }
    let metrics = StoreMetrics::new();
    let reader = ArchiveReader::open(Path::new(&dir), metrics)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no archive manifest in {dir}"))?;
    let key = reader.key();
    match action {
        "inspect" => {
            println!(
                "archive {dir}: seed {:#x}, scenario {:#018x}, plan {:#018x}, {} segments",
                key.seed,
                key.scenario_hash,
                key.plan_hash,
                reader.segment_count()
            );
            for meta in reader.segments() {
                let stream = meta.cell.stream.label();
                println!(
                    "  {:<24} {} {:>9} records {:>10} bytes  [{} .. {}]",
                    lockdown::store::segment_file_name(meta.cell),
                    stream,
                    meta.records,
                    meta.file_len,
                    meta.min_start,
                    meta.max_end,
                );
            }
            Ok(())
        }
        "verify" => {
            let report = reader.verify();
            println!(
                "verified {}: {} segments, {} records, {} bytes, {} failures",
                dir,
                report.segments,
                report.records,
                report.bytes,
                report.failures.len()
            );
            for f in &report.failures {
                println!("  FAIL {f}");
            }
            if report.ok() {
                Ok(())
            } else {
                Err(format!("{} corrupt segments", report.failures.len()))
            }
        }
        other => Err(format!("unknown store action: {other}\n\n{USAGE}")),
    }
}

/// Print the conservation-audit report (stderr) and fail the command if
/// any identity was violated. No-op when auditing was off.
fn check_audit(suite: &suite::Suite) -> Result<(), String> {
    let Some(report) = &suite.audit else {
        return Ok(());
    };
    eprint!("{}", report.render());
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "conservation audit failed: {} violations",
            report.violations.len()
        ))
    }
}

fn cmd_registry() -> Result<(), String> {
    let registry = lockdown::topology::registry::Registry::synthesize();
    let mut by_cat: HashMap<String, usize> = HashMap::new();
    for a in registry.ases() {
        *by_cat.entry(a.category.to_string()).or_insert(0) += 1;
    }
    let mut cats: Vec<_> = by_cat.into_iter().collect();
    cats.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!(
        "synthetic registry: {} ASes, {} prefixes",
        registry.ases().len(),
        registry.prefix_count()
    );
    for (cat, n) in cats {
        println!("  {n:>4}  {cat}");
    }
    Ok(())
}

fn cmd_capture(rest: &[String]) -> Result<(), String> {
    let vantage = parse_vantage(&flag(rest, "--vantage").ok_or("--vantage required")?)?;
    let date = parse_date(&flag(rest, "--date").ok_or("--date required")?)?;
    let out = flag(rest, "--out").ok_or("--out required")?;
    let format = parse_format(rest)?;
    let sample_rate: u32 = match flag(rest, "--sample") {
        None => 1,
        Some(s) => s.parse().map_err(|_| format!("bad sample rate: {s}"))?,
    };

    let ctx = Context::new(Fidelity::Standard);
    let flows = if vantage == VantagePoint::Edu {
        let generator = ctx.edu_generator();
        (0..24)
            .flat_map(|h| generator.generate_hour(date, h))
            .collect()
    } else {
        ctx.generator().generate_day(vantage, date)
    };
    let sampler = FlowSampler::new(sample_rate, ctx.config.seed);
    let flows = sampler.sample_all(&flows);

    let boot = date.midnight();
    let mut exporter = Exporter::new(ExporterConfig::new(format, boot));
    let mut writer = TraceWriter::new();
    // Export after the last flow ends (EDU flows may cross midnight).
    let export_time = flows
        .iter()
        .map(|f| f.end)
        .max()
        .unwrap_or(date.at_hour(23))
        .add_secs(1);
    for pkt in exporter.export_all(&flows, export_time) {
        writer.push(export_time, &pkt).map_err(|e| e.to_string())?;
    }
    let datagrams = writer.len();
    let bytes = writer.finish();
    std::fs::write(&out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "captured {} at {} ({:?}, sample 1:{sample_rate}): {} flows, {datagrams} datagrams, {} bytes -> {out}",
        vantage,
        date.iso(),
        format,
        flows.len(),
        bytes.len(),
    );
    Ok(())
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let path = flag(rest, "--trace").ok_or("--trace required")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let reader = TraceReader::open(&bytes).map_err(|e| e.to_string())?;
    let mut collector = Collector::new();
    for record in reader {
        let record = record.map_err(|e| e.to_string())?;
        collector.ingest(record.payload);
    }
    let stats = collector.stats();
    println!(
        "trace {path}: {} datagrams ok, {} records, {} missing-template drops, {} malformed",
        stats.packets_ok, stats.records, stats.missing_template, stats.malformed
    );
    if collector.records().is_empty() {
        return Ok(());
    }

    // Volume + top ports + VPN summary over the replayed records.
    let records = collector.records();
    let total: u64 = records.iter().map(|r| r.bytes).sum();
    let first = records.iter().map(|r| r.start).min().expect("non-empty");
    println!(
        "total volume: {total} bytes, first flow {}",
        first.date().iso()
    );

    let mut profile = PortProfile::new();
    // Region only affects weekday labels in the profile; Central Europe is
    // the default lens for a stored trace.
    profile.add_all(records, lockdown::topology::asn::Region::CentralEurope);
    println!("top services:");
    for key in profile.top_services(8, &[]) {
        println!("  {:<12} {:>16} bytes", key.label(), profile.total(key));
    }

    let ctx = Context::new(Fidelity::Standard);
    let vpn = VpnClassifier::new(ctx.vpn_candidate_ips());
    let port_vpn: u64 = records
        .iter()
        .filter(|r| is_port_vpn(r))
        .map(|r| r.bytes)
        .sum();
    let dom_vpn: u64 = records
        .iter()
        .filter(|r| vpn.is_domain_vpn(r))
        .map(|r| r.bytes)
        .sum();
    println!("VPN bytes: port-identified {port_vpn}, domain-identified {dom_vpn}");
    Ok(())
}

/// Open the query engine over `--archive DIR` with the `--cache-mb`
/// decoded-segment budget (default 256 MiB).
fn open_query_engine(rest: &[String]) -> Result<QueryEngine, String> {
    let dir = flag(rest, "--archive").ok_or("--archive DIR required")?;
    let cache_bytes = match flag(rest, "--cache-mb") {
        None => lockdown::query::engine::DEFAULT_CACHE_BYTES,
        Some(s) => {
            let mb: u64 = s.parse().map_err(|_| format!("bad --cache-mb: {s}"))?;
            mb.saturating_mul(1024 * 1024)
        }
    };
    QueryEngine::open(Path::new(&dir), cache_bytes)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no archive manifest in {dir}"))
}

fn cmd_serve(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &[
            "--archive",
            "--addr",
            "--connections",
            "--cache-mb",
            "--fidelity",
            "--scenario",
        ],
        &[],
    )?;
    let addr = flag(rest, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let connections: usize = match flag(rest, "--connections") {
        None => 2048,
        Some(s) => s.parse().map_err(|_| format!("bad --connections: {s}"))?,
    };
    // Bind before touching the archive: a port conflict must be
    // diagnosable (exit 2) independently of archive health.
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return Ok(ExitCode::from(EXIT_BIND));
        }
    };
    let ctx = parse_context(rest)?;
    let engine = open_query_engine(rest)?;
    let key = engine.reader().key();
    if key.seed != ctx.config.seed
        || key.scenario_hash != ctx.scenario_hash()
        || key.plan_hash != suite_plan_hash(&ctx)
    {
        return Err(format!(
            "archive key mismatch: archive has seed {:#x} scenario {:#018x} plan {:#018x}, \
             this context computes seed {:#x} scenario {:#018x} plan {:#018x} — \
             pass the --fidelity/--scenario the archive was built with",
            key.seed,
            key.scenario_hash,
            key.plan_hash,
            ctx.config.seed,
            ctx.scenario_hash(),
            suite_plan_hash(&ctx),
        ));
    }
    let engine = Arc::new(engine);
    let metrics = Arc::clone(engine.metrics());
    let handler = lockdown::app::build_handler(Arc::clone(&engine), Arc::new(ctx));
    let server =
        Server::start(listener, connections, metrics, handler).map_err(|e| e.to_string())?;
    // The bound address is the first stdout line so a parent pipeline
    // can scrape the ephemeral port.
    println!("serving on {}", server.addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    // Run until stdin reaches EOF — the portable shutdown signal for a
    // server whose lifetime a parent pipeline manages.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    server.shutdown(Duration::from_secs(5));
    eprint!("{}", engine.render_metrics());
    Ok(ExitCode::SUCCESS)
}

fn cmd_query(rest: &[String]) -> Result<(), String> {
    check_flags(
        rest,
        &[
            "--archive",
            "--cache-mb",
            "--from",
            "--to",
            "--vantage",
            "--class",
            "--as",
            "--port",
            "--direction",
        ],
        &[],
    )?;
    let mut pairs: Vec<(String, String)> = Vec::new();
    for key in ["from", "to", "vantage", "class", "as", "port", "direction"] {
        if let Some(v) = flag(rest, &format!("--{key}")) {
            pairs.push((key.to_string(), v));
        }
    }
    let plan = QueryPlan::parse(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))?;
    let engine = open_query_engine(rest)?;
    let out = engine.execute(&plan).map_err(|e| e.to_string())?;
    println!("{}", out.render_json());
    Ok(())
}

fn cmd_loadgen(rest: &[String]) -> Result<ExitCode, String> {
    check_flags(
        rest,
        &["--target", "--clients", "--duration", "--seed", "--expect"],
        &[],
    )?;
    let target = flag(rest, "--target").ok_or("--target HOST:PORT required")?;
    let clients: usize = match flag(rest, "--clients") {
        None => 1000,
        Some(s) => s.parse().map_err(|_| format!("bad --clients: {s}"))?,
    };
    let duration_secs: f64 = match flag(rest, "--duration") {
        None => 5.0,
        Some(s) => s.parse().map_err(|_| format!("bad --duration: {s}"))?,
    };
    let seed: u64 = match flag(rest, "--seed") {
        None => 0x10CD_2020,
        Some(s) => s.parse().map_err(|_| format!("bad --seed: {s}"))?,
    };
    let expect = match flag(rest, "--expect") {
        None => None,
        Some(path) => {
            Some(std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?)
        }
    };
    let report = loadgen::run(&LoadConfig {
        target,
        clients,
        duration_secs,
        seed,
        expect,
    })?;
    println!("{}", report.render_json());
    if report.mismatches > 0 {
        eprintln!(
            "error: served figures diverge from the expected suite output \
             ({} diverging lines across {} verified figures)",
            report.mismatches, report.figures_verified
        );
        return Ok(ExitCode::from(EXIT_MISMATCH));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_vpn_scan() -> Result<(), String> {
    let ctx = Context::new(Fidelity::Standard);
    let id = identify_vpn_ips(&ctx.corpus.db);
    println!(
        "corpus: {} names; candidates: {} domains -> {} addresses; eliminated {}; final {}",
        ctx.corpus.db.len(),
        id.candidate_domains.len(),
        id.raw_candidate_ips.len(),
        id.eliminated_ips.len(),
        id.vpn_ips.len()
    );
    for d in id.candidate_domains.iter().take(10) {
        println!("  {d}");
    }
    Ok(())
}
