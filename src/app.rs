//! The HTTP application behind `lockdown serve` — routing, figure
//! rendering, and error-to-status mapping, shared by the binary and the
//! integration tests so both exercise the exact same handler.
//!
//! Routes (all `GET`):
//!
//! - `/` — endpoint index.
//! - `/figures` — the figure catalog in suite print order.
//! - `/figures/<name>` — one figure, assembled on demand from archive
//!   cells through the query engine's cache and rendered byte-identical
//!   to the corresponding `suite::run_all` section.
//! - `/query?...` — a [`QueryPlan`] executed with predicate pushdown.
//! - `/metrics` — the combined `query_*` + `store_*` Prometheus snapshot.
//!
//! Malformed requests, unknown figures and bad query strings are 4xx;
//! archive trouble (a CRC-failing segment, a missing cell) is a 5xx
//! naming the culprit. Nothing panics the worker — and even a panic
//! would be caught by the server loop and served as a 500.

use lockdown_core::serve::{figure_names, render_figure, ServeError};
use lockdown_core::Context;
use lockdown_query::http::Handler;
use lockdown_query::json;
use lockdown_query::{QueryEngine, QueryPlan, Request, Response};
use lockdown_store::StoreError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One figure response: `{"name":...,"render":...}`.
fn figure_doc(name: &str, render: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"render\":\"{}\"}}",
        json::escape(name),
        json::escape(render)
    )
}

/// Map a figure-serving failure to an HTTP response. Unknown names are
/// the client's fault; archive trouble is ours — a `Missing` cell means
/// this archive cannot serve the figure (503), corruption or I/O is a
/// plain 500. The store error text names the offending segment.
fn serve_error_response(err: ServeError) -> Response {
    match err {
        ServeError::UnknownFigure(_) => Response::error(404, &err.to_string()),
        ServeError::Store(StoreError::Missing { .. }) => Response::error(503, &err.to_string()),
        ServeError::Store(_) => Response::error(500, &err.to_string()),
    }
}

/// Build the serving handler over an opened archive.
///
/// Figure renderings are memoized: the archive is immutable for the
/// lifetime of the server (the manifest key pins seed, scenario and
/// plan), so a figure rendered once is a string lookup forever after —
/// the load generator's hot `/figures/<name>` path never re-runs a plan.
pub fn build_handler(engine: Arc<QueryEngine>, ctx: Arc<Context>) -> Handler {
    let rendered: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));
    Arc::new(move |req: &Request| -> Response {
        match req.path.as_str() {
            "/" => {
                let doc =
                    "{\"endpoints\":[\"/figures\",\"/figures/<name>\",\"/query\",\"/metrics\"]}";
                Response::json(200, doc.to_string())
            }
            "/metrics" => Response::text(200, engine.render_metrics()),
            "/figures" => {
                let names: Vec<String> = figure_names()
                    .iter()
                    .map(|n| format!("\"{}\"", json::escape(n)))
                    .collect();
                Response::json(200, format!("{{\"figures\":[{}]}}", names.join(",")))
            }
            "/query" => {
                match QueryPlan::parse(req.query.iter().map(|(k, v)| (k.as_str(), v.as_str()))) {
                    Ok(plan) => match engine.execute(&plan) {
                        Ok(out) => Response::json(200, out.render_json()),
                        Err(e) => Response::error(500, &e.to_string()),
                    },
                    Err(e) => Response::error(400, &e),
                }
            }
            path => match path.strip_prefix("/figures/") {
                Some(name) => {
                    if let Some(doc) = rendered.lock().expect("render cache").get(name) {
                        return Response::json(200, doc.clone());
                    }
                    let mut fetch = |cell| engine.read_cell(cell);
                    match render_figure(&ctx, name, &mut fetch) {
                        Ok(render) => {
                            let doc = figure_doc(name, &render);
                            rendered
                                .lock()
                                .expect("render cache")
                                .insert(name.to_string(), doc.clone());
                            Response::json(200, doc)
                        }
                        Err(e) => serve_error_response(e),
                    }
                }
                None => Response::error(404, &format!("no such endpoint: {path}")),
            },
        }
    })
}
