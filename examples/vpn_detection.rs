//! §6 walkthrough: why port-based VPN identification vastly undercounts.
//!
//! Builds the synthetic CT-log/forward-DNS corpus, runs the paper's
//! `*vpn*` domain procedure step by step, and then classifies one week of
//! IXP-CE traffic with both methods to show the invisible-VPN share.
//!
//! ```sh
//! cargo run --release --example vpn_detection
//! ```

use lockdown::analysis::vpn::{is_port_vpn, VpnClassifier};
use lockdown::core::{Context, Fidelity};
use lockdown::dns::vpn::identify_vpn_ips;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

fn main() {
    let ctx = Context::new(Fidelity::Standard);

    // Step 1-3: the domain-based identification procedure.
    let id = identify_vpn_ips(&ctx.corpus.db);
    println!("§6 domain-based VPN identification");
    println!("  corpus size:          {} names", ctx.corpus.db.len());
    println!(
        "  *vpn* candidates:     {} domains",
        id.candidate_domains.len()
    );
    println!("  candidate addresses:  {}", id.raw_candidate_ips.len());
    println!(
        "  eliminated (www-shared): {} — the conservative step",
        id.eliminated_ips.len()
    );
    println!("  final VPN endpoints:  {}", id.vpn_ips.len());
    for d in id.candidate_domains.iter().take(5) {
        println!("    e.g. {d}");
    }

    // Ground-truth check (the paper could not do this; a simulation can).
    let truth = &ctx.corpus.truth;
    let found = truth
        .discoverable()
        .iter()
        .filter(|ip| id.vpn_ips.contains(ip))
        .count();
    println!(
        "  ground truth: {}/{} discoverable gateways found; {} hidden behind www-shared IPs",
        found,
        truth.discoverable().len(),
        truth.shared_with_www.len()
    );

    // Step 4: classify one pre-lockdown and one lockdown week of traffic.
    let classifier = VpnClassifier::new(id.vpn_ips);
    let generator = ctx.generator();
    let report = |label: &str, monday: Date| {
        let (mut port_bytes, mut domain_bytes) = (0u64, 0u64);
        for day in 0..7 {
            let date = monday.add_days(day);
            for hour in 0..24 {
                for f in generator.generate_hour(VantagePoint::IxpCe, date, hour) {
                    if is_port_vpn(&f) {
                        port_bytes += f.bytes;
                    } else if classifier.is_domain_vpn(&f) {
                        domain_bytes += f.bytes;
                    }
                }
            }
        }
        println!(
            "  {label}: port-identified {port_bytes:>16} B, domain-identified {domain_bytes:>16} B"
        );
        (port_bytes, domain_bytes)
    };
    println!("\nVPN traffic at IXP-CE, two identification methods:");
    let (p0, d0) = report("base week    (Feb 17)", Date::new(2020, 2, 17));
    let (p1, d1) = report("lockdown week(Mar 23)", Date::new(2020, 3, 23));
    println!(
        "\n  port-based growth:   {:+.1}%  — 'almost no change'",
        (p1 as f64 / p0 as f64 - 1.0) * 100.0
    );
    println!(
        "  domain-based growth: {:+.1}%  — the surge port counting misses",
        (d1 as f64 / d0 as f64 - 1.0) * 100.0
    );
}
