//! Wire-level tour of the flow substrate: encode the same records as
//! NetFlow v5, NetFlow v9 and IPFIX, inspect the packets, anonymize
//! addresses prefix-preservingly, and show template-cache behaviour on a
//! mid-stream join.
//!
//! ```sh
//! cargo run --release --example flow_pipeline
//! ```

use lockdown::core::{Context, Fidelity};
use lockdown::flow::anon::Anonymizer;
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

fn main() {
    let ctx = Context::new(Fidelity::Test);
    let generator = ctx.generator();
    let date = Date::new(2020, 3, 25);
    let flows = generator.generate_hour(VantagePoint::IxpCe, date, 12);
    println!(
        "sample: {} flows from IXP-CE, {} 12:00",
        flows.len(),
        date.iso()
    );

    // Encode the same batch in all three formats.
    let boot = date.midnight();
    let now = date.at_hour(13);
    for format in [
        ExportFormat::NetflowV5,
        ExportFormat::NetflowV9,
        ExportFormat::Ipfix,
    ] {
        let mut exporter = Exporter::new(ExporterConfig::new(format, boot));
        let pkts = exporter.export_all(&flows, now);
        let bytes: usize = pkts.iter().map(Vec::len).sum();
        println!(
            "  {format:?}: {} datagrams, {} bytes on the wire ({:.1} B/record)",
            pkts.len(),
            bytes,
            bytes as f64 / flows.len() as f64
        );
    }

    // Mid-stream join: a collector that missed the first template.
    let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
    cfg.batch_size = 50;
    cfg.template_refresh = 5;
    let mut exporter = Exporter::new(cfg);
    let pkts = exporter.export_all(&flows, now);
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().skip(1).map(|p| p.as_slice()));
    let stats = collector.stats();
    println!(
        "mid-stream join: {} records recovered, {} datagrams dropped awaiting template refresh",
        stats.records, stats.missing_template
    );

    // Prefix-preserving anonymization (§2.1's "IP addresses are hashed").
    let anon = Anonymizer::new(0x5EC2E7);
    let a = flows[0].key.src_addr;
    let b = flows[1].key.src_addr;
    let (ea, eb) = (anon.anonymize(a), anon.anonymize(b));
    println!(
        "anonymization: {a} -> {ea}, {b} -> {eb} (shared prefix {} bits before, {} after)",
        Anonymizer::common_prefix_len(a, b),
        Anonymizer::common_prefix_len(ea, eb),
    );
    // IP-to-AS attribution still works on anonymized *structure*: equal
    // prefix lengths survive, which is what keeps per-prefix aggregation
    // valid after hashing.
}
