//! §7 walkthrough: the educational network's antagonistic traffic shift.
//!
//! Generates the EDU trace across the campus closure (Mar 11), re-derives
//! connection directionality the way the paper does, and prints the
//! volume collapse, the in/out flip and the per-class connection growth.
//!
//! ```sh
//! cargo run --release --example edu_network
//! ```

use lockdown::analysis::edu::{EduAnalysis, EduTrafficClass, Orientation};
use lockdown::core::{Context, Fidelity};
use lockdown_flow::time::Date;

fn main() {
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.edu_generator();

    // Generate the capture window (§2: Feb 28 – May 8) and stream it
    // through the analysis.
    let start = Date::new(2020, 2, 27);
    let end = Date::new(2020, 4, 26);
    let mut analysis = EduAnalysis::new();
    let mut total_flows = 0usize;
    for date in start.range_inclusive(end) {
        for hour in 0..24 {
            let flows = generator.generate_hour(date, hour);
            total_flows += flows.len();
            analysis.add_all(&flows);
        }
    }
    println!(
        "EDU capture: {} flows over {} days; {:.0}% direction-undetermined (paper: 39%)",
        total_flows,
        start.days_until(end) + 1,
        analysis.undetermined_fraction() * 100.0
    );

    // Volume and directionality before/after the closure.
    let day_report = |label: &str, d: Date| {
        let vol = analysis.ingress.daily_total(d) + analysis.egress.daily_total(d);
        let ratio = analysis.in_out_ratio(d).unwrap_or(f64::NAN);
        println!(
            "  {label} ({}): volume {vol:>15} B, in/out ratio {ratio:>5.1}",
            d.iso()
        );
    };
    println!("\nvolume & direction:");
    day_report("base Tuesday      ", Date::new(2020, 3, 3));
    day_report("transition Tuesday", Date::new(2020, 3, 17));
    day_report("online Tuesday    ", Date::new(2020, 4, 21));

    // Per-class incoming connection growth (base week vs online week).
    println!("\nincoming connection growth (median daily, base -> online):");
    for (label, class, paper) in [
        ("web           ", EduTrafficClass::Web, 1.7),
        ("email         ", EduTrafficClass::Email, 1.8),
        ("VPN           ", EduTrafficClass::Vpn, 4.8),
        ("remote desktop", EduTrafficClass::RemoteDesktop, 5.9),
        ("SSH           ", EduTrafficClass::Ssh, 9.1),
    ] {
        let base = analysis.median_daily(
            class,
            Orientation::Incoming,
            Date::new(2020, 2, 27),
            Date::new(2020, 3, 4),
        );
        let online = analysis.median_daily(
            class,
            Orientation::Incoming,
            Date::new(2020, 4, 16),
            Date::new(2020, 4, 22),
        );
        println!(
            "  {label}: {:>5.1}x   (paper: {paper}x)",
            online / base.max(1.0)
        );
    }

    // Outgoing collapses.
    println!("\noutgoing connection change (median daily, base -> online):");
    for (label, class) in [
        ("push notifications", EduTrafficClass::PushNotif),
        ("Spotify           ", EduTrafficClass::Spotify),
        ("QUIC              ", EduTrafficClass::Quic),
        ("web               ", EduTrafficClass::Web),
    ] {
        let base = analysis.median_daily(
            class,
            Orientation::Outgoing,
            Date::new(2020, 2, 27),
            Date::new(2020, 3, 4),
        );
        let online = analysis.median_daily(
            class,
            Orientation::Outgoing,
            Date::new(2020, 4, 16),
            Date::new(2020, 4, 22),
        );
        println!(
            "  {label}: {:>+6.0}%",
            (online / base.max(1.0) - 1.0) * 100.0
        );
    }
}
