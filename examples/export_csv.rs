//! Export every figure's data series as CSV for external plotting.
//!
//! ```sh
//! cargo run --release --example export_csv -- out_dir
//! ```
//!
//! Writes one CSV per figure into `out_dir` (default `./figures_csv`).

use lockdown::core::experiments::{fig1, fig11_12, fig4, fig5, fig8};
use lockdown::core::report::TextTable;
use lockdown::core::{Context, Fidelity};
use lockdown_analysis::asgroup::DayPart;
use std::fs;
use std::path::Path;

fn write(dir: &Path, name: &str, table: &TextTable) {
    let path = dir.join(name);
    fs::write(&path, table.to_csv()).expect("writable output dir");
    println!("wrote {}", path.display());
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures_csv".to_string());
    let dir = Path::new(&dir);
    fs::create_dir_all(dir).expect("create output dir");
    let ctx = Context::new(Fidelity::Standard);

    // Fig. 1: weekly normalized series per vantage point.
    let f1 = fig1::run(&ctx);
    let mut t = TextTable::new(
        std::iter::once("week".to_string())
            .chain(f1.series.iter().map(|s| s.vantage.label().to_string())),
    );
    for w in fig1::WEEKS {
        let mut row = vec![w.to_string()];
        for s in &f1.series {
            row.push(s.at(w).map(|v| format!("{v:.4}")).unwrap_or_default());
        }
        t.row(row);
    }
    write(dir, "fig1_weekly_volume.csv", &t);

    // Fig. 4: hypergiant vs other growth.
    let f4 = fig4::run(&ctx);
    let mut t = TextTable::new(["week", "daypart", "group", "growth"]);
    for part in DayPart::ALL {
        for hg in [true, false] {
            for w in fig4::WEEKS {
                if let Some(v) = f4.at(part, hg, w) {
                    t.row([
                        w.to_string(),
                        part.label().to_string(),
                        if hg {
                            "hypergiant".into()
                        } else {
                            "other".to_string()
                        },
                        format!("{v:.4}"),
                    ]);
                }
            }
        }
    }
    write(dir, "fig4_hypergiant_growth.csv", &t);

    // Fig. 5: ECDF curves on a percent grid.
    let f5 = fig5::run(&ctx);
    let mut t = TextTable::new(["utilization", "series", "fraction"]);
    for (label, stage2, stat) in [
        ("base_min", false, fig5::UtilStat::Min),
        ("base_avg", false, fig5::UtilStat::Avg),
        ("base_max", false, fig5::UtilStat::Max),
        ("stage2_min", true, fig5::UtilStat::Min),
        ("stage2_avg", true, fig5::UtilStat::Avg),
        ("stage2_max", true, fig5::UtilStat::Max),
    ] {
        for pct in 1..=100u32 {
            let x = f64::from(pct) / 100.0;
            t.row([
                pct.to_string(),
                label.to_string(),
                format!("{:.4}", f5.ecdf(stage2, stat).fraction_le(x)),
            ]);
        }
    }
    write(dir, "fig5_port_utilization_ecdf.csv", &t);

    // Fig. 8: gaming daily stats.
    let f8 = fig8::run(&ctx);
    let mut t = TextTable::new(["date", "metric", "min", "avg", "max"]);
    for (metric, series) in [("unique_ips", &f8.unique_ips), ("volume", &f8.volume)] {
        for d in series {
            t.row([
                d.date.iso(),
                metric.to_string(),
                format!("{:.3}", d.min),
                format!("{:.3}", d.avg),
                format!("{:.3}", d.max),
            ]);
        }
    }
    write(dir, "fig8_gaming.csv", &t);

    // Fig. 12: relative connection growth series.
    let edu = fig11_12::run(&ctx);
    let mut t = TextTable::new(["date", "category", "relative_growth"]);
    for (label, _, _) in fig11_12::F12_CLASSES {
        for (date, v) in edu.fig12_series(label) {
            t.row([date.iso(), label.to_string(), format!("{v:.4}")]);
        }
    }
    write(dir, "fig12_edu_classes.csv", &t);

    println!("done.");
}
