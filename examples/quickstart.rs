//! Quickstart: generate one lockdown day of synthetic ISP traffic, ship it
//! through the NetFlow wire pipeline, and recover the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lockdown::analysis::prelude::*;
use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

fn main() {
    // 1. Build the synthetic Internet: AS registry, DNS corpus, generator.
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    println!(
        "synthetic Internet: {} ASes, {} prefixes, {} DNS names",
        ctx.registry.ases().len(),
        ctx.registry.prefix_count(),
        ctx.corpus.db.len(),
    );

    // 2. Generate a pre-lockdown and a lockdown Wednesday at the ISP.
    let base_day = Date::new(2020, 2, 19);
    let lockdown_day = Date::new(2020, 3, 25);
    let base = generator.generate_day(VantagePoint::IspCe, base_day);
    let lockdown = generator.generate_day(VantagePoint::IspCe, lockdown_day);
    println!(
        "generated {} flows for {} and {} flows for {}",
        base.len(),
        base_day.iso(),
        lockdown.len(),
        lockdown_day.iso(),
    );

    // 3. Round-trip the lockdown day through NetFlow v9 wire format, the
    //    way the ISP's border routers would export it.
    let boot = lockdown_day.midnight();
    let mut exporter = Exporter::new(ExporterConfig::new(ExportFormat::NetflowV9, boot));
    let datagrams = exporter.export_all(&lockdown, lockdown_day.at_hour(23).add_secs(3_599));
    let mut collector = Collector::new();
    collector.ingest_all(datagrams.iter().map(|d| d.as_slice()));
    println!(
        "NetFlow v9: {} datagrams, {} records collected, {} drops",
        datagrams.len(),
        collector.stats().records,
        collector.stats().malformed + collector.stats().missing_template,
    );

    // 4. The headline: lockdown volume growth and the pattern shift.
    let mut vol = HourlyVolume::new();
    vol.add_all(base.iter().chain(collector.records()));
    let b = vol.daily_total(base_day) as f64;
    let l = vol.daily_total(lockdown_day) as f64;
    println!(
        "daily volume: {:.2e} -> {:.2e} bytes ({:+.1}%)",
        b,
        l,
        (l / b - 1.0) * 100.0
    );
    let morning = |d: Date| vol.get(d, 10) as f64 / vol.get(d, 21) as f64;
    println!(
        "morning/evening ratio: {:.2} (Feb) vs {:.2} (lockdown) — the weekend-like shift",
        morning(base_day),
        morning(lockdown_day)
    );
}
