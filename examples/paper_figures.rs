//! Reproduce every figure and table of the paper and print the text
//! renderings — the full evaluation in one binary.
//!
//! ```sh
//! cargo run --release --example paper_figures            # standard fidelity
//! cargo run --release --example paper_figures -- --test  # fast, noisier
//! ```

use lockdown::core::experiments::{
    fig1, fig10, fig11_12, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sec3_4, sec9, tables,
};
use lockdown::core::{Context, Fidelity};
use lockdown::topology::vantage::VantagePoint;

fn main() {
    let fidelity = if std::env::args().any(|a| a == "--test") {
        Fidelity::Test
    } else {
        Fidelity::Standard
    };
    let ctx = Context::new(fidelity);

    println!("{}", tables::table2());
    println!("{}", tables::table1(&ctx).render());

    println!("{}", fig1::run(&ctx).render());
    println!("{}", fig2::run_2a(&ctx).render());
    println!("{}", fig2::run_2bc(&ctx, VantagePoint::IspCe).render());
    println!("{}", fig2::run_2bc(&ctx, VantagePoint::IxpCe).render());
    println!("{}", fig3::run_3a(&ctx).render());
    println!("{}", fig3::run_3b(&ctx).render());
    println!("{}", fig4::run(&ctx).render());
    println!("{}", fig5::run(&ctx).render());
    println!("{}", fig6::run(&ctx).render());
    println!("{}", sec3_4::run(&ctx).render());
    println!("{}", fig7::run(&ctx, VantagePoint::IspCe).render());
    println!("{}", fig7::run(&ctx, VantagePoint::IxpCe).render());
    println!("{}", fig8::run(&ctx).render());
    for vp in VantagePoint::CORE_FOUR {
        println!("{}", fig9::run(&ctx, vp).render());
    }
    println!("{}", fig10::run(&ctx).render());
    println!("{}", fig11_12::run(&ctx).render());
    println!("{}", sec9::run(&ctx).render());
}
