//! §9 walkthrough — the operator's view: did the lockdown threaten
//! capacity?
//!
//! Quantifies the discussion section's three observations over the
//! synthetic IXP-CE:
//!   1. the traffic increase fills valleys, not peaks;
//!   2. port capacity upgrades (≈1,500 Gbps fabric-wide) land where
//!      utilization pressure is highest;
//!   3. individual links see increases "way beyond the overall 15-20%".
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use lockdown::analysis::linkutil::LinkUtilization;
use lockdown::core::experiments::sec9;
use lockdown::core::{Context, Fidelity};
use lockdown::topology::ixp::IxpFabric;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

fn main() {
    let ctx = Context::new(Fidelity::Standard);

    // 1. Peak vs valley growth at the four fixed networks.
    println!("{}", sec9::run(&ctx).render());

    // 2. The fabric's capacity response.
    let fabric = IxpFabric::synthesize(VantagePoint::IxpCe, &ctx.registry, ctx.config.seed);
    println!(
        "IXP-CE fabric: {} members, {:.0} Gbps base capacity",
        fabric.members.len(),
        fabric.total_capacity_gbps(Date::new(2020, 2, 19)),
    );
    println!(
        "pandemic upgrades: +{:.0} Gbps across {} members (§3.1: ~1,500 Gbps)",
        fabric.total_upgrade_gbps(),
        fabric.upgraded_members(),
    );

    // 3. Per-member utilization pressure, base vs stage 2.
    let base_day = Date::new(2020, 2, 20);
    let stage2_day = Date::new(2020, 4, 23);
    let generator = ctx.generator();
    let base = generator.generate_day(VantagePoint::IxpCe, base_day);
    let stage2 = generator.generate_day(VantagePoint::IxpCe, stage2_day);
    let lu = LinkUtilization::calibrate(&fabric, &base, base_day);
    let before = lu.day_stats(&base, base_day);
    let after = lu.day_stats(&stage2, stage2_day);

    let mut growths: Vec<(f64, lockdown::topology::asn::Asn)> = before
        .iter()
        .filter_map(|b| {
            let a = after.iter().find(|a| a.asn == b.asn)?;
            if b.avg > 0.0 {
                Some((a.avg / b.avg, b.asn))
            } else {
                None
            }
        })
        .collect();
    growths.sort_by(|a, b| b.0.total_cmp(&a.0));
    let above_50 = growths.iter().filter(|(g, _)| *g > 1.5).count();
    println!(
        "\nper-member utilization growth: median {:.2}x; {} members above 1.5x",
        growths[growths.len() / 2].0,
        above_50
    );
    println!("hottest member links (the §9 'way beyond 15-20%' cases):");
    for (g, asn) in growths.iter().take(5) {
        let name = ctx
            .registry
            .get(*asn)
            .map(|a| a.name.clone())
            .unwrap_or_else(|| asn.to_string());
        println!("  {name:<28} {g:.2}x");
    }
    let need_upgrade = after.iter().filter(|s| s.max > 0.9).count();
    println!(
        "members running >90% peak utilization in stage 2: {} (port-upgrade candidates)",
        need_upgrade
    );
}
