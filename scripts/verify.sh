#!/usr/bin/env bash
# Tier-1 verification gate: everything CI runs, runnable locally.
#
#   scripts/verify.sh          # full gate
#   scripts/verify.sh --quick  # skip the release build (lints + tests)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release --workspace"
    cargo build --release --workspace
fi

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
