#!/usr/bin/env bash
# Tier-1 verification gate: everything CI runs, runnable locally.
#
#   scripts/verify.sh          # full gate
#   scripts/verify.sh --quick  # skip the release build (lints + tests)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release --workspace"
    cargo build --release --workspace
fi

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> bench smoke (cargo bench -- --test)"
    cargo bench -p lockdown-bench -- --test

    echo "==> wire-mode zero-fault equality (audited)"
    plain=$(mktemp)
    wired=$(mktemp)
    trap 'rm -f "$plain" "$wired" "${cold:-}" "${warm:-}"; rm -rf "${arch:-}"' EXIT
    ./target/release/lockdown figures --fidelity test > "$plain"
    # --audit makes a conservation violation a hard failure (non-zero exit)
    # on top of the byte-identity diff; the report lands in the artifact.
    mkdir -p target/audit
    ./target/release/lockdown figures --fidelity test --wire --audit \
        > "$wired" 2> target/audit/zero-fault.txt
    diff -u "$plain" "$wired"

    echo "==> wire-mode faulted audit balance"
    ./target/release/lockdown collect --fidelity test --audit \
        --loss 0.1 --dup 0.04 --reorder 0.05 --restart 6 \
        2> target/audit/faulted.txt > /dev/null

    echo "==> archive cold/warm byte-identity"
    arch=$(mktemp -d)
    cold=$(mktemp)
    warm=$(mktemp)
    mkdir -p target/store
    ./target/release/lockdown figures --fidelity test --archive "$arch" \
        > "$cold" 2> target/store/cold-stderr.txt
    ./target/release/lockdown figures --fidelity test --archive "$arch" \
        > "$warm" 2> target/store/warm-stderr.txt
    # The whole point of the store: replay must be byte-identical to
    # generation, and must generate nothing.
    diff -u "$cold" "$warm"
    grep -q "0 cells generated once" target/store/warm-stderr.txt
    diff -u "$plain" "$warm"
    ./target/release/lockdown store verify --archive "$arch" \
        > target/store/verify-report.txt
    cp "$arch/manifest.lks" target/store/manifest.lks
    rm -rf "$arch" "$cold" "$warm"
fi

echo "verify: OK"
