#!/usr/bin/env bash
# Tier-1 verification gate: everything CI runs, runnable locally.
#
#   scripts/verify.sh          # full gate
#   scripts/verify.sh --quick  # skip the release build (lints + tests)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release --workspace"
    cargo build --release --workspace
fi

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> bench smoke (cargo bench -- --test)"
    cargo bench -p lockdown-bench -- --test

    echo "==> wire-mode zero-fault equality"
    plain=$(mktemp)
    wired=$(mktemp)
    trap 'rm -f "$plain" "$wired"' EXIT
    ./target/release/lockdown figures --fidelity test > "$plain"
    ./target/release/lockdown figures --fidelity test --wire > "$wired" 2> /dev/null
    diff -u "$plain" "$wired"
fi

echo "verify: OK"
