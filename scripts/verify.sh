#!/usr/bin/env bash
# Tier-1 verification gate: everything CI runs, runnable locally.
#
#   scripts/verify.sh          # full gate
#   scripts/verify.sh --quick  # skip the release build (lints + tests)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release --workspace"
    cargo build --release --workspace
fi

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

# Offline containers patch criterion with an API-less stub via an
# untracked .cargo/config.toml ([patch.crates-io]); criterion bench
# targets only compile against the real crate, so scope clippy down and
# skip the bench smoke when the stub is in play. CI has no such config
# and runs both in full.
criterion_stubbed=0
grep -qs "^criterion.*path" .cargo/config.toml && criterion_stubbed=1

echo "==> cargo clippy -D warnings"
if [[ $criterion_stubbed -eq 1 ]]; then
    cargo clippy --workspace --lib --bins --tests --examples -- -D warnings
else
    cargo clippy --workspace --all-targets -- -D warnings
fi

if [[ $quick -eq 0 ]]; then
    if [[ $criterion_stubbed -eq 1 ]]; then
        echo "==> bench smoke skipped (criterion stubbed offline)"
    else
        echo "==> bench smoke (cargo bench -- --test)"
        cargo bench -p lockdown-bench -- --test
    fi

    echo "==> wire-mode zero-fault equality (audited)"
    plain=$(mktemp)
    wired=$(mktemp)
    trap 'kill "${serve_pid:-}" "${wc_worker_pid:-}" "${wc_proxy_pid:-}" 2>/dev/null || true; rm -f "$plain" "$wired" "${cold:-}" "${warm:-}" "${qctl:-}" "${pctl:-}" "${sharded:-}" "${shwarm:-}" "${killed:-}" "${resumed_wire:-}"; rm -rf "${arch:-}" "${sharch:-}"' EXIT
    ./target/release/lockdown figures --fidelity test > "$plain"
    # --audit makes a conservation violation a hard failure (non-zero exit)
    # on top of the byte-identity diff; the report lands in the artifact.
    mkdir -p target/audit
    ./target/release/lockdown figures --fidelity test --wire --audit \
        > "$wired" 2> target/audit/zero-fault.txt
    diff -u "$plain" "$wired"

    echo "==> wire-mode faulted audit balance"
    ./target/release/lockdown collect --fidelity test --audit \
        --loss 0.1 --dup 0.04 --reorder 0.05 --restart 6 \
        2> target/audit/faulted.txt > /dev/null

    echo "==> archive cold/warm byte-identity"
    arch=$(mktemp -d)
    cold=$(mktemp)
    warm=$(mktemp)
    mkdir -p target/store
    ./target/release/lockdown figures --fidelity test --archive "$arch" \
        > "$cold" 2> target/store/cold-stderr.txt
    ./target/release/lockdown figures --fidelity test --archive "$arch" \
        > "$warm" 2> target/store/warm-stderr.txt
    # The whole point of the store: replay must be byte-identical to
    # generation, and must generate nothing.
    diff -u "$cold" "$warm"
    grep -q "0 cells generated once" target/store/warm-stderr.txt
    diff -u "$plain" "$warm"
    ./target/release/lockdown store verify --archive "$arch" \
        > target/store/verify-report.txt
    cp "$arch/manifest.lks" target/store/manifest.lks

    echo "==> scenario DSL golden byte-identity (shipped TOML == builtin)"
    scen=$(mktemp)
    ./target/release/lockdown figures --fidelity test \
        --scenario scenarios/covid-spring-2020.toml > "$scen"
    diff -u "$plain" "$scen"
    rm -f "$scen"

    echo "==> query plane: serve + 1000-client loadgen gate (BENCH_query.json)"
    mkdir -p target/query
    cp "$plain" target/query/expected.txt
    qctl=$(mktemp -u)
    mkfifo "$qctl"
    # The FIFO keeps serve's stdin open; closing fd 9 is the shutdown
    # signal (stdin EOF), so a clean exit 0 proves graceful shutdown.
    ./target/release/lockdown serve --fidelity test --archive "$arch" \
        --addr 127.0.0.1:0 < "$qctl" > target/query/serve-stdout.txt \
        2> target/query/serve-stderr.txt &
    serve_pid=$!
    exec 9> "$qctl"
    for _ in $(seq 1 100); do
        grep -q "serving on" target/query/serve-stdout.txt 2> /dev/null && break
        sleep 0.1
    done
    qaddr=$(grep -m1 -oE "[0-9.]+:[0-9]+" target/query/serve-stdout.txt)
    # --expect gates on byte-identity: every served figure must reassemble
    # to the engine's own stdout, or loadgen exits 4 and set -e fails us.
    ./target/release/lockdown loadgen --target "$qaddr" --clients 1000 \
        --duration 2 --expect target/query/expected.txt > BENCH_query.json
    cat BENCH_query.json
    # Latency ceiling: p99 over 5s (release, test fidelity runs ~100x
    # lower) means something is badly wrong, not merely slow CI.
    p99=$(grep -oE '"p99_us": [0-9]+' BENCH_query.json | grep -oE "[0-9]+$")
    [[ "$p99" -lt 5000000 ]] || {
        echo "loadgen p99 ${p99}us over the 5s ceiling" >&2
        exit 1
    }
    exec 9>&-
    wait "$serve_pid"
    serve_pid=
    rm -f "$qctl"
    # Pushdown must be observable in the served metrics snapshot.
    pruned=$(grep -m1 -E "^query_segments_pruned_total" \
        target/query/serve-stderr.txt | grep -oE "[0-9]+$")
    [[ "$pruned" -gt 0 ]] || {
        echo "query plane served without pruning any segment" >&2
        exit 1
    }

    echo "==> 2-scenario matrix: one shared generation pass"
    mkdir -p target/matrix
    ./target/release/lockdown scenarios --matrix \
        scenarios/covid-spring-2020.toml scenarios/hypergiant-outage.toml \
        --fidelity test --out target/matrix 2> target/matrix/stderr.txt
    # The matrix must generate exactly as many distinct cells as the
    # single-scenario pass above (from the cold archive run's summary).
    single_cells=$(grep -oE "[0-9]+ cells generated once" \
        target/store/cold-stderr.txt | grep -oE "[0-9]+")
    grep -q "matrix: 2 scenarios, $single_cells cells generated once (shared pass)" \
        target/matrix/stderr.txt
    # Lane 0 (the reference calibration) is byte-identical to a plain run;
    # the counterfactual lane must actually diverge.
    diff -u "$plain" target/matrix/00-covid-spring-2020.txt
    if cmp -s target/matrix/00-covid-spring-2020.txt \
        target/matrix/01-hypergiant-outage.txt; then
        echo "matrix lanes must differ" >&2
        exit 1
    fi
    grep -q "sections differ" target/matrix/stderr.txt

    echo "==> engine bench numbers (BENCH_engine.json)"
    cargo run --release -q -p lockdown-bench --bin engine_json > BENCH_engine.json
    cat BENCH_engine.json

    echo "==> store bench numbers (BENCH_store.json)"
    cargo run --release -q -p lockdown-bench --bin store_json > BENCH_store.json
    cat BENCH_store.json

    echo "==> chaos smoke: zero-chaos supervision is byte-identical"
    mkdir -p target/chaos
    supervised=$(mktemp)
    ./target/release/lockdown figures --fidelity test --chaos seed=0 \
        > "$supervised" 2> target/chaos/zero-chaos-stderr.txt
    diff -u "$plain" "$supervised"
    rm -f "$supervised"

    echo "==> chaos smoke: seeded faults degrade (exit 3) with a report"
    set +e
    ./target/release/lockdown figures --fidelity test \
        --chaos seed=7,panic=0.9,attempts=1,backoff=0 \
        > target/chaos/degraded-stdout.txt 2> target/chaos/degraded-report.txt
    chaos_exit=$?
    set -e
    [[ $chaos_exit -eq 3 ]] || {
        echo "expected degraded exit 3, got $chaos_exit" >&2
        exit 1
    }
    grep -q "DEGRADED PASS" target/chaos/degraded-report.txt
    grep -q "quarantined \[wire" target/chaos/degraded-report.txt
    grep -q "\[degraded:" target/chaos/degraded-stdout.txt

    echo "==> chaos smoke: audited zero-chaos run stays clean"
    ./target/release/lockdown figures --fidelity test --wire --audit \
        --chaos seed=0 > /dev/null 2> target/chaos/audited-stderr.txt

    echo "==> checkpoint/resume: a killed archived pass resumes"
    # The journal IS a partial manifest (same encoding), so renaming the
    # manifest and dropping segments reconstructs the kill -9 state.
    mv "$arch/manifest.lks" "$arch/journal.lks"
    for seg in $(ls "$arch/segments" | sort | sed 3q); do
        rm "$arch/segments/$seg"
    done
    resumed=$(mktemp)
    ./target/release/lockdown figures --fidelity test --archive "$arch" \
        --chaos seed=0 > "$resumed" 2> target/chaos/resume-stderr.txt
    diff -u "$plain" "$resumed"
    grep -q "3 cells generated once" target/chaos/resume-stderr.txt
    grep -Eq "[0-9]+ resumed" target/chaos/resume-stderr.txt
    rm -f "$resumed"

    echo "==> store gc on a manifest-less archive (--dry-run first)"
    mv "$arch/manifest.lks" "$arch/journal.lks"
    cp "$arch/segments/$(ls "$arch/segments" | sort | sed 1q)" \
        "$arch/segments/seg-99-99999-23.lks"
    # grep files, not pipes: grep -q closing the pipe mid-print would
    # EPIPE-panic the CLI under pipefail.
    ./target/release/lockdown store gc --archive "$arch" --dry-run \
        > target/chaos/gc-dry-run.txt
    grep -q "would remove 1" target/chaos/gc-dry-run.txt
    test -f "$arch/segments/seg-99-99999-23.lks"
    ./target/release/lockdown store gc --archive "$arch" \
        > target/chaos/gc-live.txt
    grep -q "removed 1" target/chaos/gc-live.txt
    test ! -f "$arch/segments/seg-99-99999-23.lks"

    echo "==> collectd smoke: stdin-EOF drain accounts a datagram"
    mkdir -p target/collectd
    coproc COLLECTD { ./target/release/lockdown collectd --sockets 1 \
        2> target/collectd/metrics.txt; }
    # Bash drops COLLECTD_PID once the coproc exits — save it while the
    # daemon is still alive so the wait below can collect its status.
    collectd_pid=$COLLECTD_PID
    read -r listen_line <&"${COLLECTD[0]}"
    caddr=${listen_line#listening on }
    # Nudge one garbage datagram at the bound port (bash /dev/udp),
    # then close stdin: the drain must account it as malformed.
    echo -n "not a flow export" > "/dev/udp/${caddr%:*}/${caddr#*:}"
    sleep 0.3
    exec {COLLECTD[1]}>&-
    summary=$(cat <&"${COLLECTD[0]}")
    wait "$collectd_pid"
    grep -q "1 datagrams received" <<< "$summary"
    grep -q "1 malformed" <<< "$summary"
    grep -q "socket_datagrams_received_total 1" target/collectd/metrics.txt

    echo "==> collectd soak numbers (BENCH_collect.json)"
    cargo run --release -q -p lockdown-bench --bin collect_json > BENCH_collect.json
    cat BENCH_collect.json
    grep -q '"audit_clean": true' BENCH_collect.json
    # Throughput floor: the localhost soak must sustain a million flow
    # records per second end-to-end (release build).
    fps=$(grep -oE '"flows_per_sec": [0-9]+' BENCH_collect.json | grep -oE "[0-9]+$")
    [[ "$fps" -ge 1000000 ]] || {
        echo "collectd soak at ${fps} flows/s, below the 1M floor" >&2
        exit 1
    }

    echo "==> shard smoke: 3-worker coordinate is byte-identical (+ one manifest)"
    mkdir -p target/shard
    sharch=$(mktemp -d)
    sharded=$(mktemp)
    ./target/release/lockdown coordinate --fidelity test --workers 3 \
        --archive "$sharch" > "$sharded" 2> target/shard/cold-stderr.txt
    diff -u "$plain" "$sharded"
    grep -q "coordinated 3 workers" target/shard/cold-stderr.txt
    grep -q "0 ranges quarantined" target/shard/cold-stderr.txt
    test -f "$sharch/manifest.lks"
    # The coordinator adopted every worker's segments into ONE manifest:
    # a single-process warm replay regenerates nothing and still matches.
    shwarm=$(mktemp)
    ./target/release/lockdown figures --fidelity test --archive "$sharch" \
        > "$shwarm" 2> target/shard/warm-stderr.txt
    diff -u "$plain" "$shwarm"
    grep -q "0 cells generated once" target/shard/warm-stderr.txt

    echo "==> shard smoke: seeded worker-kill reassigns, still byte-identical"
    killed=$(mktemp)
    ./target/release/lockdown coordinate --fidelity test --workers 3 \
        --chaos seed=0,wkill=0.2 > "$killed" 2> target/shard/kill-stderr.txt
    diff -u "$plain" "$killed"
    grep -Eq "[1-9][0-9]* reassigned" target/shard/kill-stderr.txt
    grep -q "0 ranges quarantined" target/shard/kill-stderr.txt

    echo "==> shard smoke: a quarantined range degrades (exit 3)"
    set +e
    ./target/release/lockdown coordinate --fidelity test --workers 3 \
        --chaos seed=3,wkill=0.08,attempts=1 \
        > target/shard/degraded-stdout.txt 2> target/shard/degraded-report.txt
    shard_exit=$?
    set -e
    [[ $shard_exit -eq 3 ]] || {
        echo "expected degraded exit 3, got $shard_exit" >&2
        exit 1
    }
    grep -q "DEGRADED PASS" target/shard/degraded-report.txt
    grep -Eq "[1-9][0-9]* ranges quarantined" target/shard/degraded-report.txt

    echo "==> shard bench numbers (BENCH_shard.json)"
    cargo run --release -q -p lockdown-bench --bin shard_json > BENCH_shard.json
    cat BENCH_shard.json

    echo "==> wire-chaos gate: mid-frame cut resumes over reconnect (byte-identical)"
    mkdir -p target/proxy
    # One real worker process; a seeded chaos proxy in front of it that
    # severs the first bulk result frame halfway. The coordinator must
    # reconnect and re-adopt the worker's retained slice: byte-identical
    # figures, >=1 resumed range, zero recomputed (reassigned) ranges.
    ./target/release/lockdown worker --listen 127.0.0.1:0 --fidelity test \
        < /dev/null > target/proxy/worker-stdout.txt \
        2> target/proxy/worker-stderr.txt &
    wc_worker_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" target/proxy/worker-stdout.txt 2> /dev/null && break
        sleep 0.1
    done
    waddr=$(grep -m1 -oE "[0-9.]+:[0-9]+" target/proxy/worker-stdout.txt)
    pctl=$(mktemp -u)
    mkfifo "$pctl"
    # The FIFO keeps the proxy's stdin open; closing fd 8 (stdin EOF)
    # shuts it down and flushes its fault tallies to stderr.
    ./target/release/lockdown chaosproxy --listen 127.0.0.1:0 \
        --upstream "$waddr" --chaos seed=1,cut-payload=512 < "$pctl" \
        > target/proxy/cut-proxy-stdout.txt \
        2> target/proxy/cut-proxy-metrics.txt &
    wc_proxy_pid=$!
    exec 8> "$pctl"
    for _ in $(seq 1 100); do
        grep -q "listening on" target/proxy/cut-proxy-stdout.txt 2> /dev/null && break
        sleep 0.1
    done
    paddr=$(grep -m1 -oE "[0-9.]+:[0-9]+" target/proxy/cut-proxy-stdout.txt)
    resumed_wire=$(mktemp)
    ./target/release/lockdown coordinate --fidelity test --attach "$paddr" \
        > "$resumed_wire" 2> target/proxy/cut-coord-stderr.txt
    diff -u "$plain" "$resumed_wire"
    grep -Eq "[1-9][0-9]* reconnects" target/proxy/cut-coord-stderr.txt
    grep -Eq "[1-9][0-9]* ranges resumed" target/proxy/cut-coord-stderr.txt
    grep -q " 0 reassigned" target/proxy/cut-coord-stderr.txt
    grep -q " 0 ranges quarantined" target/proxy/cut-coord-stderr.txt
    exec 8>&-
    wait "$wc_proxy_pid"
    wc_proxy_pid=
    wait "$wc_worker_pid"
    wc_worker_pid=
    # The one-shot cut is accounted as a truncation in the fault ledger.
    grep -q "wirechaos_truncated 1" target/proxy/cut-proxy-metrics.txt
    rm -f "$pctl" "$resumed_wire"

    echo "==> wire-chaos gate: certain corruption degrades (exit 3), no flip merges"
    # corrupt=1 with min-len=512 flips a byte in every bulk frame and
    # leaves the small control frames alone: the handshake succeeds,
    # every result is rejected by the frame CRC, and the run must end
    # in the named degraded outcome — never a hang, never wrong bytes.
    ./target/release/lockdown worker --listen 127.0.0.1:0 --fidelity test \
        < /dev/null > target/proxy/corrupt-worker-stdout.txt \
        2> target/proxy/corrupt-worker-stderr.txt &
    wc_worker_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" target/proxy/corrupt-worker-stdout.txt 2> /dev/null && break
        sleep 0.1
    done
    waddr=$(grep -m1 -oE "[0-9.]+:[0-9]+" target/proxy/corrupt-worker-stdout.txt)
    mkfifo "$pctl"
    ./target/release/lockdown chaosproxy --listen 127.0.0.1:0 \
        --upstream "$waddr" --chaos seed=3,corrupt=1,min-len=512 < "$pctl" \
        > target/proxy/corrupt-proxy-stdout.txt \
        2> target/proxy/corrupt-proxy-metrics.txt &
    wc_proxy_pid=$!
    exec 8> "$pctl"
    for _ in $(seq 1 100); do
        grep -q "listening on" target/proxy/corrupt-proxy-stdout.txt 2> /dev/null && break
        sleep 0.1
    done
    paddr=$(grep -m1 -oE "[0-9.]+:[0-9]+" target/proxy/corrupt-proxy-stdout.txt)
    set +e
    ./target/release/lockdown coordinate --fidelity test --attach "$paddr" \
        > target/proxy/corrupt-stdout.txt 2> target/proxy/corrupt-stderr.txt
    wc_exit=$?
    set -e
    [[ $wc_exit -eq 3 ]] || {
        echo "expected degraded exit 3 under certain corruption, got $wc_exit" >&2
        exit 1
    }
    grep -q "DEGRADED" target/proxy/corrupt-stderr.txt
    exec 8>&-
    wait "$wc_proxy_pid"
    wc_proxy_pid=
    # The worker lingers in its reconnect window; the gate owns its end.
    kill "$wc_worker_pid" 2> /dev/null || true
    wait "$wc_worker_pid" 2> /dev/null || true
    wc_worker_pid=
    grep -Eq "wirechaos_corrupted [1-9]" target/proxy/corrupt-proxy-metrics.txt
    rm -f "$pctl"

    echo "==> proxy overhead numbers (BENCH_proxy.json)"
    cargo run --release -q -p lockdown-bench --bin proxy_json > BENCH_proxy.json
    cat BENCH_proxy.json
    cp BENCH_proxy.json target/proxy/BENCH_proxy.json

    rm -rf "$arch" "$cold" "$warm" "$sharch" "$sharded" "$shwarm" "$killed"
fi

echo "verify: OK"
